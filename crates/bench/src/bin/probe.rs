//! Timing probe: calibrates default experiment scales (not a figure).

use std::time::Instant;

use vne_bench::BenchOpts;
use vne_sim::runner::default_apps;
use vne_sim::scenario::{Scenario, ScenarioConfig};

fn main() {
    let opts = BenchOpts::parse();
    let substrate = vne_topology::zoo::iris().expect("iris builds");
    let apps = default_apps(1);
    for (label, cfg) in [
        ("small(1.0)", ScenarioConfig::small(1.0)),
        ("paper(1.0)", ScenarioConfig::paper(1.0)),
    ] {
        let sc = Scenario::new(substrate.clone(), apps.clone(), cfg)
            .with_registry(opts.registry.clone());
        for alg in &opts.algs {
            let t = Instant::now();
            let out = sc.run(alg);
            println!(
                "{label:12} {:8} rej={:.4} cost={:.3e} arrivals={:6} plan={:.2}s online={:.2}s total={:.2}s",
                alg.name(),
                out.summary.rejection_rate,
                out.summary.total_cost,
                out.summary.arrivals,
                out.plan_secs,
                out.summary.online_secs,
                t.elapsed().as_secs_f64()
            );
        }
    }
}
