//! Fig. 12: drill-down on the `Franklin` edge node in Iris (100%
//! utilization, one execution): per application, the active demand served
//! inside the guaranteed plan share vs the demand served by borrowing,
//! against the guaranteed (planned) threshold; plus denied arrivals.
//!
//! Expected shape (paper): demand above the per-app threshold is served
//! by borrowing unused budgets of other applications and is occasionally
//! preempted when those applications reclaim their share.

use std::collections::BTreeMap;

use vne_model::ids::ClassId;
use vne_sim::engine::RequestStatus;
use vne_sim::runner::default_apps;
use vne_sim::scenario::{Algorithm, Scenario};

use vne_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    let seed = opts.seed_list()[0];
    let substrate = vne_topology::zoo::iris().expect("iris");
    let franklin = substrate.node_by_name("Franklin").expect("Franklin exists");
    let apps = default_apps(seed);
    let app_ids: Vec<_> = apps.ids().collect();
    let app_names: Vec<String> = apps.iter().map(|a| a.name.clone()).collect();
    let scenario = Scenario::new(substrate, apps, opts.config(1.0).with_seed(seed));

    // Record per-slot (planned, borrowed) active demand per app at Franklin.
    let mut series: BTreeMap<u32, Vec<(f64, f64)>> = BTreeMap::new();
    let outcome = scenario.run_with_inspector(Algorithm::Olive, |t, olive| {
        let row: Vec<(f64, f64)> = app_ids
            .iter()
            .map(|&a| olive.active_demand_by_class(ClassId::new(a, franklin)))
            .collect();
        series.insert(t, row);
    });
    let plan = outcome.plan.as_ref().expect("OLIVE produces a plan");

    println!("# Fig. 12 — Franklin node (Iris, MMPP), OLIVE guaranteed vs actual");
    print!("{:>5}", "slot");
    for name in &app_names {
        print!(" {name:>10}.g {name:>10}.b");
    }
    println!();
    println!("# per-app guaranteed (planned) demand thresholds:");
    for (i, &a) in app_ids.iter().enumerate() {
        let g = plan
            .class(ClassId::new(a, franklin))
            .map(|cp| cp.guaranteed_demand())
            .unwrap_or(0.0);
        println!("#   {}: {:.2}", app_names[i], g);
    }
    for (t, row) in &series {
        print!("{t:>5}");
        for (planned, borrowed) in row {
            print!(" {planned:>12.2} {borrowed:>12.2}");
        }
        println!();
    }

    // Denied arrivals at Franklin per app.
    let mut denied: BTreeMap<usize, usize> = BTreeMap::new();
    let mut preempted: BTreeMap<usize, usize> = BTreeMap::new();
    for r in &outcome.result.requests {
        if r.class.ingress != franklin {
            continue;
        }
        match r.status {
            RequestStatus::Rejected => *denied.entry(r.class.app.index()).or_insert(0) += 1,
            RequestStatus::Preempted(_) => *preempted.entry(r.class.app.index()).or_insert(0) += 1,
            RequestStatus::Accepted => {}
        }
    }
    println!("# denied at Franklin by app (rejected / preempted):");
    for (i, name) in app_names.iter().enumerate() {
        println!(
            "#   {name}: {} / {}",
            denied.get(&i).unwrap_or(&0),
            preempted.get(&i).unwrap_or(&0)
        );
    }
}
