//! Fig. 15: CAIDA-like real-demand trace in Iris — rejection rate and
//! total cost vs utilization for OLIVE, QUICKG and SLOTOFF.
//!
//! The trace substitutes the access-restricted CAIDA Equinix-NewYork
//! dataset with a synthetic heavy-tailed equivalent (see DESIGN.md §6):
//! per-source lognormal demand scales, Zipf source-to-DC mapping and a
//! fixed ~495 requests/slot aggregate rate.
//!
//! Expected shape (paper): OLIVE ≈ SLOTOFF up to 100% utilization,
//! within ~4 points above; cost gaps smaller than the synthetic trace
//! but OLIVE consistently below QUICKG.

use vne_bench::experiments::{print_rows, sweep};
use vne_bench::BenchOpts;
use vne_workload::caida::CaidaConfig;

fn main() {
    let opts = BenchOpts::parse();
    let substrate = vne_topology::zoo::iris().expect("iris");
    let rows = sweep(&substrate, &opts.algs, &opts, |c| {
        c.caida = Some(CaidaConfig::default());
    });
    print_rows(
        "Fig. 15a — Iris, CAIDA-like demand: rejection rate",
        &rows,
        "rejection",
        |s| s.rejection_rate,
    );
    println!();
    print_rows(
        "Fig. 15b — Iris, CAIDA-like demand: total cost",
        &rows,
        "total-cost",
        |s| s.total_cost,
    );
}
