//! Fig. 11: rejection balance index (Eq. 20) by rejection quantile count
//! in Iris at 140% utilization: QUICKG (no quantiles) vs OLIVE with
//! P ∈ {1, 2, 10, 50}.
//!
//! Expected shape (paper): QUICKG ≈ 0.53; OLIVE rises from ≈ 0.65 (P=1)
//! to ≈ 0.84 (P=2) and ≈ 0.89 (P=10); P=50 adds nothing over P=10.

use vne_sim::metrics::aggregate;
use vne_sim::runner::{default_apps, run_seeds};
use vne_sim::scenario::Algorithm;

use vne_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    let substrate = vne_topology::zoo::iris().expect("iris");

    println!("# Fig. 11 — Iris @140%, rejection balance index by quantiles");
    println!("{:>12} {:>10} {:>10}", "variant", "balance", "±95ci");

    let (summaries, _) = run_seeds(
        &substrate,
        Algorithm::Quickg,
        &opts.seed_list(),
        default_apps,
        |seed| opts.config(1.4).with_seed(seed),
    );
    let agg = aggregate(&summaries);
    println!(
        "{:>12} {:>10.4} {:>10.4}",
        "QUICKG", agg.balance_index.0, agg.balance_index.1
    );

    for p in [1usize, 2, 10, 50] {
        let (summaries, _) = run_seeds(
            &substrate,
            Algorithm::Olive,
            &opts.seed_list(),
            default_apps,
            |seed| {
                let mut c = opts.config(1.4).with_seed(seed);
                c.quantiles = p;
                c
            },
        );
        let agg = aggregate(&summaries);
        println!(
            "{:>12} {:>10.4} {:>10.4}",
            format!("OLIVE P={p}"),
            agg.balance_index.0,
            agg.balance_index.1
        );
    }
}
