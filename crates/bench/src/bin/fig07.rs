//! Fig. 7 (a–d): total embedding cost (resource + rejection, Eqs. 3–4)
//! vs edge utilization on the four topologies.
//!
//! Expected shape (paper): OLIVE's cost is close to SLOTOFF's and below
//! QUICKG's at every utilization.
//!
//! Supports `--checkpoint-every N` / `--resume-from FILE` like fig06
//! (interruptible sweeps; see that binary's docs).

use vne_bench::experiments::{print_rows, resume_from, sweep};
use vne_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    if resume_from(&opts) {
        return;
    }
    for substrate in opts.topologies() {
        let rows = sweep(&substrate, &opts.algs, &opts, |_| {});
        print_rows(
            &format!("Fig. 7 — total cost — {}", substrate.name()),
            &rows,
            "total-cost",
            |s| s.total_cost,
        );
        println!(
            "# breakdown ({}): resource vs rejection cost",
            substrate.name()
        );
        for row in &rows {
            println!(
                "{:<12} {:>5.0}% {:>9}   resource {:>14.4e}   rejection {:>14.4e}",
                row.topology,
                row.utilization * 100.0,
                row.algorithm,
                row.summary.resource_cost.0,
                row.summary.rejection_cost.0,
            );
        }
        println!();
    }
}
