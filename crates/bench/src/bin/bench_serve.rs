//! Serving-latency harness for the `vne-serve` engine actor: measures
//! end-to-end decision latency (submit → decision at slot close) and
//! the shed rate under offered load, per algorithm, and writes the rows
//! to `BENCH_serve.json` (machine-readable, diff with `jq`, like
//! `BENCH_pipeline.json`).
//!
//! Closed-loop in-process clients call [`ServeHandle::submit`] directly
//! — no TCP in the measured path — so the numbers characterize the
//! actor and the algorithm, not the socket stack. Each cell runs one
//! daemon on a wall-clock tick; a client's next submission follows its
//! previous decision, so offered load scales with the client count.
//! The high-load cells oversubscribe the pending-queue watermark on
//! purpose: the shed rate is part of the result, not noise.
//!
//! Run with: `cargo run --release --bin bench_serve [-- --quick]`

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use vne_model::ids::{AppId, NodeId};
use vne_serve::actor::{ServeConfig, ServeHandle, TickMode};
use vne_serve::{spawn, SubmitReply, SubmitSpec};
use vne_sim::registry::{AlgorithmSpec, BuildContext};
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};
use vne_workload::appgen::{paper_mix, AppGenConfig};
use vne_workload::rng::SeededRng;

const TICK_MS: u64 = 5;
const WATERMARK: usize = 4;
const CLIENT_COUNTS: [usize; 2] = [2, 8];
const ALGORITHMS: [Algorithm; 2] = [Algorithm::Fullg, Algorithm::Quickg];

struct Cell {
    alg: &'static str,
    clients: usize,
    decided: u64,
    shed: u64,
    shed_rate: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    slots: u64,
    fingerprint: u64,
}

fn serving_world() -> Scenario {
    let substrate = vne_topology::zoo::citta_studi().expect("build Citta Studi");
    let mut rng = SeededRng::new(7);
    let apps = paper_mix(&AppGenConfig::default(), &mut rng);
    Scenario::new(substrate, apps, ScenarioConfig::small(1.0).with_seed(7))
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn run_cell(scenario: &Scenario, alg: Algorithm, clients: usize, per_client: u64) -> Cell {
    let built = scenario
        .registry()
        .build(&AlgorithmSpec::from(alg), &BuildContext::new(scenario))
        .expect("builtin algorithm");
    let runtime = spawn(
        scenario.substrate.clone(),
        built.algorithm,
        scenario.penalty(),
        scenario.config.measure_window,
        scenario.apps.len(),
        ServeConfig {
            tick: TickMode::Interval(Duration::from_millis(TICK_MS)),
            watermark: WATERMARK,
            checkpoint: None,
        },
        None,
    )
    .expect("spawn engine actor");
    let handle = runtime.handle();
    let node_count = scenario.substrate.node_count();
    let app_count = scenario.apps.len();

    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let handle: ServeHandle = runtime.handle();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client as usize);
                let mut shed = 0u64;
                let mut i = 0u64;
                while latencies.len() < per_client as usize {
                    let spec = SubmitSpec {
                        ingress: NodeId(((c as u64 * 5 + i * 3) % node_count as u64) as u32),
                        app: AppId(((c as u64 + i) % app_count as u64) as u32),
                        demand: 1.0 + ((c as u64 * 7 + i) % 10) as f64,
                        duration: 1 + ((c as u64 + i) % 4) as u32,
                    };
                    i += 1;
                    let submitted_at = Instant::now();
                    match handle.submit(spec).expect("actor alive") {
                        SubmitReply::Decided { .. } => {
                            latencies.push(submitted_at.elapsed().as_secs_f64() * 1e3);
                        }
                        SubmitReply::Shed => {
                            shed += 1;
                            // Back off one tick before re-offering, or a
                            // shed burst busy-spins the whole cell.
                            std::thread::sleep(Duration::from_millis(TICK_MS));
                        }
                        SubmitReply::Invalid(reason) => panic!("invalid spec: {reason}"),
                    }
                }
                (latencies, shed)
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::new();
    let mut shed_seen = 0u64;
    for worker in workers {
        let (lat, shed) = worker.join().expect("client thread");
        latencies.extend(lat);
        shed_seen += shed;
    }
    handle.shutdown().expect("graceful shutdown");
    let report = runtime.join().expect("engine actor");

    latencies.sort_by(|a, b| a.total_cmp(b));
    let decided = latencies.len() as u64;
    assert_eq!(decided, clients as u64 * per_client);
    assert_eq!(report.stats.shed, shed_seen, "shed tallies agree");
    let offered = decided + shed_seen;
    Cell {
        alg: alg.label(),
        clients,
        decided,
        shed: shed_seen,
        shed_rate: shed_seen as f64 / offered as f64,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        mean_ms: latencies.iter().sum::<f64>() / decided as f64,
        slots: report.stats.slots_run,
        fingerprint: report.stats.fingerprint,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_client: u64 = if quick { 10 } else { 50 };
    let scenario = serving_world();
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut cells = Vec::new();
    for alg in ALGORITHMS {
        for clients in CLIENT_COUNTS {
            let cell = run_cell(&scenario, alg, clients, per_client);
            println!(
                "{:7} clients={} decided={} shed={} ({:.1}%) p50={:.2}ms p99={:.2}ms slots={}",
                cell.alg,
                cell.clients,
                cell.decided,
                cell.shed,
                100.0 * cell.shed_rate,
                cell.p50_ms,
                cell.p99_ms,
                cell.slots,
            );
            cells.push(cell);
        }
    }

    let mut json = String::from("{\n  \"bench\": \"serve\",\n");
    let _ = writeln!(json, "  \"host_parallelism\": {parallelism},");
    let _ = writeln!(
        json,
        "  \"tick_ms\": {TICK_MS}, \"watermark\": {WATERMARK}, \"requests_per_client\": {per_client},"
    );
    let _ = writeln!(json, "  \"cells\": [");
    for (i, cell) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"alg\": \"{}\", \"clients\": {}, \"decided\": {}, \"shed\": {}, \
             \"shed_rate\": {:.4}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \
             \"slots\": {}, \"fingerprint\": \"{:016x}\"}}{}",
            cell.alg,
            cell.clients,
            cell.decided,
            cell.shed,
            cell.shed_rate,
            cell.p50_ms,
            cell.p99_ms,
            cell.mean_ms,
            cell.slots,
            cell.fingerprint,
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ]\n}}");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
