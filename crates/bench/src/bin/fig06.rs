//! Fig. 6 (a–d): request rejection rate vs edge utilization on the four
//! topologies, for OLIVE, QUICKG and SLOTOFF.
//!
//! Expected shape (paper): rejection grows with utilization everywhere;
//! OLIVE tracks SLOTOFF within a few points and stays far below QUICKG.

use vne_bench::experiments::{print_rows, sweep};
use vne_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    for substrate in opts.topologies() {
        let rows = sweep(&substrate, &opts.algs, &opts, |_| {});
        print_rows(
            &format!("Fig. 6 — rejection rate — {}", substrate.name()),
            &rows,
            "rejection",
            |s| s.rejection_rate,
        );
        println!();
    }
}
