//! Fig. 6 (a–d): request rejection rate vs edge utilization on the four
//! topologies, for OLIVE, QUICKG and SLOTOFF.
//!
//! Expected shape (paper): rejection grows with utilization everywhere;
//! OLIVE tracks SLOTOFF within a few points and stays far below QUICKG.
//!
//! Long sweeps are interruptible: `--checkpoint-every N` serializes
//! every per-seed run's state to `--checkpoint-dir` (default
//! `checkpoints/`) every N online slots, and `--resume-from FILE`
//! finishes one such run — byte-identical to never having stopped —
//! instead of sweeping:
//!
//! ```text
//! fig06 --topo citta --seeds 3 --checkpoint-every 100
//! fig06 --resume-from checkpoints/ckpt-CittaStudi-OLIVE-u140-c<fp>-s2.bin
//! ```
//!
//! (`<fp>` is the cell's config fingerprint — the filename component
//! that keeps differently-configured sweeps from overwriting each
//! other's resume points; `ls checkpoints/` to pick the file.)

use vne_bench::experiments::{print_rows, resume_from, sweep};
use vne_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    if resume_from(&opts) {
        return;
    }
    for substrate in opts.topologies() {
        let rows = sweep(&substrate, &opts.algs, &opts, |_| {});
        print_rows(
            &format!("Fig. 6 — rejection rate — {}", substrate.name()),
            &rows,
            "rejection",
            |s| s.rejection_rate,
        );
        println!();
    }
}
