//! Plan-build micro-harness: times the full offline phase (history
//! stream → estimator fold → PLAN-VNE solve) for the exact and sketch
//! estimators across history lengths, and writes the rows to
//! `BENCH_plan.json` — a machine-readable snapshot seeding the repo's
//! performance trajectory (compare across commits with plain `diff` or
//! `jq`).
//!
//! Run with: `cargo run --release --bin bench_plan [-- --slots 600,2400]`

use std::fmt::Write as _;
use std::time::Instant;

use vne_sim::runner::default_apps;
use vne_sim::scenario::{Scenario, ScenarioConfig};
use vne_workload::estimator::EstimatorKind;

struct Row {
    estimator: &'static str,
    history_slots: u32,
    build_secs: f64,
    planned_classes: usize,
    total_columns: usize,
}

fn main() {
    let mut horizons: Vec<u32> = vec![300, 1200];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--slots" => {
                i += 1;
                horizons = args
                    .get(i)
                    .expect("--slots takes a comma-separated list")
                    .split(',')
                    .map(|s| s.parse().expect("--slots takes slot counts"))
                    .collect();
            }
            other => panic!("unknown argument {other}; supported: --slots 300,1200"),
        }
        i += 1;
    }

    let substrate = vne_topology::zoo::citta_studi().expect("citta studi");
    let mut rows = Vec::new();
    for &slots in &horizons {
        for (name, kind) in [
            ("exact", EstimatorKind::Exact),
            ("sketch", EstimatorKind::Sketch),
        ] {
            let mut config = ScenarioConfig::small(1.0).with_seed(1);
            config.history_slots = slots;
            config.estimator = kind;
            let scenario = Scenario::new(substrate.clone(), default_apps(1), config);
            let started = Instant::now();
            let (plan, _) = scenario.build_plan();
            let build_secs = started.elapsed().as_secs_f64();
            println!(
                "{name:7} history={slots:6} classes={:4} columns={:5} build={build_secs:.3}s",
                plan.len(),
                plan.total_columns(),
            );
            rows.push(Row {
                estimator: name,
                history_slots: slots,
                build_secs,
                planned_classes: plan.len(),
                total_columns: plan.total_columns(),
            });
        }
    }

    let mut json = String::from("{\n  \"bench\": \"plan_build\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"estimator\": \"{}\", \"history_slots\": {}, \"build_secs\": {:.6}, \
             \"planned_classes\": {}, \"total_columns\": {}}}{}",
            r.estimator,
            r.history_slots,
            r.build_secs,
            r.planned_classes,
            r.total_columns,
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_plan.json", &json).expect("write BENCH_plan.json");
    println!("wrote BENCH_plan.json ({} rows)", rows.len());
}
