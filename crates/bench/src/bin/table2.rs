//! Table II: details of the four topologies and the tier parameter
//! table; `--dot` additionally emits Graphviz sources (Fig. 5).

use vne_topology::params::TierParams;
use vne_topology::stats::TopologyStats;

fn main() {
    let dot = std::env::args().any(|a| a == "--dot");
    println!("# Table II — topologies");
    println!(
        "{:<12} {:>5} {:>5}   {:>14}   {:>14}  {:>12} {:>12}",
        "topology", "nodes", "links", "edge/tr/core", "degree", "node-cap[CU]", "edge-cap[CU]"
    );
    for s in vne_topology::paper_topologies().expect("topologies build") {
        let st = TopologyStats::of(&s);
        println!(
            "{:<12} {:>5} {:>5}   {:>4}/{:>4}/{:>4}   {:>2}..{:<5.2}..{:<2}  {:>12.0} {:>12.0}",
            st.name,
            st.nodes,
            st.links,
            st.tier_counts[0],
            st.tier_counts[1],
            st.tier_counts[2],
            st.min_degree,
            st.mean_degree,
            st.max_degree,
            st.total_node_capacity,
            st.edge_capacity,
        );
        if dot {
            let path = format!("{}.dot", st.name.to_lowercase());
            std::fs::write(&path, s.to_dot()).expect("write dot file");
            println!("#   wrote {path}");
        }
    }

    println!();
    println!("# Table II — tier parameters");
    let p = TierParams::paper();
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "parameter", "edge", "transport", "core"
    );
    println!(
        "{:<22} {:>10.0} {:>10.0} {:>10.0}",
        "node cap [CU]", p.edge.node_capacity, p.transport.node_capacity, p.core.node_capacity
    );
    println!(
        "{:<22} {:>10.0} {:>10.0} {:>10.0}",
        "mean node cost (/CU)",
        p.edge.mean_node_cost,
        p.transport.mean_node_cost,
        p.core.mean_node_cost
    );
    println!(
        "{:<22} {:>10.0} {:>10.0} {:>10.0}",
        "link cap [CU]", p.edge.link_capacity, p.transport.link_capacity, p.core.link_capacity
    );
    println!(
        "{:<22} {:>10.0} {:>10.0} {:>10.0}",
        "link cost (/CU)", p.edge.link_cost, p.transport.link_cost, p.core.link_cost
    );
}
