//! Table III: the experimental settings as actually configured in this
//! reproduction (defaults of the workload and scenario layers).

use vne_sim::scenario::ScenarioConfig;
use vne_workload::appgen::AppGenConfig;
use vne_workload::tracegen::TraceConfig;

fn main() {
    let t = TraceConfig::default();
    let a = AppGenConfig::default();
    let paper = ScenarioConfig::paper(1.0);

    println!("# Table III — experimental settings");
    println!(
        "{:<34} {}",
        "node popularity",
        format_args!("Zipf (α = {})", t.zipf_alpha)
    );
    println!("{:<34} {}", "plan period [slots]", paper.history_slots);
    println!("{:<34} {}", "test period [slots]", paper.test_slots);
    println!(
        "{:<34} {}",
        "measurement window [slots]",
        format_args!("{}–{}", paper.measure_window.0, paper.measure_window.1)
    );
    println!(
        "{:<34} {}",
        "request size",
        format_args!("N({}, {}²)", t.demand_mean, t.demand_std)
    );
    println!(
        "{:<34} {}",
        "request duration",
        format_args!("Exponential, mean {}", t.duration_mean)
    );
    println!(
        "{:<34} {}",
        "requests per node (λ)",
        format_args!("{} per slot (MMPP-modulated)", t.mean_rate_per_node)
    );
    println!("{:<34} 2 chain, 1 tree, 1 accelerator", "applications");
    println!(
        "{:<34} U({}, {})",
        "VNFs per application", a.min_vnfs, a.max_vnfs
    );
    println!(
        "{:<34} N({}, {}²)",
        "application function size", a.size_mean, a.size_std
    );
    println!(
        "{:<34} N({}, {}²)",
        "application link size", a.size_mean, a.size_std
    );
    println!(
        "{:<34} {}",
        "accelerator link discount",
        format_args!("×{} downstream", a.accelerator_factor)
    );
    println!(
        "{:<34} {}",
        "expected-demand percentile",
        format_args!(
            "P̂{} ({} bootstrap replicates)",
            paper.aggregation.alpha, paper.aggregation.bootstrap_replicates
        )
    );
    println!("{:<34} {}", "rejection quantiles (P)", paper.quantiles);
}
