//! Fig. 10: the GPU scenario — Iris modified with GPU/non-GPU
//! datacenters (half the cores + four random edges are GPU sites,
//! non-GPU capacity −25%), four GPU-chain applications, at 100%
//! utilization, for FULLG, OLIVE and SLOTOFF.
//!
//! QUICKG is not applicable: its collocation restriction cannot host a
//! GPU VNF and standard VNFs on one datacenter.
//!
//! Expected shape (paper): OLIVE within a couple of points of SLOTOFF and
//! clearly below FULLG.

use vne_sim::metrics::aggregate;
use vne_sim::runner::run_seeds;
use vne_sim::scenario::Algorithm;
use vne_workload::appgen::{gpu_set, AppGenConfig};
use vne_workload::rng::SeededRng;

use vne_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::parse();
    let base = vne_topology::zoo::iris().expect("iris");
    let substrate = vne_topology::gpu::gpu_variant(&base, 0xF10);

    println!("# Fig. 10 — Iris GPU scenario @100%, rejection rate");
    println!("{:>9} {:>12} {:>10}", "alg", "rejection", "±95ci");
    for alg in [Algorithm::Fullg, Algorithm::Olive, Algorithm::SlotOff] {
        let (summaries, _) = run_seeds(
            &substrate,
            alg,
            &opts.seed_list(),
            |seed| {
                let mut rng = SeededRng::new(seed).derive(0xF10);
                gpu_set(&AppGenConfig::default(), &mut rng)
            },
            |seed| opts.config(1.0).with_seed(seed),
        );
        let agg = aggregate(&summaries);
        println!(
            "{:>9} {:>12.4} {:>10.4}",
            alg.label(),
            agg.rejection_rate.0,
            agg.rejection_rate.1
        );
    }
}
