//! Fig. 8: zoom on the allocated demand per slot (scaled down by 100)
//! in Iris at 140% utilization, time slots 200–230, for OLIVE, QUICKG
//! and SLOTOFF against the total requested demand.
//!
//! Expected shape (paper): QUICKG loses a large share of demand even in
//! mild bursts; OLIVE tracks SLOTOFF except in the strongest bursts.

use vne_bench::BenchOpts;
use vne_sim::runner::default_apps;
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};

fn main() {
    let opts = BenchOpts::parse();
    // This figure needs slots 200–230 of the online phase: run the full
    // 600-slot paper phase regardless of scale flags (single seed).
    let seed = opts.seed_list()[0];
    let config = ScenarioConfig::paper(1.4).with_seed(seed);
    let substrate = vne_topology::zoo::iris().expect("iris");
    let apps = default_apps(seed);
    let scenario = Scenario::new(substrate, apps, config);

    let olive = scenario.run(Algorithm::Olive);
    let quickg = scenario.run(Algorithm::Quickg);
    let slotoff = scenario.run(Algorithm::SlotOff);

    println!("# Fig. 8 — Iris @140%, demand per slot (×100 CU), slots 200–230");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "slot", "requested", "OLIVE", "QUICKG", "SLOTOFF"
    );
    for t in 200..=230usize {
        println!(
            "{:>5} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            t,
            olive.result.slots[t].requested_demand / 100.0,
            olive.result.slots[t].allocated_demand / 100.0,
            quickg.result.slots[t].allocated_demand / 100.0,
            slotoff.result.slots[t].allocated_demand / 100.0,
        );
    }
}
