//! Fig. 14: spatial distribution change — the plan's history has every
//! request's ingress remapped to a random datacenter, in Iris.
//!
//! Expected shape (paper): even with a spatially wrong plan OLIVE's
//! rejection rate stays at or below QUICKG's, at similar cost.
//!
//! Checkpointable and resumable: `--checkpoint-every N` records the
//! `shift_plan_ingress` tweak inside every checkpoint file, and
//! `--resume-from FILE` finishes such a run faithfully against the
//! shifted-plan scenario. Both sweeps share one [`SweepContext`]: the
//! unshifted reference reuses the shifted sweep's application draws,
//! and OLIVE/QUICKG reference cells share the unshifted plans.

use std::sync::Arc;

use vne_bench::experiments::{print_rows, resume_from, sweep_shared};
use vne_bench::BenchOpts;
use vne_sim::runner::SweepContext;
use vne_sim::scenario::Algorithm;

fn main() {
    let opts = BenchOpts::parse();
    if resume_from(&opts) {
        return;
    }
    let substrate = vne_topology::zoo::iris().expect("iris");
    let ctx = Arc::new(SweepContext::new());

    // OLIVE with shifted plan input.
    let shifted = sweep_shared(
        &ctx,
        &opts.registry,
        &substrate,
        &[Algorithm::Olive],
        &opts,
        |c| {
            c.shift_plan_ingress = true;
        },
    );
    // References: unshifted OLIVE and QUICKG.
    let reference = sweep_shared(
        &ctx,
        &opts.registry,
        &substrate,
        &[Algorithm::Olive, Algorithm::Quickg],
        &opts,
        |_| {},
    );

    println!("# Fig. 14a — Iris, shifted plan requests: rejection rate");
    print_rows("OLIVE (shifted plan)", &shifted, "rejection", |s| {
        s.rejection_rate
    });
    print_rows("references", &reference, "rejection", |s| s.rejection_rate);
    println!();
    println!("# Fig. 14b — Iris, shifted plan requests: total cost");
    print_rows("OLIVE (shifted plan)", &shifted, "total-cost", |s| {
        s.total_cost
    });
    print_rows("references", &reference, "total-cost", |s| s.total_cost);
}
