//! Adversarial & churn scenario suite: empirical competitive ratios of
//! all four builtin algorithms against the per-scenario offline LP
//! revenue bound, on the tiny exactly-solvable `GoldenDiamond` world.
//!
//! For every scenario (five adversarial workload profiles, three
//! substrate-churn schedules) the suite computes the offline bound from
//! the *same* arrival stream the online runs consume, runs each
//! algorithm with a revenue tracker, and writes one JSON document:
//!
//! ```text
//! fig_adversarial                       # full suite → BENCH_adversarial.json
//! fig_adversarial --tiny                # CI-sized horizon, same matrix
//! fig_adversarial --seed 7 --out X.json
//! ```
//!
//! Every ratio lands in `(0, 1]`: the LP relaxes integrality and sees
//! pristine (unchurned) capacities, so it upper-bounds any online run.

use vne_bench::adversarial::{competitive_report, report_json, scenario_matrix};
use vne_sim::scenario::{Algorithm, ScenarioConfig};
use vne_topology::zoo::golden_diamond;

fn main() {
    let mut seed = 11u64;
    let mut out = String::from("BENCH_adversarial.json");
    let mut tiny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed N (u64)");
            }
            "--out" => out = args.next().expect("--out PATH"),
            "--tiny" => tiny = true,
            other => panic!("unknown flag {other:?}; known: --seed N, --out PATH, --tiny"),
        }
    }

    let (substrate, apps) = golden_diamond().expect("golden world");
    let mut base = ScenarioConfig::small(1.0).with_seed(seed);
    base.aggregation.bootstrap_replicates = 10;
    base.trace.mean_rate_per_node = 2.0;
    if tiny {
        // Long enough that the lifetime-cliff boundary (slot 40) and
        // every churn period fall inside the measurement window —
        // shorter horizons can starve one algorithm's window revenue
        // to zero, which the (0, 1] assertion below rightly rejects.
        base.history_slots = 60;
        base.test_slots = 45;
        base.measure_window = (2, 42);
    } else {
        base.history_slots = 120;
        base.test_slots = 60;
        base.measure_window = (5, 55);
    }

    let mut reports = Vec::new();
    println!(
        "{:<12} {:<16} {:>9} {:>12} {:>12} {:>7}",
        "kind", "scenario", "alg", "revenue", "lp_bound", "ratio"
    );
    for cell in scenario_matrix(&base) {
        let report = competitive_report(&substrate, &apps, &cell, &Algorithm::ALL);
        for row in &report.rows {
            assert!(
                row.competitive_ratio > 0.0 && row.competitive_ratio <= 1.0,
                "{}/{}: competitive ratio {} outside (0, 1]",
                cell.name,
                row.algorithm,
                row.competitive_ratio
            );
            println!(
                "{:<12} {:<16} {:>9} {:>12.2} {:>12.2} {:>7.3}",
                report.kind,
                report.name,
                row.algorithm,
                row.online_revenue,
                report.bound.revenue_bound,
                row.competitive_ratio
            );
        }
        reports.push(report);
    }

    let json = report_json(substrate.name(), &base, &reports);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("# wrote {out}");
}
