//! Execution-pipeline macro-harness: measures what the parallel slot
//! pipeline PR actually buys on this host, and writes the rows to
//! `BENCH_pipeline.json` — a machine-readable snapshot tracking the
//! perf trajectory across commits (diff with `jq`, like
//! `BENCH_plan.json`).
//!
//! Two measurements:
//!
//! 1. **The 30k-slot long-horizon sweep** — six OLIVE cells (three
//!    ablation variants × two seeds) whose plans fold a 30 000-slot
//!    history each. The baseline derives every cell's artifacts
//!    independently (one `run_seeds_in` per variant — the pre-PR
//!    shape); the pipelined path shares one [`SweepContext`], so the
//!    two *distinct* plans are derived once and reused across all six
//!    cells. This is a genuine work reduction, so the speedup holds on
//!    any core count. Summaries are asserted byte-identical.
//! 2. **The 30k-slot engine run** — one long online phase through the
//!    serial vs the three-stage pipelined engine. The overlap
//!    (tracegen ∥ algorithm ∥ observers) pays in proportion to the
//!    free cores; on a single-core host it is roughly neutral (which is
//!    why the scenario dispatch bypasses the pipeline there).
//!
//! Run with: `cargo run --release --bin bench_pipeline [-- --quick]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::cost::RejectionPenalty;
use vne_model::policy::PlacementPolicy;
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_olive::olive::{Olive, OliveConfig};
use vne_sim::engine::{run_stream, run_stream_pipelined, PipelineConfig};
use vne_sim::metrics::Summary;
use vne_sim::observe::WindowSummary;
use vne_sim::registry::AlgorithmRegistry;
use vne_sim::runner::{default_apps, run_seeds_in, run_seeds_with, SweepContext};
use vne_sim::scenario::{Algorithm, ScenarioConfig};
use vne_workload::rng::SeededRng;
use vne_workload::tracegen::{self, ArrivalKind, TraceConfig};

const SEEDS: [u64; 2] = [1, 2];

fn sweep_config(history_slots: u32, test_slots: u32) -> impl Fn(u64) -> ScenarioConfig + Sync {
    move |seed| {
        let mut c = ScenarioConfig::small(1.0).with_seed(seed);
        c.history_slots = history_slots;
        c.test_slots = test_slots;
        c.measure_window = (test_slots / 10, test_slots - test_slots / 10);
        c.aggregation.bootstrap_replicates = 10;
        // Long horizon, moderate rate: the plan folds the whole history.
        c.trace.mean_rate_per_node = 1.0;
        c
    }
}

fn olive_variants() -> Vec<(&'static str, OliveConfig)> {
    vec![
        ("full", OliveConfig::default()),
        (
            "no-borrowing",
            OliveConfig {
                borrowing: false,
                ..OliveConfig::default()
            },
        ),
        (
            "no-preemption",
            OliveConfig {
                preemption: false,
                ..OliveConfig::default()
            },
        ),
    ]
}

/// Runs the variant sweep; `ctx` shares artifacts across variants when
/// given. Returns per-variant summaries (seed order inside).
fn run_sweep(
    substrate: &SubstrateNetwork,
    ctx: Option<&Arc<SweepContext>>,
    history_slots: u32,
    test_slots: u32,
) -> Vec<Summary> {
    let registry = AlgorithmRegistry::builtins();
    let configure = sweep_config(history_slots, test_slots);
    let mut all = Vec::new();
    for (_, olive) in olive_variants() {
        let per_variant = |seed: u64| {
            let mut c = configure(seed);
            c.olive = olive;
            c
        };
        let (summaries, _) = match ctx {
            Some(ctx) => run_seeds_with(
                ctx,
                &registry,
                substrate,
                &Algorithm::Olive.into(),
                &SEEDS,
                default_apps,
                per_variant,
            ),
            None => run_seeds_in(
                &registry,
                substrate,
                &Algorithm::Olive.into(),
                &SEEDS,
                default_apps,
                per_variant,
            ),
        };
        all.extend(summaries);
    }
    all
}

/// The long-horizon engine world (the `long_horizon` test's): ample
/// capacity, low rate, so the 30k-slot stream cycles a small active set.
fn engine_world() -> (SubstrateNetwork, AppSet, TraceConfig) {
    let mut s = SubstrateNetwork::new("long");
    let e = s.add_node("e0", Tier::Edge, 10_000.0, 50.0).unwrap();
    let c = s.add_node("c0", Tier::Core, 50_000.0, 1.0).unwrap();
    s.add_link(e, c, 100_000.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    for (name, len) in [("chain2", 2), ("chain3", 3), ("chain4", 4)] {
        apps.push(
            name,
            AppShape::Chain,
            shapes::uniform_chain(len, 10.0, 1.0).unwrap(),
        )
        .unwrap();
    }
    let config = TraceConfig {
        slots: 0, // set by the caller
        mean_rate_per_node: 2.0,
        demand_mean: 1.0,
        demand_std: 0.2,
        duration_mean: 5.0,
        arrivals: ArrivalKind::Poisson,
        ..TraceConfig::default()
    };
    (s, apps, config)
}

fn engine_run(slots: u32, pipelined: bool) -> (f64, u64) {
    let (s, apps, mut tc) = engine_world();
    tc.slots = slots;
    let mut alg = Olive::quickg(s.clone(), apps.clone(), PlacementPolicy::default());
    let mut window = WindowSummary::new(
        (slots / 10, slots - slots / 10),
        RejectionPenalty::uniform(&apps, 1.0),
    );
    let events = tracegen::stream(&s, &apps, &tc, SeededRng::new(42));
    let started = Instant::now();
    let stats = if pipelined {
        run_stream_pipelined(
            &mut alg,
            &s,
            events,
            &mut window,
            &PipelineConfig::default(),
        )
    } else {
        run_stream(&mut alg, &s, events, &mut window)
    };
    (
        started.elapsed().as_secs_f64(),
        window.finish(&stats).fingerprint(),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (history_slots, test_slots, engine_slots) = if quick {
        (3_000u32, 500u32, 3_000u32)
    } else {
        (30_000, 3_000, 30_000)
    };
    let substrate = vne_topology::zoo::citta_studi().expect("citta studi");
    let variants = olive_variants().len();

    // --- 1. The long-horizon sweep: independent vs shared artifacts.
    let started = Instant::now();
    let baseline = run_sweep(&substrate, None, history_slots, test_slots);
    let baseline_secs = started.elapsed().as_secs_f64();

    let ctx = Arc::new(SweepContext::new());
    let started = Instant::now();
    let shared = run_sweep(&substrate, Some(&ctx), history_slots, test_slots);
    let shared_secs = started.elapsed().as_secs_f64();

    let fingerprints_match = baseline
        .iter()
        .zip(&shared)
        .all(|(a, b)| a.fingerprint() == b.fingerprint());
    assert!(
        fingerprints_match,
        "SweepContext-backed sweep drifted from the independent path"
    );
    let sweep_speedup = baseline_secs / shared_secs;
    println!(
        "sweep    {history_slots}-slot history × {} cells: baseline {baseline_secs:.2}s, \
         shared-context {shared_secs:.2}s  ({sweep_speedup:.2}×, plans built {} → {})",
        variants * SEEDS.len(),
        variants * SEEDS.len(),
        ctx.plans_cached(),
    );

    // --- 2. The long-horizon engine run: serial vs pipelined.
    let (serial_secs, serial_fp) = engine_run(engine_slots, false);
    let (pipelined_secs, pipelined_fp) = engine_run(engine_slots, true);
    assert_eq!(serial_fp, pipelined_fp, "pipelined engine drifted");
    let engine_speedup = serial_secs / pipelined_secs;
    println!(
        "engine   {engine_slots}-slot stream: serial {serial_secs:.2}s, \
         pipelined {pipelined_secs:.2}s  ({engine_speedup:.2}×)"
    );

    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n  \"bench\": \"pipeline\",\n");
    let _ = writeln!(json, "  \"host_parallelism\": {parallelism},");
    let _ = writeln!(json, "  \"sweep\": {{");
    let _ = writeln!(
        json,
        "    \"history_slots\": {history_slots}, \"test_slots\": {test_slots}, \
         \"cells\": {}, \"seeds\": {},",
        variants * SEEDS.len(),
        SEEDS.len()
    );
    let _ = writeln!(
        json,
        "    \"baseline_secs\": {baseline_secs:.3}, \"shared_context_secs\": {shared_secs:.3}, \
         \"speedup\": {sweep_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "    \"plans_built_baseline\": {}, \"plans_built_shared\": {}, \
         \"fingerprints_match\": {fingerprints_match}",
        variants * SEEDS.len(),
        ctx.plans_cached()
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"engine\": {{");
    let _ = writeln!(
        json,
        "    \"slots\": {engine_slots}, \"serial_secs\": {serial_secs:.3}, \
         \"pipelined_secs\": {pipelined_secs:.3}, \"speedup\": {engine_speedup:.3}, \
         \"identical\": true"
    );
    let _ = writeln!(json, "  }}\n}}");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
}
