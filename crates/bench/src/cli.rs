//! Minimal argument parsing shared by the figure binaries.

use vne_model::substrate::SubstrateNetwork;
use vne_sim::scenario::{Algorithm, ScenarioConfig};

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Number of seeds (executions) per configuration.
    pub seeds: usize,
    /// Full paper scale (5400+600 slots) instead of the medium default.
    pub paper_scale: bool,
    /// Utilization sweep as fractions (1.0 = 100%).
    pub utils: Vec<f64>,
    /// Algorithms to sweep (`--algs olive,quickg`; parsed through
    /// [`Algorithm`]'s `FromStr`). Defaults to the scalable trio the
    /// sweep figures use (FULLG is opted into per binary).
    pub algs: Vec<Algorithm>,
    /// Topology restriction (`None` = all four).
    pub topo: Option<String>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            seeds: 3,
            paper_scale: false,
            utils: vec![0.6, 0.8, 1.0, 1.2, 1.4],
            algs: vec![Algorithm::Olive, Algorithm::Quickg, Algorithm::SlotOff],
            topo: None,
        }
    }
}

impl BenchOpts {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        const USAGE: &str =
            "supported: --seeds N --paper --utils 60,100 --algs olive,quickg --topo iris";
        fn value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("{flag} requires a value; {USAGE}"))
        }

        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--seeds" => {
                    opts.seeds = value(&args, &mut i, "--seeds")
                        .parse()
                        .expect("--seeds takes an integer");
                }
                "--paper" | "--full" => opts.paper_scale = true,
                "--utils" => {
                    opts.utils = value(&args, &mut i, "--utils")
                        .split(',')
                        .map(|p| p.parse::<f64>().expect("--utils takes percents") / 100.0)
                        .collect();
                }
                "--algs" => {
                    opts.algs = value(&args, &mut i, "--algs")
                        .split(',')
                        .map(|name| name.parse::<Algorithm>().unwrap_or_else(|e| panic!("{e}")))
                        .collect();
                }
                "--topo" => {
                    opts.topo = Some(value(&args, &mut i, "--topo").to_lowercase());
                }
                other => panic!("unknown argument {other}; {USAGE}"),
            }
            i += 1;
        }
        opts
    }

    /// The seed list `1..=seeds`.
    pub fn seed_list(&self) -> Vec<u64> {
        (1..=self.seeds as u64).collect()
    }

    /// The scenario config at a utilization, honoring `--paper`.
    pub fn config(&self, utilization: f64) -> ScenarioConfig {
        if self.paper_scale {
            ScenarioConfig::paper(utilization)
        } else {
            medium_config(utilization)
        }
    }

    /// The topologies to run on, honoring `--topo`.
    pub fn topologies(&self) -> Vec<SubstrateNetwork> {
        let all = [
            ("iris", vne_topology::zoo::iris().expect("iris")),
            ("citta", vne_topology::zoo::citta_studi().expect("citta")),
            ("5gen", vne_topology::gen5g::five_gen().expect("5gen")),
            (
                "100n150e",
                vne_topology::random::hundred_n_150e().expect("random"),
            ),
        ];
        match &self.topo {
            None => all.into_iter().map(|(_, s)| s).collect(),
            Some(pick) => all
                .into_iter()
                .filter(|(name, _)| name.starts_with(pick.as_str()))
                .map(|(_, s)| s)
                .collect(),
        }
    }
}

/// The default medium scale: one third of the paper's horizon with the
/// same structure (enough for stationary behavior at far lower cost).
pub fn medium_config(utilization: f64) -> ScenarioConfig {
    let mut c = ScenarioConfig::paper(utilization);
    c.history_slots = 1800;
    c.test_slots = 300;
    c.measure_window = (50, 250);
    c.aggregation.bootstrap_replicates = 50;
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_paper_sweep() {
        let opts = BenchOpts::default();
        assert_eq!(opts.utils.len(), 5);
        assert_eq!(opts.seed_list(), vec![1, 2, 3]);
        assert_eq!(opts.topologies().len(), 4);
        assert_eq!(
            opts.algs,
            vec![Algorithm::Olive, Algorithm::Quickg, Algorithm::SlotOff]
        );
    }

    #[test]
    fn algorithm_names_parse_like_the_cli() {
        // `--algs` goes through Algorithm::from_str — one parser for
        // labels and CLI input.
        let parsed: Vec<Algorithm> = "olive,FULLG, slotoff"
            .split(',')
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(
            parsed,
            vec![Algorithm::Olive, Algorithm::Fullg, Algorithm::SlotOff]
        );
        assert!("cplex".parse::<Algorithm>().is_err());
    }

    #[test]
    fn medium_config_is_reduced_paper() {
        let c = medium_config(1.2);
        assert_eq!(c.test_slots, 300);
        assert!((c.utilization - 1.2).abs() < 1e-12);
    }
}
