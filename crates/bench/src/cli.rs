//! Minimal argument parsing shared by the figure binaries.
//!
//! Algorithm selection is *registry-driven*: `--algs` names are
//! resolved against an [`AlgorithmRegistry`] chosen by the
//! `--registry` flag / `VNE_REGISTRY` environment variable from a
//! process-global provider table ([`register_registry_provider`]).
//! A downstream binary can therefore register a provider that builds a
//! registry with custom algorithms and reuse every sweep driver in
//! this crate — no recompilation of `vne-bench` needed.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use vne_model::request::Slot;
use vne_model::substrate::SubstrateNetwork;
use vne_sim::registry::{AlgorithmRegistry, AlgorithmSpec};
use vne_sim::scenario::{Algorithm, ScenarioConfig};

/// Builds the algorithm registry a sweep resolves `--algs` against.
pub type RegistryProvider = Arc<dyn Fn() -> AlgorithmRegistry + Send + Sync>;

/// The provider table: name → registry constructor.
fn providers() -> &'static Mutex<BTreeMap<String, RegistryProvider>> {
    static PROVIDERS: OnceLock<Mutex<BTreeMap<String, RegistryProvider>>> = OnceLock::new();
    PROVIDERS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Registers (or replaces) a named registry provider. Call this before
/// [`BenchOpts::parse`] in a custom binary, then select it with
/// `--registry NAME` or `VNE_REGISTRY=NAME`.
pub fn register_registry_provider(
    name: &str,
    provider: impl Fn() -> AlgorithmRegistry + Send + Sync + 'static,
) {
    providers()
        .lock()
        .expect("registry provider table poisoned")
        .insert(name.to_ascii_lowercase(), Arc::new(provider));
}

/// Resolves a provider by name. Registered providers win; `"builtins"`
/// (or the empty string) falls back to [`AlgorithmRegistry::builtins`]
/// unless a provider overrode that name.
///
/// Returns `None` for unknown names.
pub fn registry_named(name: &str) -> Option<AlgorithmRegistry> {
    let normalized = name.trim().to_ascii_lowercase();
    if let Some(provider) = providers()
        .lock()
        .expect("registry provider table poisoned")
        .get(&normalized)
    {
        return Some(provider());
    }
    if normalized.is_empty() || normalized == "builtins" {
        return Some(AlgorithmRegistry::builtins());
    }
    None
}

/// The provider names selectable right now (always includes
/// `builtins`), sorted and unique.
pub fn registry_names() -> Vec<String> {
    let mut names: Vec<String> = providers()
        .lock()
        .expect("registry provider table poisoned")
        .keys()
        .cloned()
        .collect();
    names.push("builtins".to_string());
    names.sort();
    names.dedup();
    names
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Number of seeds (executions) per configuration.
    pub seeds: usize,
    /// Full paper scale (5400+600 slots) instead of the medium default.
    pub paper_scale: bool,
    /// Utilization sweep as fractions (1.0 = 100%).
    pub utils: Vec<f64>,
    /// Algorithms to sweep (`--algs olive,quickg`), validated against
    /// [`BenchOpts::registry`]. Defaults to the scalable trio the sweep
    /// figures use (FULLG is opted into per binary).
    pub algs: Vec<AlgorithmSpec>,
    /// The registry `--algs` names resolve in and sweeps run with
    /// (selected by `--registry` / `VNE_REGISTRY`; builtins otherwise).
    pub registry: AlgorithmRegistry,
    /// Topology restriction (`None` = all four).
    pub topo: Option<String>,
    /// Serialize a checkpoint every N online slots of every per-seed
    /// run (`--checkpoint-every N`); files land in `checkpoint_dir`.
    /// Honored by the sweep-driver binaries
    /// ([`crate::experiments::sweep`]).
    pub checkpoint_every: Option<Slot>,
    /// Where `--checkpoint-every` writes its files
    /// (`--checkpoint-dir`, default `checkpoints/`).
    pub checkpoint_dir: PathBuf,
    /// Resume a single checkpointed run from a file written by
    /// `--checkpoint-every` and report its final summary instead of
    /// sweeping (`--resume-from FILE`). Handled by binaries that call
    /// [`crate::experiments::resume_from`] (fig06, fig07, fig13,
    /// fig14); sweep-driver binaries that do not handle it fail loudly
    /// instead of silently re-sweeping.
    pub resume_from: Option<PathBuf>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            seeds: 3,
            paper_scale: false,
            utils: vec![0.6, 0.8, 1.0, 1.2, 1.4],
            algs: vec![
                Algorithm::Olive.into(),
                Algorithm::Quickg.into(),
                Algorithm::SlotOff.into(),
            ],
            registry: AlgorithmRegistry::builtins(),
            topo: None,
            checkpoint_every: None,
            checkpoint_dir: PathBuf::from("checkpoints"),
            resume_from: None,
        }
    }
}

impl BenchOpts {
    /// Parses `std::env::args()`, honoring `VNE_REGISTRY`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments, unknown
    /// registry providers, or `--algs` names the selected registry does
    /// not know.
    pub fn parse() -> Self {
        Self::parse_from(&std::env::args().skip(1).collect::<Vec<_>>())
    }

    /// Parses an explicit argument list (exposed for tests and custom
    /// binaries; [`BenchOpts::parse`] wraps the process arguments),
    /// reading `VNE_REGISTRY` from the process environment.
    ///
    /// # Panics
    ///
    /// See [`BenchOpts::parse`].
    pub fn parse_from(args: &[String]) -> Self {
        Self::parse_with_env(args, std::env::var("VNE_REGISTRY").ok())
    }

    /// The full parser with the `VNE_REGISTRY` value passed explicitly
    /// — the flag wins over the variable when both are given. Split out
    /// so the precedence is testable without mutating the (process-wide,
    /// test-shared) environment.
    fn parse_with_env(args: &[String], env_registry: Option<String>) -> Self {
        const USAGE: &str = "supported: --seeds N --paper --utils 60,100 \
                             --algs olive,quickg --registry NAME --topo iris \
                             --checkpoint-every N --checkpoint-dir DIR --resume-from FILE";
        fn value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("{flag} requires a value; {USAGE}"))
        }

        let mut opts = Self::default();
        let mut registry_pick: Option<String> = env_registry;
        let mut explicit_algs: Option<Vec<AlgorithmSpec>> = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--seeds" => {
                    opts.seeds = value(args, &mut i, "--seeds")
                        .parse()
                        .expect("--seeds takes an integer");
                }
                "--paper" | "--full" => opts.paper_scale = true,
                "--utils" => {
                    opts.utils = value(args, &mut i, "--utils")
                        .split(',')
                        .map(|p| p.parse::<f64>().expect("--utils takes percents") / 100.0)
                        .collect();
                }
                "--algs" => {
                    explicit_algs = Some(
                        value(args, &mut i, "--algs")
                            .split(',')
                            .map(AlgorithmSpec::new)
                            .collect(),
                    );
                }
                "--registry" => {
                    registry_pick = Some(value(args, &mut i, "--registry").to_string());
                }
                "--topo" => {
                    opts.topo = Some(value(args, &mut i, "--topo").to_lowercase());
                }
                "--checkpoint-every" => {
                    let every: Slot = value(args, &mut i, "--checkpoint-every")
                        .parse()
                        .expect("--checkpoint-every takes a slot count");
                    assert!(every > 0, "--checkpoint-every must be positive");
                    opts.checkpoint_every = Some(every);
                }
                "--checkpoint-dir" => {
                    opts.checkpoint_dir = PathBuf::from(value(args, &mut i, "--checkpoint-dir"));
                }
                "--resume-from" => {
                    opts.resume_from = Some(PathBuf::from(value(args, &mut i, "--resume-from")));
                }
                other => panic!("unknown argument {other}; {USAGE}"),
            }
            i += 1;
        }
        if let Some(name) = registry_pick {
            opts.registry = registry_named(&name).unwrap_or_else(|| {
                panic!(
                    "unknown registry provider {name:?}; available: {}",
                    registry_names().join(", ")
                )
            });
        }
        match explicit_algs {
            Some(algs) => {
                // Explicitly requested names must all resolve.
                for spec in &algs {
                    assert!(
                        opts.registry.contains(spec),
                        "unknown algorithm {:?}; registered: {}",
                        spec.name(),
                        opts.registry.names().join(", ")
                    );
                }
                opts.algs = algs;
            }
            None => {
                // The default trio, restricted to what the selected
                // registry actually knows (a builtin-free registry must
                // not fail on names the user never asked for).
                opts.algs.retain(|spec| opts.registry.contains(spec));
                assert!(
                    !opts.algs.is_empty(),
                    "the selected registry has none of the default algorithms; \
                     pass --algs (registered: {})",
                    opts.registry.names().join(", ")
                );
            }
        }
        opts
    }

    /// The seed list `1..=seeds`.
    pub fn seed_list(&self) -> Vec<u64> {
        (1..=self.seeds as u64).collect()
    }

    /// The scenario config at a utilization, honoring `--paper`.
    pub fn config(&self, utilization: f64) -> ScenarioConfig {
        if self.paper_scale {
            ScenarioConfig::paper(utilization)
        } else {
            medium_config(utilization)
        }
    }

    /// The topologies to run on, honoring `--topo`.
    pub fn topologies(&self) -> Vec<SubstrateNetwork> {
        let all = [
            ("iris", vne_topology::zoo::iris().expect("iris")),
            ("citta", vne_topology::zoo::citta_studi().expect("citta")),
            ("5gen", vne_topology::gen5g::five_gen().expect("5gen")),
            (
                "100n150e",
                vne_topology::random::hundred_n_150e().expect("random"),
            ),
        ];
        match &self.topo {
            None => all.into_iter().map(|(_, s)| s).collect(),
            Some(pick) => all
                .into_iter()
                .filter(|(name, _)| name.starts_with(pick.as_str()))
                .map(|(_, s)| s)
                .collect(),
        }
    }
}

/// The default medium scale: one third of the paper's horizon with the
/// same structure (enough for stationary behavior at far lower cost).
pub fn medium_config(utilization: f64) -> ScenarioConfig {
    let mut c = ScenarioConfig::paper(utilization);
    c.history_slots = 1800;
    c.test_slots = 300;
    c.measure_window = (50, 250);
    c.aggregation.bootstrap_replicates = 50;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_sim::registry::BuiltAlgorithm;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_cover_paper_sweep() {
        let opts = BenchOpts::default();
        assert_eq!(opts.utils.len(), 5);
        assert_eq!(opts.seed_list(), vec![1, 2, 3]);
        assert_eq!(opts.topologies().len(), 4);
        assert_eq!(
            opts.algs,
            vec![
                AlgorithmSpec::new("OLIVE"),
                AlgorithmSpec::new("QUICKG"),
                AlgorithmSpec::new("SLOTOFF"),
            ]
        );
        assert_eq!(opts.registry.names(), AlgorithmRegistry::builtins().names());
    }

    #[test]
    fn algs_parse_and_validate_against_the_registry() {
        let opts = BenchOpts::parse_from(&args(&["--algs", "olive,FULLG, slotoff"]));
        assert_eq!(
            opts.algs,
            vec![
                AlgorithmSpec::new("OLIVE"),
                AlgorithmSpec::new("FULLG"),
                AlgorithmSpec::new("SLOTOFF"),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "unknown algorithm")]
    fn unknown_algorithms_are_rejected() {
        let _ = BenchOpts::parse_from(&args(&["--algs", "cplex"]));
    }

    #[test]
    #[should_panic(expected = "unknown registry provider")]
    fn unknown_registry_provider_is_rejected() {
        let _ = BenchOpts::parse_from(&args(&["--registry", "no-such-provider"]));
    }

    #[test]
    #[should_panic(expected = "unknown registry provider")]
    fn unknown_registry_from_env_is_rejected() {
        // The env-var selection path validates names like the flag does.
        let _ = BenchOpts::parse_with_env(&args(&[]), Some("no-such-env-provider".to_string()));
    }

    #[test]
    #[should_panic(expected = "unknown algorithm")]
    fn unknown_algorithm_in_a_known_registry_is_rejected() {
        // The registry resolves ("builtins"), the algorithm does not.
        register_registry_provider("known-registry", AlgorithmRegistry::builtins);
        let _ = BenchOpts::parse_from(&args(&[
            "--registry",
            "known-registry",
            "--algs",
            "olive,notanalg",
        ]));
    }

    #[test]
    fn registry_flag_wins_over_env_var() {
        register_registry_provider("precedence-flag", || {
            let mut registry = AlgorithmRegistry::empty();
            registry.register("FLAGALG", |ctx| {
                BuiltAlgorithm::plain(vne_olive::olive::Olive::quickg(
                    ctx.substrate().clone(),
                    ctx.apps().clone(),
                    ctx.policy().clone(),
                ))
            });
            registry
        });
        register_registry_provider("precedence-env", || {
            let mut registry = AlgorithmRegistry::empty();
            registry.register("ENVALG", |ctx| {
                BuiltAlgorithm::plain(vne_olive::olive::Olive::quickg(
                    ctx.substrate().clone(),
                    ctx.apps().clone(),
                    ctx.policy().clone(),
                ))
            });
            registry
        });
        // Flag present: the env var loses.
        let opts = BenchOpts::parse_with_env(
            &args(&["--registry", "precedence-flag", "--algs", "flagalg"]),
            Some("precedence-env".to_string()),
        );
        assert_eq!(opts.registry.names(), vec!["FLAGALG"]);
        // No flag: the env var selects.
        let opts = BenchOpts::parse_with_env(
            &args(&["--algs", "envalg"]),
            Some("precedence-env".to_string()),
        );
        assert_eq!(opts.registry.names(), vec!["ENVALG"]);
        // The env-selected registry still validates --algs strictly.
        let err = std::panic::catch_unwind(|| {
            BenchOpts::parse_with_env(
                &args(&["--algs", "flagalg"]),
                Some("precedence-env".to_string()),
            )
        });
        assert!(err.is_err(), "env registry must reject foreign algs");
    }

    #[test]
    fn checkpoint_flags_parse() {
        let opts = BenchOpts::parse_from(&args(&[
            "--checkpoint-every",
            "50",
            "--checkpoint-dir",
            "/tmp/ckpts",
            "--resume-from",
            "/tmp/ckpts/one.bin",
        ]));
        assert_eq!(opts.checkpoint_every, Some(50));
        assert_eq!(opts.checkpoint_dir, PathBuf::from("/tmp/ckpts"));
        assert_eq!(opts.resume_from, Some(PathBuf::from("/tmp/ckpts/one.bin")));
        let defaults = BenchOpts::default();
        assert_eq!(defaults.checkpoint_every, None);
        assert_eq!(defaults.checkpoint_dir, PathBuf::from("checkpoints"));
    }

    #[test]
    #[should_panic(expected = "--checkpoint-every must be positive")]
    fn zero_checkpoint_interval_is_rejected() {
        let _ = BenchOpts::parse_from(&args(&["--checkpoint-every", "0"]));
    }

    #[test]
    fn custom_provider_extends_the_alg_namespace() {
        // A provider adding a fifth algorithm on top of the builtins:
        // the plugin path figure bins use without recompiling.
        register_registry_provider("extended-test", || {
            let mut registry = AlgorithmRegistry::builtins();
            registry.register("MYALG", |ctx| {
                BuiltAlgorithm::plain(vne_olive::olive::Olive::quickg(
                    ctx.substrate().clone(),
                    ctx.apps().clone(),
                    ctx.policy().clone(),
                ))
            });
            registry
        });
        assert!(registry_names().contains(&"extended-test".to_string()));
        // "myalg" resolves only through the custom provider.
        let opts = BenchOpts::parse_from(&args(&[
            "--registry",
            "extended-test",
            "--algs",
            "myalg,olive",
        ]));
        assert!(opts.registry.contains(&AlgorithmSpec::new("myalg")));
        assert_eq!(opts.algs.len(), 2);
        assert!(registry_named("builtins")
            .unwrap()
            .names()
            .iter()
            .all(|n| *n != "MYALG"));
    }

    #[test]
    fn builtin_free_registry_filters_the_default_algs() {
        // A registry without the builtin names must not panic on the
        // *default* algs the user never asked for — it keeps whatever
        // defaults it does know (here: only QUICKG).
        register_registry_provider("quickg-only", || {
            let mut registry = AlgorithmRegistry::empty();
            registry.register("QUICKG", |ctx| {
                BuiltAlgorithm::plain(vne_olive::olive::Olive::quickg(
                    ctx.substrate().clone(),
                    ctx.apps().clone(),
                    ctx.policy().clone(),
                ))
            });
            registry
        });
        let opts = BenchOpts::parse_from(&args(&["--registry", "quickg-only"]));
        assert_eq!(opts.algs, vec![AlgorithmSpec::new("QUICKG")]);
        // Explicit names still fail loudly against that registry.
        let err = std::panic::catch_unwind(|| {
            BenchOpts::parse_from(&args(&["--registry", "quickg-only", "--algs", "olive"]))
        });
        assert!(err.is_err());
    }

    #[test]
    fn medium_config_is_reduced_paper() {
        let c = medium_config(1.2);
        assert_eq!(c.test_slots, 300);
        assert!((c.utilization - 1.2).abs() < 1e-12);
    }
}
