//! Shared experiment drivers for the figure binaries.
//!
//! Sweeps run *flattened*: every (utilization, algorithm, seed) cell of
//! a sweep feeds one worker pool ([`vne_sim::runner::cell_map`]), and
//! all cells share one [`SweepContext`] — per-seed application draws
//! and offline plans are derived once and reused wherever the plan
//! inputs coincide (e.g. plan-based algorithm variants). Results are
//! byte-identical to the cell-by-cell path.
//!
//! This module also carries the checkpoint/resume plumbing behind
//! `--checkpoint-every` / `--resume-from`: a sweep run with
//! checkpointing writes one [`BenchCheckpoint`] file per (topology,
//! algorithm, utilization, seed) cell — the engine checkpoint plus the
//! **complete scenario configuration** needed to rebuild the run — and
//! [`resume_from`] finishes any such file to the exact summary the
//! uninterrupted run would have produced.
//!
//! Checkpoint files serialize the full [`ScenarioConfig`], so config
//! tweaks applied by figure binaries (Fig. 13's `plan_utilization`,
//! Fig. 14's `shift_plan_ingress`, ablation switches, horizon changes)
//! are captured and replayed faithfully on resume. The only
//! unrepresentable tweak is a [`EstimatorKind::Custom`] factory (an
//! opaque closure); checkpointing such a sweep fails loudly. Legacy
//! `VNEBENC1` files — which recorded only the standard coordinates and
//! silently resumed tweaked runs against the wrong scenario — are
//! refused with an explicit error.

use std::sync::Arc;

use vne_model::state::{StateBlob, StateError, StateReader, StateWriter};
use vne_model::substrate::SubstrateNetwork;
use vne_olive::olive::OliveConfig;
use vne_sim::engine::EngineCheckpoint;
use vne_sim::engine::ReembedKind;
use vne_sim::metrics::{aggregate, AggregatedSummary, Summary};
use vne_sim::registry::{AlgorithmRegistry, AlgorithmSpec};
use vne_sim::runner::{cell_map, default_apps, seed_map, SweepContext};
use vne_sim::scenario::{Scenario, ScenarioConfig};
use vne_workload::adversary::{AdversaryProfile, ChurnProfile};
use vne_workload::caida::CaidaConfig;
use vne_workload::estimator::EstimatorKind;
use vne_workload::tracegen::{ArrivalKind, TraceConfig};

use crate::cli::BenchOpts;

/// One row of a sweep result.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Topology name.
    pub topology: String,
    /// Utilization fraction.
    pub utilization: f64,
    /// Algorithm name.
    pub algorithm: String,
    /// Aggregated metrics across seeds.
    pub summary: AggregatedSummary,
}

/// Runs `algorithms × opts.utils` on one topology and returns rows.
///
/// Algorithms are anything resolvable by the options' registry
/// ([`BenchOpts::registry`], selected via `--registry` /
/// `VNE_REGISTRY`) — [`vne_sim::scenario::Algorithm`] values, names,
/// or custom algorithms a registry provider added; use [`sweep_in`] to
/// bypass the options and pass a registry directly. `tweak` customizes
/// the scenario config after the scale defaults are applied (e.g.
/// Fig. 13's `plan_utilization`).
pub fn sweep<S, F>(
    substrate: &SubstrateNetwork,
    algorithms: &[S],
    opts: &BenchOpts,
    tweak: F,
) -> Vec<SweepRow>
where
    S: Clone + Into<AlgorithmSpec>,
    F: Fn(&mut ScenarioConfig) + Sync,
{
    sweep_in(&opts.registry, substrate, algorithms, opts, tweak)
}

/// [`sweep`] with an explicit algorithm registry (custom algorithms in
/// figure-style sweeps). Creates a fresh [`SweepContext`] for the call;
/// use [`sweep_shared`] to share artifacts across several sweeps.
pub fn sweep_in<S, F>(
    registry: &AlgorithmRegistry,
    substrate: &SubstrateNetwork,
    algorithms: &[S],
    opts: &BenchOpts,
    tweak: F,
) -> Vec<SweepRow>
where
    S: Clone + Into<AlgorithmSpec>,
    F: Fn(&mut ScenarioConfig) + Sync,
{
    sweep_shared(
        &Arc::new(SweepContext::new()),
        registry,
        substrate,
        algorithms,
        opts,
        tweak,
    )
}

/// [`sweep_in`] sharing an explicit [`SweepContext`] — consecutive
/// sweeps over the same substrate and seeds (e.g. ablation variants)
/// then reuse each other's application draws and offline plans instead
/// of re-deriving them per cell. Results are byte-identical to
/// independent sweeps.
pub fn sweep_shared<S, F>(
    ctx: &Arc<SweepContext>,
    registry: &AlgorithmRegistry,
    substrate: &SubstrateNetwork,
    algorithms: &[S],
    opts: &BenchOpts,
    tweak: F,
) -> Vec<SweepRow>
where
    S: Clone + Into<AlgorithmSpec>,
    F: Fn(&mut ScenarioConfig) + Sync,
{
    // An unconsumed --resume-from means the binary never called
    // [`resume_from`]: fail loudly rather than silently re-sweep the
    // run the user asked to finish.
    assert!(
        opts.resume_from.is_none(),
        "--resume-from is not supported by this binary's sweep; \
         use a binary that handles it (e.g. fig06, fig07, fig13, fig14)"
    );
    let specs: Vec<AlgorithmSpec> = algorithms.iter().cloned().map(Into::into).collect();
    if let Some(every) = opts.checkpoint_every {
        let mut rows = Vec::new();
        for &u in &opts.utils {
            for spec in &specs {
                rows.push(SweepRow {
                    topology: substrate.name().to_string(),
                    utilization: u,
                    algorithm: spec.name().to_string(),
                    summary: checkpointed_cell(
                        ctx, registry, substrate, spec, opts, u, every, &tweak,
                    ),
                });
            }
        }
        return rows;
    }

    // The pipelined sweep pool: every (utilization, algorithm, seed)
    // cell feeds one worker pool, so workers stay busy across cell
    // boundaries and memoized plans become available to later cells as
    // the first cell needing them derives them.
    let seeds = opts.seed_list();
    let mut cells: Vec<(f64, AlgorithmSpec, ScenarioConfig)> = Vec::new();
    for &u in &opts.utils {
        for spec in &specs {
            for &seed in &seeds {
                let mut config = opts.config(u).with_seed(seed);
                tweak(&mut config);
                cells.push((u, spec.clone(), config));
            }
        }
    }
    let summaries: Vec<Summary> = cell_map(&cells, |(_, spec, config)| {
        let apps = ctx.apps(config.seed, default_apps);
        let scenario = Scenario::new(substrate.clone(), apps, config.clone())
            .with_registry(registry.clone())
            .with_sweep_context(Arc::clone(ctx));
        scenario.run_summary(spec).unwrap_or_else(|e| panic!("{e}"))
    });
    summaries
        .chunks(seeds.len())
        .enumerate()
        .map(|(i, per_seed)| {
            let (u, spec, _) = &cells[i * seeds.len()];
            SweepRow {
                topology: substrate.name().to_string(),
                utilization: *u,
                algorithm: spec.name().to_string(),
                summary: aggregate(per_seed),
            }
        })
        .collect()
}

/// One checkpointing sweep cell: runs every seed with a
/// [`vne_sim::observe::Checkpointer`] that writes each capture to
/// `<checkpoint_dir>/ckpt-<topo>-<alg>-u<pct>-s<seed>.bin` (latest
/// capture overwrites — the file is always the newest resume point).
/// Seeds fan out through [`seed_map`] like the plain path; each seed
/// owns its file, so the writes never contend. The sweep's config
/// tweak is serialized into every file (the full [`ScenarioConfig`]),
/// so Fig. 13/14-style tweaked cells resume faithfully.
///
/// # Panics
///
/// Panics when the tweaked config uses a custom estimator — the one
/// tweak a checkpoint file cannot represent (see
/// [`uncheckpointable_config`]).
#[allow(clippy::too_many_arguments)]
fn checkpointed_cell<F>(
    ctx: &Arc<SweepContext>,
    registry: &AlgorithmRegistry,
    substrate: &SubstrateNetwork,
    spec: &AlgorithmSpec,
    opts: &BenchOpts,
    utilization: f64,
    every: u32,
    tweak: &F,
) -> AggregatedSummary
where
    F: Fn(&mut ScenarioConfig) + Sync,
{
    std::fs::create_dir_all(&opts.checkpoint_dir).expect("create checkpoint directory");
    let summaries = seed_map(&opts.seed_list(), |seed| {
        let mut config = opts.config(utilization).with_seed(seed);
        tweak(&mut config);
        if let Some(what) = uncheckpointable_config(&config) {
            panic!(
                "--checkpoint-every is not supported by this binary's sweep: its config \
                 uses {what}, which a checkpoint file cannot record, so resuming it \
                 would rebuild the wrong scenario"
            );
        }
        let scenario = Scenario::new(
            substrate.clone(),
            ctx.apps(seed, default_apps),
            config.clone(),
        )
        .with_registry(registry.clone())
        .with_sweep_context(Arc::clone(ctx));
        // A fingerprint of the *complete* config joins the filename, so
        // variant sweeps over the same (topology, algorithm,
        // utilization, seed) cell — fig13's plan-utilization variants,
        // ablation switches, changed horizons — never overwrite each
        // other's resume points in a shared checkpoint directory.
        let path = opts.checkpoint_dir.join(format!(
            "ckpt-{}-{}-u{:.0}-c{:08x}-s{seed}.bin",
            substrate.name(),
            spec.name(),
            utilization * 100.0,
            config_fingerprint(&config) as u32,
        ));
        let topology = substrate.name().to_string();
        let (summary, _) = scenario
            .run_summary_checkpointed(
                spec,
                every,
                Some(Box::new(move |cp: &EngineCheckpoint| {
                    let full = BenchCheckpoint {
                        topology: topology.clone(),
                        config: config.clone(),
                        checkpoint: cp.clone(),
                    };
                    vne_sim::persist::write_bytes_atomic(&path, &full.to_bytes())
                        .expect("write checkpoint file");
                })),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        summary
    });
    aggregate(&summaries)
}

/// FNV-1a fingerprint of a serialized [`ScenarioConfig`] — the
/// discriminator in checkpoint filenames (`-c<8 hex>`), so sweeps that
/// differ in *any* recorded field (OLIVE ablation switches, horizons,
/// distortions) keep distinct resume points in a shared directory
/// instead of overwriting each other.
///
/// # Panics
///
/// Panics on a custom-estimator config (not serializable; the sweep
/// driver rejects those first).
pub fn config_fingerprint(config: &ScenarioConfig) -> u64 {
    assert!(
        uncheckpointable_config(config).is_none(),
        "custom-estimator configs have no checkpoint fingerprint"
    );
    let mut w = StateWriter::new();
    encode_config(config, &mut w);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in w.finish().as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The one configuration a [`BenchCheckpoint`] cannot represent:
/// a [`EstimatorKind::Custom`] factory (an opaque closure). Everything
/// else — horizons, windows, utilizations, the Fig. 13/14 distortions,
/// OLIVE ablation switches, trace and CAIDA parameters — serializes
/// into the file verbatim. Returns a description of the offending
/// field, or `None` when the config is fully representable.
pub fn uncheckpointable_config(config: &ScenarioConfig) -> Option<String> {
    if matches!(config.estimator, EstimatorKind::Custom(_)) {
        return Some("a custom estimator factory".to_string());
    }
    None
}

/// An [`EngineCheckpoint`] plus everything a figure-bin run needs to
/// rebuild it exactly: the topology name and the **complete**
/// [`ScenarioConfig`] (horizons, measurement window, utilizations, the
/// Fig. 13 `plan_utilization` and Fig. 14 `shift_plan_ingress` tweaks,
/// OLIVE ablation switches, aggregation, estimator kind, trace/CAIDA
/// parameters, seed). This is what `--checkpoint-every` writes and
/// `--resume-from` reads; because the config rides in the file, tweaked
/// sweep cells resume against the scenario they were captured from —
/// not a silently different standard one.
#[derive(Debug, Clone)]
pub struct BenchCheckpoint {
    /// The substrate's name (one of the four builtin topologies).
    pub topology: String,
    /// The complete scenario configuration of the checkpointed run.
    pub config: ScenarioConfig,
    /// The frozen engine/algorithm/observer state.
    pub checkpoint: EngineCheckpoint,
}

/// The legacy format prefix: recorded only (topology, utilization,
/// seed, scale), so tweaked cells resumed against the wrong scenario.
/// Files with this magic are refused.
const LEGACY_MAGIC_V1: [u8; 8] = *b"VNEBENC1";

/// The pre-scenario-suite format: recorded the full config but not the
/// adversary/churn/re-embed scenario fields, so an adversarial or
/// churned cell would silently resume as a benign one. Refused.
const LEGACY_MAGIC_V2: [u8; 8] = *b"VNEBENC2";

impl BenchCheckpoint {
    /// Magic + version prefix of the file format.
    pub const MAGIC: [u8; 8] = *b"VNEBENC3";

    /// The run's seed (from the embedded config).
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// The run's online utilization fraction (from the embedded config).
    pub fn utilization(&self) -> f64 {
        self.config.utilization
    }

    /// Serializes the file.
    ///
    /// # Panics
    ///
    /// Panics when the config is not representable (custom estimator) —
    /// the sweep driver rejects such configs before running.
    pub fn to_bytes(&self) -> Vec<u8> {
        if let Some(what) = uncheckpointable_config(&self.config) {
            panic!("cannot serialize a bench checkpoint for a scenario using {what}");
        }
        let mut w = StateWriter::new();
        for b in Self::MAGIC {
            w.write_u8(b);
        }
        w.write_str(&self.topology);
        encode_config(&self.config, &mut w);
        w.write_blob(&StateBlob::from_bytes(self.checkpoint.to_bytes()));
        w.finish().into_bytes()
    }

    /// Parses a file written by [`BenchCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on bad magic or malformed content, and
    /// a [`StateError::Mismatch`] for legacy `VNEBENC1` files — those
    /// omitted the config tweaks, so resuming them could silently
    /// rebuild the wrong scenario.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::from_bytes(bytes);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.read_u8()?;
        }
        if magic == LEGACY_MAGIC_V1 {
            return Err(StateError::Mismatch {
                expected: "bench-checkpoint format VNEBENC3 (records the full scenario config)"
                    .to_string(),
                found: "legacy VNEBENC1 file, which omits config tweaks (Fig. 13 \
                        plan_utilization, Fig. 14 ingress shift) and would resume the wrong \
                        scenario; re-run the sweep to produce a v3 checkpoint"
                    .to_string(),
            });
        }
        if magic == LEGACY_MAGIC_V2 {
            return Err(StateError::Mismatch {
                expected: "bench-checkpoint format VNEBENC3 (records the scenario-suite \
                           fields: adversary, churn, re-embed policy)"
                    .to_string(),
                found: "legacy VNEBENC2 file, which predates the scenario suite and would \
                        silently resume an adversarial or churned cell as a benign one; \
                        re-run the sweep to produce a v3 checkpoint"
                    .to_string(),
            });
        }
        if magic != Self::MAGIC {
            return Err(StateError::Corrupt(format!(
                "bad bench-checkpoint magic {magic:02x?}"
            )));
        }
        let topology = r.read_str()?;
        let config = decode_config(&mut r)?;
        // read_blob bounds-checks the length against the remaining
        // bytes before allocating, so a corrupt length field errors
        // instead of attempting a huge allocation.
        let inner = r.read_blob()?;
        r.finish()?;
        Ok(Self {
            topology,
            config,
            checkpoint: EngineCheckpoint::from_bytes(inner.as_bytes())?,
        })
    }

    /// Rebuilds the scenario this checkpoint froze — same topology,
    /// application draw, and the **exact** recorded configuration,
    /// tweaks included — and resolves algorithms in `registry`.
    ///
    /// # Panics
    ///
    /// Panics when the topology name is not one of the four builtins.
    pub fn scenario(&self, registry: &AlgorithmRegistry) -> Scenario {
        let substrate = topology_named(&self.topology)
            .unwrap_or_else(|| panic!("unknown checkpoint topology {:?}", self.topology));
        Scenario::new(
            substrate,
            default_apps(self.config.seed),
            self.config.clone(),
        )
        .with_registry(registry.clone())
    }
}

/// Serializes a full [`ScenarioConfig`] (everything except a custom
/// estimator factory, which the caller must reject first).
fn encode_config(config: &ScenarioConfig, w: &mut StateWriter) {
    w.write_u32(config.history_slots);
    w.write_u32(config.test_slots);
    w.write_u32(config.measure_window.0);
    w.write_u32(config.measure_window.1);
    w.write_f64(config.utilization);
    match config.plan_utilization {
        Some(u) => {
            w.write_bool(true);
            w.write_f64(u);
        }
        None => w.write_bool(false),
    }
    w.write_bool(config.shift_plan_ingress);
    w.write_usize(config.quantiles);
    w.write_bool(config.olive.borrowing);
    w.write_bool(config.olive.preemption);
    w.write_bool(config.olive.greedy_fallback);
    w.write_bool(config.olive.quickg_fast_reject);
    w.write_f64(config.aggregation.alpha);
    w.write_usize(config.aggregation.bootstrap_replicates);
    w.write_u8(match config.estimator {
        EstimatorKind::Exact => 0,
        EstimatorKind::Sketch => 1,
        EstimatorKind::Custom(_) => unreachable!("custom estimators are rejected before encoding"),
    });
    w.write_u32(config.trace.slots);
    w.write_f64(config.trace.mean_rate_per_node);
    w.write_f64(config.trace.demand_mean);
    w.write_f64(config.trace.demand_std);
    w.write_f64(config.trace.duration_mean);
    w.write_f64(config.trace.zipf_alpha);
    w.write_u8(match config.trace.arrivals {
        ArrivalKind::Poisson => 0,
        ArrivalKind::Mmpp => 1,
    });
    w.write_u64(config.trace.popularity_seed);
    match &config.caida {
        Some(cc) => {
            w.write_bool(true);
            w.write_u32(cc.slots);
            w.write_f64(cc.total_rate);
            w.write_usize(cc.sources);
            w.write_f64(cc.demand_mean);
            w.write_f64(cc.tail_sigma);
            w.write_f64(cc.duration_mean);
            w.write_f64(cc.zipf_alpha);
            w.write_u64(cc.population_seed);
        }
        None => w.write_bool(false),
    }
    w.write_u64(config.seed);
    match config.adversary {
        Some(profile) => {
            w.write_bool(true);
            w.write_str(profile.label());
        }
        None => w.write_bool(false),
    }
    match config.churn {
        Some(ChurnProfile::LinkOutages { period, len, count }) => {
            w.write_bool(true);
            w.write_u8(0);
            w.write_u32(period);
            w.write_u32(len);
            w.write_usize(count);
        }
        Some(ChurnProfile::NodeMaintenance { period, len }) => {
            w.write_bool(true);
            w.write_u8(1);
            w.write_u32(period);
            w.write_u32(len);
        }
        Some(ChurnProfile::CapacityDrain {
            period,
            len,
            factor,
        }) => {
            w.write_bool(true);
            w.write_u8(2);
            w.write_u32(period);
            w.write_u32(len);
            w.write_f64(factor);
        }
        None => w.write_bool(false),
    }
    w.write_u8(match config.reembed {
        ReembedKind::Reembed => 0,
        ReembedKind::Evict => 1,
    });
}

/// Parses a config serialized by [`encode_config`].
fn decode_config(r: &mut StateReader<'_>) -> Result<ScenarioConfig, StateError> {
    let history_slots = r.read_u32()?;
    let test_slots = r.read_u32()?;
    let measure_window = (r.read_u32()?, r.read_u32()?);
    let utilization = r.read_f64()?;
    let plan_utilization = if r.read_bool()? {
        Some(r.read_f64()?)
    } else {
        None
    };
    let shift_plan_ingress = r.read_bool()?;
    let quantiles = r.read_usize()?;
    let olive = OliveConfig {
        borrowing: r.read_bool()?,
        preemption: r.read_bool()?,
        greedy_fallback: r.read_bool()?,
        quickg_fast_reject: r.read_bool()?,
    };
    let aggregation = vne_workload::estimator::AggregationConfig {
        alpha: r.read_f64()?,
        bootstrap_replicates: r.read_usize()?,
    };
    let estimator = match r.read_u8()? {
        0 => EstimatorKind::Exact,
        1 => EstimatorKind::Sketch,
        tag => {
            return Err(StateError::Corrupt(format!(
                "invalid estimator kind tag {tag}"
            )))
        }
    };
    let trace = TraceConfig {
        slots: r.read_u32()?,
        mean_rate_per_node: r.read_f64()?,
        demand_mean: r.read_f64()?,
        demand_std: r.read_f64()?,
        duration_mean: r.read_f64()?,
        zipf_alpha: r.read_f64()?,
        arrivals: match r.read_u8()? {
            0 => ArrivalKind::Poisson,
            1 => ArrivalKind::Mmpp,
            tag => {
                return Err(StateError::Corrupt(format!(
                    "invalid arrival kind tag {tag}"
                )))
            }
        },
        popularity_seed: r.read_u64()?,
    };
    let caida = if r.read_bool()? {
        Some(CaidaConfig {
            slots: r.read_u32()?,
            total_rate: r.read_f64()?,
            sources: r.read_usize()?,
            demand_mean: r.read_f64()?,
            tail_sigma: r.read_f64()?,
            duration_mean: r.read_f64()?,
            zipf_alpha: r.read_f64()?,
            population_seed: r.read_u64()?,
        })
    } else {
        None
    };
    let seed = r.read_u64()?;
    let adversary = if r.read_bool()? {
        let label = r.read_str()?;
        Some(AdversaryProfile::from_label(&label).ok_or_else(|| {
            StateError::Corrupt(format!("unknown adversary profile label {label:?}"))
        })?)
    } else {
        None
    };
    let churn = if r.read_bool()? {
        Some(match r.read_u8()? {
            0 => ChurnProfile::LinkOutages {
                period: r.read_u32()?,
                len: r.read_u32()?,
                count: r.read_usize()?,
            },
            1 => ChurnProfile::NodeMaintenance {
                period: r.read_u32()?,
                len: r.read_u32()?,
            },
            2 => ChurnProfile::CapacityDrain {
                period: r.read_u32()?,
                len: r.read_u32()?,
                factor: r.read_f64()?,
            },
            tag => {
                return Err(StateError::Corrupt(format!(
                    "invalid churn profile tag {tag}"
                )))
            }
        })
    } else {
        None
    };
    let reembed = match r.read_u8()? {
        0 => ReembedKind::Reembed,
        1 => ReembedKind::Evict,
        tag => {
            return Err(StateError::Corrupt(format!(
                "invalid re-embed policy tag {tag}"
            )))
        }
    };
    Ok(ScenarioConfig {
        history_slots,
        test_slots,
        measure_window,
        utilization,
        plan_utilization,
        shift_plan_ingress,
        quantiles,
        olive,
        aggregation,
        estimator,
        trace,
        caida,
        adversary,
        churn,
        reembed,
        seed,
    })
}

/// The builtin topology with the given [`SubstrateNetwork::name`], if
/// any (`Iris`, `CittaStudi`, `5GEN`, `100N150E`).
pub fn topology_named(name: &str) -> Option<SubstrateNetwork> {
    [
        vne_topology::zoo::iris().expect("iris"),
        vne_topology::zoo::citta_studi().expect("citta"),
        vne_topology::gen5g::five_gen().expect("5gen"),
        vne_topology::random::hundred_n_150e().expect("random"),
    ]
    .into_iter()
    .find(|s| s.name() == name)
}

/// Handles `--resume-from`: when the flag is present, loads the file,
/// finishes the checkpointed run (byte-identical to the uninterrupted
/// one) and prints its summary. Figure binaries call this first and
/// return when it reports `true`.
///
/// # Panics
///
/// Panics on unreadable/corrupt files or unknown topologies.
pub fn resume_from(opts: &BenchOpts) -> bool {
    let Some(path) = &opts.resume_from else {
        return false;
    };
    let bytes = std::fs::read(path)
        .unwrap_or_else(|e| panic!("cannot read checkpoint {}: {e}", path.display()));
    let bench = BenchCheckpoint::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("cannot parse checkpoint {}: {e}", path.display()));
    let scenario = bench.scenario(&opts.registry);
    let resumed_at = bench.checkpoint.slot;
    let summary = scenario
        .resume_summary(&bench.checkpoint)
        .unwrap_or_else(|e| panic!("cannot resume {}: {e}", path.display()));
    let mut tweaks = Vec::new();
    if let Some(u) = bench.config.plan_utilization {
        tweaks.push(format!("plan_utilization={:.0}%", u * 100.0));
    }
    if bench.config.shift_plan_ingress {
        tweaks.push("shifted plan ingress".to_string());
    }
    println!(
        "# resumed {} on {} at u={:.0}% (seed {}, config c{:08x}{}) from slot {} of {}",
        bench.checkpoint.algorithm,
        bench.topology,
        bench.utilization() * 100.0,
        bench.seed(),
        config_fingerprint(&bench.config) as u32,
        if tweaks.is_empty() {
            String::new()
        } else {
            format!(", {}", tweaks.join(", "))
        },
        resumed_at + 1,
        scenario.config.test_slots,
    );
    println!(
        "{:<12} {:>6} {:>9} {:>14} {:>14} {:>12}",
        "topology", "util", "alg", "rejection", "total_cost", "fingerprint"
    );
    println!(
        "{:<12} {:>5.0}% {:>9} {:>14.6} {:>14.3} {:>12x}",
        bench.topology,
        bench.utilization() * 100.0,
        bench.checkpoint.algorithm,
        summary.rejection_rate,
        summary.total_cost,
        summary.fingerprint(),
    );
    true
}

/// Prints sweep rows with a metric selector as an aligned table.
pub fn print_rows<F>(title: &str, rows: &[SweepRow], metric_name: &str, select: F)
where
    F: Fn(&AggregatedSummary) -> (f64, f64),
{
    println!("# {title}");
    println!(
        "{:<12} {:>6} {:>9} {:>14} {:>12}",
        "topology", "util", "alg", metric_name, "±95ci"
    );
    for row in rows {
        let (mean, ci) = select(&row.summary);
        println!(
            "{:<12} {:>5.0}% {:>9} {:>14.6} {:>12.6}",
            row.topology,
            row.utilization * 100.0,
            row.algorithm,
            mean,
            ci
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_rows() {
        let substrate = vne_topology::zoo::citta_studi().unwrap();
        let opts = BenchOpts {
            seeds: 1,
            utils: vec![1.0],
            ..BenchOpts::default()
        };
        let rows = sweep(
            &substrate,
            &[vne_sim::scenario::Algorithm::Quickg],
            &opts,
            |c| {
                // Shrink for the unit test.
                c.history_slots = 100;
                c.test_slots = 60;
                c.measure_window = (10, 50);
            },
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].algorithm, "QUICKG");
        assert!(rows[0].summary.rejection_rate.0 >= 0.0);
        print_rows("test", &rows, "rate", |s| s.rejection_rate);
    }

    #[test]
    fn topology_named_resolves_the_builtin_four() {
        for name in ["Iris", "CittaStudi", "5GEN", "100N150E"] {
            let s = topology_named(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(s.name(), name);
        }
        assert!(topology_named("Atlantis").is_none());
    }

    #[test]
    fn bench_checkpoint_bytes_roundtrip_and_reject_corruption() {
        let mut config = crate::cli::medium_config(1.2).with_seed(7);
        // Exercise every recorded tweak class.
        config.plan_utilization = Some(0.6);
        config.shift_plan_ingress = true;
        config.olive.borrowing = false;
        config.estimator = EstimatorKind::Sketch;
        config.caida = Some(CaidaConfig {
            total_rate: 100.0,
            sources: 300,
            ..CaidaConfig::default()
        });
        config.adversary = Some(AdversaryProfile::PlanAdversarial);
        config.churn = Some(ChurnProfile::LinkOutages {
            period: 25,
            len: 6,
            count: 2,
        });
        config.reembed = ReembedKind::Evict;
        let bench = BenchCheckpoint {
            topology: "CittaStudi".to_string(),
            config,
            checkpoint: EngineCheckpoint {
                slot: 42,
                algorithm: "QUICKG".to_string(),
                engine: vne_model::state::StateBlob::from_bytes(vec![1, 2, 3]),
                algorithm_state: vne_model::state::StateBlob::from_bytes(vec![4]),
                observer_state: vne_model::state::StateBlob::default(),
            },
        };
        let bytes = bench.to_bytes();
        let parsed = BenchCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(parsed.topology, bench.topology);
        assert_eq!(parsed.checkpoint, bench.checkpoint);
        // The full config rides in the file — Debug covers every field.
        assert_eq!(
            format!("{:?}", parsed.config),
            format!("{:?}", bench.config)
        );
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(BenchCheckpoint::from_bytes(&bad).is_err());
        assert!(BenchCheckpoint::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn legacy_v1_checkpoint_files_are_refused() {
        // A v1 file recorded only the standard coordinates; resuming a
        // tweaked cell through it would silently rebuild the wrong
        // scenario — the parser must refuse it with a clear error, not
        // guess.
        let mut w = StateWriter::new();
        for b in *b"VNEBENC1" {
            w.write_u8(b);
        }
        w.write_str("CittaStudi");
        w.write_f64(1.0);
        w.write_u64(1);
        w.write_bool(false);
        let bytes = w.finish().into_bytes();
        match BenchCheckpoint::from_bytes(&bytes) {
            Err(StateError::Mismatch { found, .. }) => {
                assert!(found.contains("VNEBENC1"), "{found}");
            }
            other => panic!("expected a legacy-format refusal, got {other:?}"),
        }
    }

    #[test]
    fn legacy_v2_checkpoint_files_are_refused() {
        // A v2 file predates the scenario-suite fields (adversary,
        // churn, re-embed policy); resuming an adversarial or churned
        // cell through it would silently rebuild a benign scenario.
        let mut w = StateWriter::new();
        for b in *b"VNEBENC2" {
            w.write_u8(b);
        }
        w.write_str("CittaStudi");
        let bytes = w.finish().into_bytes();
        match BenchCheckpoint::from_bytes(&bytes) {
            Err(StateError::Mismatch { found, .. }) => {
                assert!(found.contains("VNEBENC2"), "{found}");
            }
            other => panic!("expected a legacy-format refusal, got {other:?}"),
        }
    }

    #[test]
    fn custom_estimator_configs_cannot_be_checkpointed() {
        let mut config = crate::cli::medium_config(1.0);
        assert!(uncheckpointable_config(&config).is_none());
        config.estimator = EstimatorKind::custom(|slots, aggregation| {
            Box::new(vne_workload::estimator::ExactEstimator::new(
                slots,
                *aggregation,
            ))
        });
        let what = uncheckpointable_config(&config).expect("custom estimators are opaque");
        assert!(what.contains("custom estimator"), "{what}");
    }

    #[test]
    fn checkpointed_sweep_writes_resumable_files() {
        // End to end: a checkpointing sweep writes a file; resuming it
        // reproduces the uninterrupted run's fingerprint exactly.
        let dir = std::env::temp_dir().join(format!(
            "vne-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let substrate = vne_topology::zoo::citta_studi().unwrap();
        let opts = BenchOpts {
            seeds: 1,
            utils: vec![1.0],
            checkpoint_every: Some(130),
            checkpoint_dir: dir.clone(),
            ..BenchOpts::default()
        };
        let rows = sweep(
            &substrate,
            &[vne_sim::scenario::Algorithm::Quickg],
            &opts,
            |_| {},
        );
        assert_eq!(rows.len(), 1);
        // Medium scale = 300 online slots, every 130 ⇒ captures at
        // slots 129 and 259; the file holds the latest. The filename
        // carries the config fingerprint.
        let fp = config_fingerprint(&opts.config(1.0).with_seed(1)) as u32;
        let path = dir.join(format!("ckpt-CittaStudi-QUICKG-u100-c{fp:08x}-s1.bin"));
        let bench = BenchCheckpoint::from_bytes(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(bench.checkpoint.slot, 259);
        assert_eq!(bench.topology, "CittaStudi");
        assert_eq!(bench.seed(), 1);
        assert!((bench.utilization() - 1.0).abs() < 1e-12);
        let scenario = bench.scenario(&opts.registry);
        let resumed = scenario.resume_summary(&bench.checkpoint).unwrap();
        let straight = scenario
            .run_summary(vne_sim::scenario::Algorithm::Quickg)
            .unwrap();
        assert_eq!(resumed.fingerprint(), straight.fingerprint());
        // The --resume-from driver consumes the same file.
        let resume_opts = BenchOpts {
            resume_from: Some(path),
            ..BenchOpts::default()
        };
        assert!(resume_from(&resume_opts));
        assert!(!resume_from(&BenchOpts::default()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tweaked_fig13_and_fig14_cells_resume_faithfully() {
        // The regression of the tweaked-config checkpoint bug: a
        // checkpointed Fig. 13 cell (OLIVE with `plan_utilization`
        // below the online demand) and a Fig. 14 cell (shifted plan
        // ingress) must carry their tweak inside the file and resume to
        // the exact summary of the uninterrupted tweaked run. Before
        // the full-config capture, the resume silently rebuilt the
        // *standard* scenario and produced wrong numbers.
        let substrate = vne_topology::zoo::citta_studi().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "vne-ckpt-tweak-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = BenchOpts {
            seeds: 1,
            utils: vec![1.2],
            checkpoint_every: Some(9),
            checkpoint_dir: dir.clone(),
            ..BenchOpts::default()
        };
        type Tweak = fn(&mut ScenarioConfig);
        let fig13: Tweak = |c| c.plan_utilization = Some(0.6);
        let fig14: Tweak = |c| c.shift_plan_ingress = true;
        for (name, tweak) in [("fig13", fig13), ("fig14", fig14)] {
            let rows = sweep(
                &substrate,
                &[vne_sim::scenario::Algorithm::Olive],
                &opts,
                |c: &mut ScenarioConfig| {
                    // Shrink the cell so the plan-based run stays fast;
                    // horizons are recorded in the file like any tweak.
                    c.history_slots = 80;
                    c.test_slots = 30;
                    c.measure_window = (4, 26);
                    c.aggregation.bootstrap_replicates = 10;
                    tweak(c);
                },
            );
            assert_eq!(rows.len(), 1, "{name}");
            // The config fingerprint is part of the filename, so
            // fig13/fig14-style variant cells keep distinct resume
            // points; rebuild the cell's config to predict it.
            let mut cell_config = opts.config(1.2).with_seed(1);
            cell_config.history_slots = 80;
            cell_config.test_slots = 30;
            cell_config.measure_window = (4, 26);
            cell_config.aggregation.bootstrap_replicates = 10;
            tweak(&mut cell_config);
            let fp = config_fingerprint(&cell_config) as u32;
            let path = dir.join(format!("ckpt-CittaStudi-OLIVE-u120-c{fp:08x}-s1.bin"));
            let bench = BenchCheckpoint::from_bytes(&std::fs::read(&path).unwrap())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            // The tweak rides in the file.
            match name {
                "fig13" => assert_eq!(bench.config.plan_utilization, Some(0.6)),
                _ => assert!(bench.config.shift_plan_ingress),
            }
            assert_eq!(bench.config.history_slots, 80);
            // Resuming rebuilds the tweaked scenario and lands on the
            // same fingerprint as never having stopped.
            let scenario = bench.scenario(&opts.registry);
            let resumed = scenario.resume_summary(&bench.checkpoint).unwrap();
            let straight = scenario
                .run_summary(vne_sim::scenario::Algorithm::Olive)
                .unwrap();
            assert_eq!(
                resumed.fingerprint(),
                straight.fingerprint(),
                "{name}: tweaked cell must resume faithfully"
            );
            std::fs::remove_file(&path).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_sweep_rejects_custom_estimators() {
        // The one tweak a checkpoint file cannot record: an opaque
        // estimator factory. It must fail loudly instead of writing
        // files that would resume into the wrong scenario.
        let substrate = vne_topology::zoo::citta_studi().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "vne-ckpt-custom-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let opts = BenchOpts {
            seeds: 1,
            utils: vec![1.0],
            checkpoint_every: Some(50),
            checkpoint_dir: dir.clone(),
            ..BenchOpts::default()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sweep(
                &substrate,
                &[vne_sim::scenario::Algorithm::Quickg],
                &opts,
                |c| {
                    c.estimator = EstimatorKind::custom(|slots, aggregation| {
                        Box::new(vne_workload::estimator::ExactEstimator::new(
                            slots,
                            *aggregation,
                        ))
                    });
                },
            )
        }));
        assert!(
            result.is_err(),
            "custom-estimator checkpointing sweep must panic"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_resolves_custom_algorithms_through_the_opts_registry() {
        // The plugin path end to end: a provider-extended registry in
        // BenchOpts lets `sweep` run an algorithm vne-bench knows
        // nothing about.
        crate::cli::register_registry_provider("sweep-test", || {
            let mut registry = vne_sim::registry::AlgorithmRegistry::builtins();
            registry.register("PLUGGED", |ctx| {
                vne_sim::registry::BuiltAlgorithm::plain(vne_olive::olive::Olive::quickg(
                    ctx.substrate().clone(),
                    ctx.apps().clone(),
                    ctx.policy().clone(),
                ))
            });
            registry
        });
        let substrate = vne_topology::zoo::citta_studi().unwrap();
        let mut opts = BenchOpts {
            seeds: 1,
            utils: vec![1.0],
            ..BenchOpts::default()
        };
        opts.registry = crate::cli::registry_named("sweep-test").unwrap();
        opts.algs = vec![AlgorithmSpec::new("plugged")];
        let rows = sweep(&substrate, &opts.algs, &opts, |c| {
            c.history_slots = 100;
            c.test_slots = 60;
            c.measure_window = (10, 50);
        });
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].algorithm, "PLUGGED");
    }
}
