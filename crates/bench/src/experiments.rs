//! Shared experiment drivers for the figure binaries.
//!
//! Besides the plain sweeps, this module carries the checkpoint/resume
//! plumbing behind `--checkpoint-every` / `--resume-from`: a sweep run
//! with checkpointing writes one [`BenchCheckpoint`] file per
//! (topology, algorithm, utilization, seed) cell — the engine
//! checkpoint plus the scenario coordinates needed to rebuild the run —
//! and [`resume_from`] finishes any such file to the exact summary the
//! uninterrupted run would have produced.
//!
//! Checkpoint files record the *standard* scenario coordinates
//! (topology, utilization, seed, `--paper` scale). Binaries that tweak
//! the config beyond that (e.g. Fig. 13's `plan_utilization`) write
//! resumable files only if the same tweak is applied on resume — the
//! `--resume-from` path is wired into the untweaked sweep bins.

use vne_model::state::{StateError, StateReader, StateWriter};
use vne_model::substrate::SubstrateNetwork;
use vne_sim::engine::EngineCheckpoint;
use vne_sim::metrics::{aggregate, AggregatedSummary};
use vne_sim::registry::{AlgorithmRegistry, AlgorithmSpec};
use vne_sim::runner::{default_apps, run_seeds_in, seed_map};
use vne_sim::scenario::{Scenario, ScenarioConfig};
use vne_workload::estimator::EstimatorKind;

use crate::cli::BenchOpts;

/// One row of a sweep result.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Topology name.
    pub topology: String,
    /// Utilization fraction.
    pub utilization: f64,
    /// Algorithm name.
    pub algorithm: String,
    /// Aggregated metrics across seeds.
    pub summary: AggregatedSummary,
}

/// Runs `algorithms × opts.utils` on one topology and returns rows.
///
/// Algorithms are anything resolvable by the options' registry
/// ([`BenchOpts::registry`], selected via `--registry` /
/// `VNE_REGISTRY`) — [`vne_sim::scenario::Algorithm`] values, names,
/// or custom algorithms a registry provider added; use [`sweep_in`] to
/// bypass the options and pass a registry directly. `tweak` customizes
/// the scenario config after the scale defaults are applied (e.g.
/// Fig. 13's `plan_utilization`).
pub fn sweep<S, F>(
    substrate: &SubstrateNetwork,
    algorithms: &[S],
    opts: &BenchOpts,
    tweak: F,
) -> Vec<SweepRow>
where
    S: Clone + Into<AlgorithmSpec>,
    F: Fn(&mut ScenarioConfig) + Sync,
{
    sweep_in(&opts.registry, substrate, algorithms, opts, tweak)
}

/// [`sweep`] with an explicit algorithm registry (custom algorithms in
/// figure-style sweeps).
pub fn sweep_in<S, F>(
    registry: &AlgorithmRegistry,
    substrate: &SubstrateNetwork,
    algorithms: &[S],
    opts: &BenchOpts,
    tweak: F,
) -> Vec<SweepRow>
where
    S: Clone + Into<AlgorithmSpec>,
    F: Fn(&mut ScenarioConfig) + Sync,
{
    // An unconsumed --resume-from means the binary never called
    // [`resume_from`]: fail loudly rather than silently re-sweep the
    // run the user asked to finish.
    assert!(
        opts.resume_from.is_none(),
        "--resume-from is not supported by this binary's sweep; \
         use a binary that handles it (e.g. fig06, fig07)"
    );
    let specs: Vec<AlgorithmSpec> = algorithms.iter().cloned().map(Into::into).collect();
    let mut rows = Vec::new();
    for &u in &opts.utils {
        for spec in &specs {
            let agg = match opts.checkpoint_every {
                Some(every) => checkpointed_cell(registry, substrate, spec, opts, u, every, &tweak),
                None => {
                    run_seeds_in(
                        registry,
                        substrate,
                        spec,
                        &opts.seed_list(),
                        default_apps,
                        |seed| {
                            let mut c = opts.config(u).with_seed(seed);
                            tweak(&mut c);
                            c
                        },
                    )
                    .1
                }
            };
            rows.push(SweepRow {
                topology: substrate.name().to_string(),
                utilization: u,
                algorithm: spec.name().to_string(),
                summary: agg,
            });
        }
    }
    rows
}

/// One checkpointing sweep cell: runs every seed with a
/// [`vne_sim::observe::Checkpointer`] that writes each capture to
/// `<checkpoint_dir>/ckpt-<topo>-<alg>-u<pct>-s<seed>.bin` (latest
/// capture overwrites — the file is always the newest resume point).
/// Seeds fan out through [`seed_map`] like the plain [`run_seeds_in`]
/// path; each seed owns its file, so the writes never contend.
///
/// # Panics
///
/// Panics when the sweep's `tweak` changed the config beyond the
/// coordinates a checkpoint file records (see
/// [`standard_config_mismatch`]) — resuming such a file would silently
/// rebuild the wrong scenario, so it must not be written.
fn checkpointed_cell<F>(
    registry: &AlgorithmRegistry,
    substrate: &SubstrateNetwork,
    spec: &AlgorithmSpec,
    opts: &BenchOpts,
    utilization: f64,
    every: u32,
    tweak: &F,
) -> AggregatedSummary
where
    F: Fn(&mut ScenarioConfig) + Sync,
{
    std::fs::create_dir_all(&opts.checkpoint_dir).expect("create checkpoint directory");
    let summaries = seed_map(&opts.seed_list(), |seed| {
        let mut config = opts.config(utilization).with_seed(seed);
        tweak(&mut config);
        if let Some(what) =
            standard_config_mismatch(&config, &opts.config(utilization).with_seed(seed))
        {
            panic!(
                "--checkpoint-every is not supported by this binary's sweep: its config \
                 tweak ({what}) is not recorded in checkpoint files, so resuming them \
                 would rebuild the wrong scenario"
            );
        }
        let scenario = Scenario::new(substrate.clone(), default_apps(seed), config)
            .with_registry(registry.clone());
        let path = opts.checkpoint_dir.join(format!(
            "ckpt-{}-{}-u{:.0}-s{seed}.bin",
            substrate.name(),
            spec.name(),
            utilization * 100.0
        ));
        let topology = substrate.name().to_string();
        let paper_scale = opts.paper_scale;
        let (summary, _) = scenario
            .run_summary_checkpointed(
                spec,
                every,
                Some(Box::new(move |cp: &EngineCheckpoint| {
                    let full = BenchCheckpoint {
                        topology: topology.clone(),
                        utilization,
                        seed,
                        paper_scale,
                        checkpoint: cp.clone(),
                    };
                    std::fs::write(&path, full.to_bytes()).expect("write checkpoint file");
                })),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        summary
    });
    aggregate(&summaries)
}

/// Compares a sweep's (possibly tweaked) config against the standard
/// one a resume would rebuild from the checkpoint file's coordinates.
/// Returns the first differing field, or `None` when a resume is
/// faithful.
fn standard_config_mismatch(tweaked: &ScenarioConfig, standard: &ScenarioConfig) -> Option<String> {
    if tweaked.history_slots != standard.history_slots
        || tweaked.test_slots != standard.test_slots
        || tweaked.measure_window != standard.measure_window
    {
        return Some("horizon/measurement window".to_string());
    }
    if tweaked.utilization != standard.utilization
        || tweaked.plan_utilization != standard.plan_utilization
    {
        return Some("utilization".to_string());
    }
    if tweaked.shift_plan_ingress != standard.shift_plan_ingress {
        return Some("shift_plan_ingress".to_string());
    }
    if tweaked.quantiles != standard.quantiles || tweaked.aggregation != standard.aggregation {
        return Some("aggregation/quantiles".to_string());
    }
    if tweaked.olive != standard.olive {
        return Some("olive ablation switches".to_string());
    }
    if std::mem::discriminant(&tweaked.estimator) != std::mem::discriminant(&standard.estimator) {
        return Some("estimator kind".to_string());
    }
    if matches!(tweaked.estimator, EstimatorKind::Custom(_)) {
        return Some("custom estimator".to_string());
    }
    if tweaked.trace != standard.trace {
        return Some("trace parameters".to_string());
    }
    if tweaked.caida != standard.caida {
        return Some("caida trace".to_string());
    }
    if tweaked.seed != standard.seed {
        return Some("seed".to_string());
    }
    None
}

/// An [`EngineCheckpoint`] plus the scenario coordinates a figure-bin
/// run needs to rebuild it: topology, utilization, seed and scale. This
/// is what `--checkpoint-every` writes and `--resume-from` reads.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCheckpoint {
    /// The substrate's name (one of the four builtin topologies).
    pub topology: String,
    /// Utilization fraction of the checkpointed run.
    pub utilization: f64,
    /// The run's seed.
    pub seed: u64,
    /// Whether the run used `--paper` scale (vs the medium default).
    pub paper_scale: bool,
    /// The frozen engine/algorithm/observer state.
    pub checkpoint: EngineCheckpoint,
}

impl BenchCheckpoint {
    /// Magic + version prefix of the file format.
    pub const MAGIC: [u8; 8] = *b"VNEBENC1";

    /// Serializes the file.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        for b in Self::MAGIC {
            w.write_u8(b);
        }
        w.write_str(&self.topology);
        w.write_f64(self.utilization);
        w.write_u64(self.seed);
        w.write_bool(self.paper_scale);
        w.write_blob(&vne_model::state::StateBlob::from_bytes(
            self.checkpoint.to_bytes(),
        ));
        w.finish().into_bytes()
    }

    /// Parses a file written by [`BenchCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on bad magic or malformed content.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::from_bytes(bytes);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.read_u8()?;
        }
        if magic != Self::MAGIC {
            return Err(StateError::Corrupt(format!(
                "bad bench-checkpoint magic {magic:02x?}"
            )));
        }
        let topology = r.read_str()?;
        let utilization = r.read_f64()?;
        let seed = r.read_u64()?;
        let paper_scale = r.read_bool()?;
        // read_blob bounds-checks the length against the remaining
        // bytes before allocating, so a corrupt length field errors
        // instead of attempting a huge allocation.
        let inner = r.read_blob()?;
        r.finish()?;
        Ok(Self {
            topology,
            utilization,
            seed,
            paper_scale,
            checkpoint: EngineCheckpoint::from_bytes(inner.as_bytes())?,
        })
    }

    /// Rebuilds the scenario this checkpoint froze (same topology,
    /// application draw, scale and seed — the deterministic pipeline)
    /// and resolves algorithms in `registry`.
    ///
    /// # Panics
    ///
    /// Panics when the topology name is not one of the four builtins.
    pub fn scenario(&self, registry: &AlgorithmRegistry) -> Scenario {
        let substrate = topology_named(&self.topology)
            .unwrap_or_else(|| panic!("unknown checkpoint topology {:?}", self.topology));
        let config = if self.paper_scale {
            ScenarioConfig::paper(self.utilization)
        } else {
            crate::cli::medium_config(self.utilization)
        }
        .with_seed(self.seed);
        Scenario::new(substrate, default_apps(self.seed), config).with_registry(registry.clone())
    }
}

/// The builtin topology with the given [`SubstrateNetwork::name`], if
/// any (`Iris`, `CittaStudi`, `5GEN`, `100N150E`).
pub fn topology_named(name: &str) -> Option<SubstrateNetwork> {
    [
        vne_topology::zoo::iris().expect("iris"),
        vne_topology::zoo::citta_studi().expect("citta"),
        vne_topology::gen5g::five_gen().expect("5gen"),
        vne_topology::random::hundred_n_150e().expect("random"),
    ]
    .into_iter()
    .find(|s| s.name() == name)
}

/// Handles `--resume-from`: when the flag is present, loads the file,
/// finishes the checkpointed run (byte-identical to the uninterrupted
/// one) and prints its summary. Figure binaries call this first and
/// return when it reports `true`.
///
/// # Panics
///
/// Panics on unreadable/corrupt files or unknown topologies.
pub fn resume_from(opts: &BenchOpts) -> bool {
    let Some(path) = &opts.resume_from else {
        return false;
    };
    let bytes = std::fs::read(path)
        .unwrap_or_else(|e| panic!("cannot read checkpoint {}: {e}", path.display()));
    let bench = BenchCheckpoint::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("cannot parse checkpoint {}: {e}", path.display()));
    let scenario = bench.scenario(&opts.registry);
    let resumed_at = bench.checkpoint.slot;
    let summary = scenario
        .resume_summary(&bench.checkpoint)
        .unwrap_or_else(|e| panic!("cannot resume {}: {e}", path.display()));
    println!(
        "# resumed {} on {} at u={:.0}% (seed {}) from slot {} of {}",
        bench.checkpoint.algorithm,
        bench.topology,
        bench.utilization * 100.0,
        bench.seed,
        resumed_at + 1,
        scenario.config.test_slots,
    );
    println!(
        "{:<12} {:>6} {:>9} {:>14} {:>14} {:>12}",
        "topology", "util", "alg", "rejection", "total_cost", "fingerprint"
    );
    println!(
        "{:<12} {:>5.0}% {:>9} {:>14.6} {:>14.3} {:>12x}",
        bench.topology,
        bench.utilization * 100.0,
        bench.checkpoint.algorithm,
        summary.rejection_rate,
        summary.total_cost,
        summary.fingerprint(),
    );
    true
}

/// Prints sweep rows with a metric selector as an aligned table.
pub fn print_rows<F>(title: &str, rows: &[SweepRow], metric_name: &str, select: F)
where
    F: Fn(&AggregatedSummary) -> (f64, f64),
{
    println!("# {title}");
    println!(
        "{:<12} {:>6} {:>9} {:>14} {:>12}",
        "topology", "util", "alg", metric_name, "±95ci"
    );
    for row in rows {
        let (mean, ci) = select(&row.summary);
        println!(
            "{:<12} {:>5.0}% {:>9} {:>14.6} {:>12.6}",
            row.topology,
            row.utilization * 100.0,
            row.algorithm,
            mean,
            ci
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_rows() {
        let substrate = vne_topology::zoo::citta_studi().unwrap();
        let opts = BenchOpts {
            seeds: 1,
            utils: vec![1.0],
            ..BenchOpts::default()
        };
        let rows = sweep(
            &substrate,
            &[vne_sim::scenario::Algorithm::Quickg],
            &opts,
            |c| {
                // Shrink for the unit test.
                c.history_slots = 100;
                c.test_slots = 60;
                c.measure_window = (10, 50);
            },
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].algorithm, "QUICKG");
        assert!(rows[0].summary.rejection_rate.0 >= 0.0);
        print_rows("test", &rows, "rate", |s| s.rejection_rate);
    }

    #[test]
    fn topology_named_resolves_the_builtin_four() {
        for name in ["Iris", "CittaStudi", "5GEN", "100N150E"] {
            let s = topology_named(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(s.name(), name);
        }
        assert!(topology_named("Atlantis").is_none());
    }

    #[test]
    fn bench_checkpoint_bytes_roundtrip_and_reject_corruption() {
        let bench = BenchCheckpoint {
            topology: "CittaStudi".to_string(),
            utilization: 1.2,
            seed: 7,
            paper_scale: false,
            checkpoint: EngineCheckpoint {
                slot: 42,
                algorithm: "QUICKG".to_string(),
                engine: vne_model::state::StateBlob::from_bytes(vec![1, 2, 3]),
                algorithm_state: vne_model::state::StateBlob::from_bytes(vec![4]),
                observer_state: vne_model::state::StateBlob::default(),
            },
        };
        let bytes = bench.to_bytes();
        let parsed = BenchCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, bench);
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(BenchCheckpoint::from_bytes(&bad).is_err());
        assert!(BenchCheckpoint::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn checkpointed_sweep_writes_resumable_files() {
        // End to end: a checkpointing sweep writes a file; resuming it
        // reproduces the uninterrupted run's fingerprint exactly.
        let dir = std::env::temp_dir().join(format!(
            "vne-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let substrate = vne_topology::zoo::citta_studi().unwrap();
        let opts = BenchOpts {
            seeds: 1,
            utils: vec![1.0],
            checkpoint_every: Some(130),
            checkpoint_dir: dir.clone(),
            ..BenchOpts::default()
        };
        let rows = sweep(
            &substrate,
            &[vne_sim::scenario::Algorithm::Quickg],
            &opts,
            |_| {},
        );
        assert_eq!(rows.len(), 1);
        // Medium scale = 300 online slots, every 130 ⇒ captures at
        // slots 129 and 259; the file holds the latest.
        let path = dir.join("ckpt-CittaStudi-QUICKG-u100-s1.bin");
        let bench = BenchCheckpoint::from_bytes(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(bench.checkpoint.slot, 259);
        assert_eq!(bench.topology, "CittaStudi");
        let scenario = bench.scenario(&opts.registry);
        let resumed = scenario.resume_summary(&bench.checkpoint).unwrap();
        let straight = scenario
            .run_summary(vne_sim::scenario::Algorithm::Quickg)
            .unwrap();
        assert_eq!(resumed.fingerprint(), straight.fingerprint());
        // The --resume-from driver consumes the same file.
        let resume_opts = BenchOpts {
            resume_from: Some(path),
            ..BenchOpts::default()
        };
        assert!(resume_from(&resume_opts));
        assert!(!resume_from(&BenchOpts::default()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_sweep_rejects_tweaked_configs() {
        // A tweak the checkpoint file cannot record (Fig. 13's
        // plan_utilization) must fail loudly instead of writing files
        // that would resume into the wrong scenario.
        let substrate = vne_topology::zoo::citta_studi().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "vne-ckpt-tweak-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let opts = BenchOpts {
            seeds: 1,
            utils: vec![1.0],
            checkpoint_every: Some(50),
            checkpoint_dir: dir.clone(),
            ..BenchOpts::default()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sweep(
                &substrate,
                &[vne_sim::scenario::Algorithm::Quickg],
                &opts,
                |c| c.plan_utilization = Some(0.6),
            )
        }));
        assert!(result.is_err(), "tweaked checkpointing sweep must panic");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_resolves_custom_algorithms_through_the_opts_registry() {
        // The plugin path end to end: a provider-extended registry in
        // BenchOpts lets `sweep` run an algorithm vne-bench knows
        // nothing about.
        crate::cli::register_registry_provider("sweep-test", || {
            let mut registry = vne_sim::registry::AlgorithmRegistry::builtins();
            registry.register("PLUGGED", |ctx| {
                vne_sim::registry::BuiltAlgorithm::plain(vne_olive::olive::Olive::quickg(
                    ctx.substrate().clone(),
                    ctx.apps().clone(),
                    ctx.policy().clone(),
                ))
            });
            registry
        });
        let substrate = vne_topology::zoo::citta_studi().unwrap();
        let mut opts = BenchOpts {
            seeds: 1,
            utils: vec![1.0],
            ..BenchOpts::default()
        };
        opts.registry = crate::cli::registry_named("sweep-test").unwrap();
        opts.algs = vec![AlgorithmSpec::new("plugged")];
        let rows = sweep(&substrate, &opts.algs, &opts, |c| {
            c.history_slots = 100;
            c.test_slots = 60;
            c.measure_window = (10, 50);
        });
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].algorithm, "PLUGGED");
    }
}
