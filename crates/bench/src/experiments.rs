//! Shared experiment drivers for the figure binaries.

use vne_model::substrate::SubstrateNetwork;
use vne_sim::metrics::AggregatedSummary;
use vne_sim::registry::{AlgorithmRegistry, AlgorithmSpec};
use vne_sim::runner::{default_apps, run_seeds_in};
use vne_sim::scenario::ScenarioConfig;

use crate::cli::BenchOpts;

/// One row of a sweep result.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Topology name.
    pub topology: String,
    /// Utilization fraction.
    pub utilization: f64,
    /// Algorithm name.
    pub algorithm: String,
    /// Aggregated metrics across seeds.
    pub summary: AggregatedSummary,
}

/// Runs `algorithms × opts.utils` on one topology and returns rows.
///
/// Algorithms are anything resolvable by the options' registry
/// ([`BenchOpts::registry`], selected via `--registry` /
/// `VNE_REGISTRY`) — [`vne_sim::scenario::Algorithm`] values, names,
/// or custom algorithms a registry provider added; use [`sweep_in`] to
/// bypass the options and pass a registry directly. `tweak` customizes
/// the scenario config after the scale defaults are applied (e.g.
/// Fig. 13's `plan_utilization`).
pub fn sweep<S, F>(
    substrate: &SubstrateNetwork,
    algorithms: &[S],
    opts: &BenchOpts,
    tweak: F,
) -> Vec<SweepRow>
where
    S: Clone + Into<AlgorithmSpec>,
    F: Fn(&mut ScenarioConfig) + Sync,
{
    sweep_in(&opts.registry, substrate, algorithms, opts, tweak)
}

/// [`sweep`] with an explicit algorithm registry (custom algorithms in
/// figure-style sweeps).
pub fn sweep_in<S, F>(
    registry: &AlgorithmRegistry,
    substrate: &SubstrateNetwork,
    algorithms: &[S],
    opts: &BenchOpts,
    tweak: F,
) -> Vec<SweepRow>
where
    S: Clone + Into<AlgorithmSpec>,
    F: Fn(&mut ScenarioConfig) + Sync,
{
    let specs: Vec<AlgorithmSpec> = algorithms.iter().cloned().map(Into::into).collect();
    let mut rows = Vec::new();
    for &u in &opts.utils {
        for spec in &specs {
            let (_, agg) = run_seeds_in(
                registry,
                substrate,
                spec,
                &opts.seed_list(),
                default_apps,
                |seed| {
                    let mut c = opts.config(u).with_seed(seed);
                    tweak(&mut c);
                    c
                },
            );
            rows.push(SweepRow {
                topology: substrate.name().to_string(),
                utilization: u,
                algorithm: spec.name().to_string(),
                summary: agg,
            });
        }
    }
    rows
}

/// Prints sweep rows with a metric selector as an aligned table.
pub fn print_rows<F>(title: &str, rows: &[SweepRow], metric_name: &str, select: F)
where
    F: Fn(&AggregatedSummary) -> (f64, f64),
{
    println!("# {title}");
    println!(
        "{:<12} {:>6} {:>9} {:>14} {:>12}",
        "topology", "util", "alg", metric_name, "±95ci"
    );
    for row in rows {
        let (mean, ci) = select(&row.summary);
        println!(
            "{:<12} {:>5.0}% {:>9} {:>14.6} {:>12.6}",
            row.topology,
            row.utilization * 100.0,
            row.algorithm,
            mean,
            ci
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_rows() {
        let substrate = vne_topology::zoo::citta_studi().unwrap();
        let opts = BenchOpts {
            seeds: 1,
            utils: vec![1.0],
            ..BenchOpts::default()
        };
        let rows = sweep(
            &substrate,
            &[vne_sim::scenario::Algorithm::Quickg],
            &opts,
            |c| {
                // Shrink for the unit test.
                c.history_slots = 100;
                c.test_slots = 60;
                c.measure_window = (10, 50);
            },
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].algorithm, "QUICKG");
        assert!(rows[0].summary.rejection_rate.0 >= 0.0);
        print_rows("test", &rows, "rate", |s| s.rejection_rate);
    }

    #[test]
    fn sweep_resolves_custom_algorithms_through_the_opts_registry() {
        // The plugin path end to end: a provider-extended registry in
        // BenchOpts lets `sweep` run an algorithm vne-bench knows
        // nothing about.
        crate::cli::register_registry_provider("sweep-test", || {
            let mut registry = vne_sim::registry::AlgorithmRegistry::builtins();
            registry.register("PLUGGED", |ctx| {
                vne_sim::registry::BuiltAlgorithm::plain(vne_olive::olive::Olive::quickg(
                    ctx.substrate().clone(),
                    ctx.apps().clone(),
                    ctx.policy().clone(),
                ))
            });
            registry
        });
        let substrate = vne_topology::zoo::citta_studi().unwrap();
        let mut opts = BenchOpts {
            seeds: 1,
            utils: vec![1.0],
            ..BenchOpts::default()
        };
        opts.registry = crate::cli::registry_named("sweep-test").unwrap();
        opts.algs = vec![AlgorithmSpec::new("plugged")];
        let rows = sweep(&substrate, &opts.algs, &opts, |c| {
            c.history_slots = 100;
            c.test_slots = 60;
            c.measure_window = (10, 50);
        });
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].algorithm, "PLUGGED");
    }
}
