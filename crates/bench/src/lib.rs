#![warn(missing_docs)]
//! # vne-bench — the benchmark harness regenerating every table & figure
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation section (see `DESIGN.md` §7 for the index and
//! `EXPERIMENTS.md` for paper-vs-measured results). All binaries accept:
//!
//! * `--seeds N` — number of executions (paper: 30; default: 3);
//! * `--paper` — full paper scale (5400 history + 600 test slots;
//!   default is a 1800 + 300 slot medium scale with the same shape);
//! * `--utils 60,100,140` — utilization sweep override;
//! * `--topo iris|citta|5gen|100n150e` — restrict to one topology.
//!
//! Criterion benches (`benches/`) cover the runtime claims: LP solve
//! times, plan construction, online throughput and mechanism ablations.

pub mod adversarial;
pub mod cli;
pub mod experiments;

pub use cli::BenchOpts;
