//! The adversarial & churn scenario suite with empirical
//! competitive-ratio reporting (`fig_adversarial`).
//!
//! Every scenario of the matrix pairs one stressor — an
//! [`AdversaryProfile`] workload or a [`ChurnProfile`] substrate
//! schedule — with the per-scenario **offline LP revenue bound**
//! ([`offline_revenue_bound`]): the fractional optimum
//! an omniscient offline embedder could earn from the measurement
//! window's arrivals. The empirical competitive ratio of an online
//! algorithm is its window revenue divided by that bound — in `(0, 1]`
//! whenever the run accepts anything, because the bound relaxes both
//! integrality and every constraint churn tightens.
//!
//! The suite runs on the tiny `GoldenDiamond` world (the golden
//! fingerprint world), where the LP stays exactly solvable and the
//! adversaries genuinely bite.

use vne_model::app::AppSet;
use vne_model::cost::RejectionPenalty;
use vne_model::request::Slot;
use vne_model::substrate::SubstrateNetwork;
use vne_olive::algorithm::OnlineAlgorithm;
use vne_olive::bound::{offline_revenue_bound, OfflineBound};
use vne_sim::engine::{RequestOutcome, SimControl, SimObserver, SlotMetrics};
use vne_sim::metrics::Summary;
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};
use vne_workload::adversary::{AdversaryProfile, ChurnProfile};

/// One scenario of the suite: a stressor kind, its stable name, and the
/// fully-tweaked scenario configuration.
#[derive(Debug, Clone)]
pub struct ScenarioCell {
    /// `"adversarial"` or `"churn"`.
    pub kind: &'static str,
    /// Stable scenario label (JSON key).
    pub name: &'static str,
    /// The complete configuration of the cell.
    pub config: ScenarioConfig,
}

/// The builtin scenario matrix: all five adversarial workload profiles
/// plus three substrate-churn schedules, derived from a base config.
/// Churn periods are sized so every run crosses several outage windows.
pub fn scenario_matrix(base: &ScenarioConfig) -> Vec<ScenarioCell> {
    let mut cells = Vec::new();
    for profile in AdversaryProfile::ALL {
        let mut config = base.clone();
        config.adversary = Some(profile);
        cells.push(ScenarioCell {
            kind: "adversarial",
            name: profile.label(),
            config,
        });
    }
    let churn = [
        ChurnProfile::LinkOutages {
            period: 20,
            len: 5,
            count: 1,
        },
        ChurnProfile::NodeMaintenance { period: 25, len: 5 },
        ChurnProfile::CapacityDrain {
            period: 20,
            len: 6,
            factor: 0.5,
        },
    ];
    for profile in churn {
        let mut config = base.clone();
        config.churn = Some(profile);
        cells.push(ScenarioCell {
            kind: "churn",
            name: profile.label(),
            config,
        });
    }
    cells
}

/// Accumulates the online revenue earned from measurement-window
/// arrivals: `ψ(app)·demand·duration` for every accepted request, taken
/// back if the request is later preempted or churn-evicted — preempted
/// embeddings earn nothing, matching the rejection-penalty convention.
#[derive(Debug, Clone)]
pub struct RevenueTracker {
    window: (Slot, Slot),
    penalty: RejectionPenalty,
    revenue: f64,
}

impl RevenueTracker {
    /// A tracker over `window`, pricing requests with `penalty`'s ψ.
    pub fn new(window: (Slot, Slot), penalty: RejectionPenalty) -> Self {
        Self {
            window,
            penalty,
            revenue: 0.0,
        }
    }

    /// Net window revenue observed so far.
    pub fn revenue(&self) -> f64 {
        self.revenue
    }

    fn value(&self, outcome: &RequestOutcome) -> f64 {
        self.penalty.psi(outcome.class.app) * outcome.demand * f64::from(outcome.duration)
    }

    fn in_window(&self, arrival: Slot) -> bool {
        arrival >= self.window.0 && arrival < self.window.1
    }
}

impl SimObserver for RevenueTracker {
    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        if self.in_window(outcome.arrival) && !outcome.status.is_denied() {
            self.revenue += self.value(outcome);
        }
    }

    fn on_preemption(&mut self, outcome: &RequestOutcome) {
        // Only take back what on_arrival added: preemption outcomes
        // carry the original arrival slot.
        if self.in_window(outcome.arrival) {
            self.revenue -= self.value(outcome);
        }
    }

    fn on_slot_end(
        &mut self,
        _t: Slot,
        _metrics: &SlotMetrics,
        _algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        SimControl::Continue
    }
}

/// One algorithm's row of a scenario report.
#[derive(Debug, Clone)]
pub struct AlgorithmRatio {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Net revenue earned from window arrivals.
    pub online_revenue: f64,
    /// `online_revenue / bound`, clamped to `(…, 1]`.
    pub competitive_ratio: f64,
    /// The run's window summary.
    pub summary: Summary,
}

/// A full scenario report: the offline bound plus one row per
/// algorithm.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// `"adversarial"` or `"churn"`.
    pub kind: &'static str,
    /// Stable scenario label.
    pub name: &'static str,
    /// The offline LP revenue bound of this scenario's window arrivals.
    pub bound: OfflineBound,
    /// Per-algorithm ratios, in [`Algorithm::ALL`] order.
    pub rows: Vec<AlgorithmRatio>,
}

/// Runs one scenario cell for `algorithms` and reports competitive
/// ratios against the cell's offline LP bound. The bound is computed
/// once from the scenario's own online stream — the *same* arrival
/// sequence every algorithm faces (adversarial generators are
/// algorithm-independent by construction).
///
/// # Panics
///
/// Panics when an algorithm is unknown to the scenario's registry.
pub fn competitive_report(
    substrate: &SubstrateNetwork,
    apps: &AppSet,
    cell: &ScenarioCell,
    algorithms: &[Algorithm],
) -> ScenarioReport {
    let scenario = Scenario::new(substrate.clone(), apps.clone(), cell.config.clone());
    let bound = offline_revenue_bound(
        substrate,
        apps,
        &scenario.penalty(),
        scenario.online_events().flat_map(|ev| ev.arrivals),
        cell.config.measure_window,
    );
    let rows = algorithms
        .iter()
        .map(|&alg| {
            let mut tracker = RevenueTracker::new(cell.config.measure_window, scenario.penalty());
            let outcome = scenario.run_observed(alg, &mut tracker);
            AlgorithmRatio {
                algorithm: alg.label(),
                online_revenue: tracker.revenue(),
                competitive_ratio: bound.ratio(tracker.revenue()),
                summary: outcome.summary,
            }
        })
        .collect();
    ScenarioReport {
        kind: cell.kind,
        name: cell.name,
        bound,
        rows,
    }
}

/// Renders the suite's reports as the `BENCH_adversarial.json`
/// document (hand-rolled JSON; the workspace carries no JSON crate).
pub fn report_json(world: &str, base: &ScenarioConfig, reports: &[ScenarioReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"world\": \"{world}\",\n"));
    out.push_str(&format!("  \"seed\": {},\n", base.seed));
    out.push_str(&format!("  \"utilization\": {},\n", base.utilization));
    out.push_str(&format!(
        "  \"measure_window\": [{}, {}],\n",
        base.measure_window.0, base.measure_window.1
    ));
    out.push_str(&format!("  \"test_slots\": {},\n", base.test_slots));
    out.push_str("  \"scenarios\": [\n");
    for (i, report) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"kind\": \"{}\",\n", report.kind));
        out.push_str(&format!("      \"name\": \"{}\",\n", report.name));
        out.push_str(&format!(
            "      \"offline_revenue_bound\": {:.6},\n",
            report.bound.revenue_bound
        ));
        out.push_str(&format!(
            "      \"total_window_revenue\": {:.6},\n",
            report.bound.total_revenue
        ));
        out.push_str(&format!(
            "      \"window_requests\": {},\n",
            report.bound.requests
        ));
        out.push_str("      \"algorithms\": [\n");
        for (j, row) in report.rows.iter().enumerate() {
            let s = &row.summary;
            out.push_str("        {\n");
            out.push_str(&format!("          \"name\": \"{}\",\n", row.algorithm));
            out.push_str(&format!(
                "          \"online_revenue\": {:.6},\n",
                row.online_revenue
            ));
            out.push_str(&format!(
                "          \"competitive_ratio\": {:.6},\n",
                row.competitive_ratio
            ));
            out.push_str(&format!("          \"arrivals\": {},\n", s.arrivals));
            out.push_str(&format!("          \"rejected\": {},\n", s.rejected));
            out.push_str(&format!("          \"preempted\": {},\n", s.preempted));
            out.push_str(&format!(
                "          \"churn\": {{ \"events\": {}, \"stranded\": {}, \"evicted\": {}, \"reembedded\": {} }}\n",
                s.churn.events, s.churn.stranded, s.churn.evicted, s.churn.reembedded
            ));
            out.push_str(if j + 1 < report.rows.len() {
                "        },\n"
            } else {
                "        }\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < reports.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_topology::zoo::golden_diamond;

    fn base_config() -> ScenarioConfig {
        let mut config = ScenarioConfig::small(1.0).with_seed(11);
        config.history_slots = 60;
        config.test_slots = 25;
        config.measure_window = (2, 22);
        config.aggregation.bootstrap_replicates = 10;
        config.trace.mean_rate_per_node = 2.0;
        config
    }

    #[test]
    fn matrix_covers_all_builtin_stressors() {
        let cells = scenario_matrix(&base_config());
        assert_eq!(cells.len(), 8);
        assert_eq!(cells.iter().filter(|c| c.kind == "adversarial").count(), 5);
        assert_eq!(cells.iter().filter(|c| c.kind == "churn").count(), 3);
        let names: Vec<_> = cells.iter().map(|c| c.name).collect();
        assert!(names.contains(&"revenue_burst"));
        assert!(names.contains(&"capacity_drain"));
    }

    #[test]
    fn ratios_stay_in_unit_interval_on_the_golden_world() {
        let (substrate, apps) = golden_diamond().unwrap();
        let base = base_config();
        // One adversarial and one churn cell keep the unit test fast;
        // the fig_adversarial bin (and its CI step) covers the matrix.
        for cell in scenario_matrix(&base)
            .into_iter()
            .filter(|c| c.name == "revenue_burst" || c.name == "node_maintenance")
        {
            let report = competitive_report(&substrate, &apps, &cell, &Algorithm::ALL);
            assert!(report.bound.revenue_bound > 0.0, "{}", cell.name);
            for row in &report.rows {
                assert!(
                    row.competitive_ratio > 0.0 && row.competitive_ratio <= 1.0,
                    "{}/{}: ratio {} out of (0, 1]",
                    cell.name,
                    row.algorithm,
                    row.competitive_ratio
                );
                assert!(row.online_revenue <= report.bound.revenue_bound + 1e-9);
            }
        }
    }

    #[test]
    fn report_json_is_syntactically_balanced() {
        let (substrate, apps) = golden_diamond().unwrap();
        let base = base_config();
        let cell = &scenario_matrix(&base)[0];
        let report = competitive_report(&substrate, &apps, cell, &[Algorithm::Quickg]);
        let json = report_json("GoldenDiamond", &base, &[report]);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"competitive_ratio\""));
    }
}
