//! Criterion bench: streaming plan-input aggregation, exact vs sketch.
//!
//! Measures `AggregateDemand::from_stream` folding a synthetic history
//! through the two built-in estimators. The exact estimator pays the
//! dense `O(classes × slots)` series plus the bootstrap replay; the P²
//! sketch estimator folds the same stream in `O(classes)` memory with
//! no bootstrap — the gap is the cost of rebuilding the plan input
//! every planning window, which is what bounds how often a deployment
//! can re-plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vne_olive::aggregate::{AggregateDemand, AggregationConfig};
use vne_sim::runner::default_apps;
use vne_workload::estimator::EstimatorKind;
use vne_workload::rng::SeededRng;
use vne_workload::tracegen::{self, TraceConfig};

fn bench_plan_input(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_memory");
    group.sample_size(10);
    let substrate = vne_topology::zoo::citta_studi().unwrap();
    let apps = default_apps(1);
    let config = AggregationConfig {
        alpha: 80.0,
        bootstrap_replicates: 10,
    };
    for slots in [600u32, 2400] {
        let mut tc = TraceConfig::default().at_utilization(1.0, &substrate, &apps);
        tc.slots = slots;
        for (name, kind) in [
            ("exact", EstimatorKind::Exact),
            ("sketch", EstimatorKind::Sketch),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, slots),
                &(&tc, &kind),
                |b, (tc, kind)| {
                    b.iter(|| {
                        let events = tracegen::stream(&substrate, &apps, tc, SeededRng::new(2));
                        let mut estimator = kind.build(slots, &config);
                        let aggregate = AggregateDemand::from_stream(
                            events,
                            estimator.as_mut(),
                            &mut SeededRng::new(3),
                        );
                        assert!(!aggregate.is_empty());
                        aggregate.len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_plan_input);
criterion_main!(benches);
