//! Criterion bench: serial vs pipelined engine on the same stream.
//!
//! Drives one online phase (lazy trace generation, slot loop, window
//! summary) through `run_stream` and `run_stream_pipelined` so the
//! pipeline's overlap — and its channel overhead floor — are tracked
//! per commit next to `engine_stream`. The two paths are byte-identical
//! (pinned by the `pipeline_parity` suite); only wall-clock differs,
//! and the pipelined gain scales with free cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vne_model::policy::PlacementPolicy;
use vne_olive::olive::Olive;
use vne_sim::engine::{run_stream, run_stream_pipelined, PipelineConfig};
use vne_sim::observe::WindowSummary;
use vne_sim::runner::default_apps;
use vne_workload::rng::SeededRng;
use vne_workload::tracegen::{self, TraceConfig};

fn bench_engine_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_pipeline");
    group.sample_size(10);
    let slots = 300;
    for substrate in [
        vne_topology::zoo::iris().unwrap(),
        vne_topology::random::hundred_n_150e().unwrap(),
    ] {
        let apps = default_apps(1);
        let mut tc = TraceConfig::default().at_utilization(1.0, &substrate, &apps);
        tc.slots = slots;
        let total: usize = tracegen::stream(&substrate, &apps, &tc, SeededRng::new(5))
            .map(|ev| ev.arrivals.len())
            .sum();
        group.throughput(Throughput::Elements(total as u64));

        for (mode, pipelined) in [("serial", false), ("pipelined", true)] {
            group.bench_with_input(BenchmarkId::new(mode, substrate.name()), &tc, |b, tc| {
                b.iter(|| {
                    let mut alg =
                        Olive::quickg(substrate.clone(), apps.clone(), PlacementPolicy::default());
                    let events = tracegen::stream(&substrate, &apps, tc, SeededRng::new(5));
                    let mut observer = WindowSummary::new(
                        (50, 250),
                        vne_model::cost::RejectionPenalty::conservative(&apps, &substrate),
                    );
                    let stats = if pipelined {
                        run_stream_pipelined(
                            &mut alg,
                            &substrate,
                            events,
                            &mut observer,
                            &PipelineConfig::default(),
                        )
                    } else {
                        run_stream(&mut alg, &substrate, events, &mut observer)
                    };
                    observer.finish(&stats)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_pipeline);
criterion_main!(benches);
