//! Criterion bench: PLAN-VNE plan construction (column generation) per
//! topology — the paper's claim that "even very large plans can be
//! computed very quickly".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vne_model::cost::RejectionPenalty;
use vne_model::policy::PlacementPolicy;
use vne_olive::aggregate::{AggregateDemand, AggregationConfig};
use vne_olive::colgen::{solve_plan, PlanVneConfig};
use vne_sim::runner::default_apps;
use vne_workload::rng::SeededRng;
use vne_workload::tracegen::{self, TraceConfig};

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_build");
    group.sample_size(10);
    // Citta Studi and Iris keep single iterations in the tens-to-hundreds
    // of milliseconds; the 100-node instance takes seconds per solve and
    // is covered by the fig06/fig16 binaries instead of Criterion.
    let topologies = vec![
        vne_topology::zoo::citta_studi().unwrap(),
        vne_topology::zoo::iris().unwrap(),
    ];
    for substrate in topologies {
        let apps = default_apps(1);
        let mut rng = SeededRng::new(2);
        let mut tc = TraceConfig::default().at_utilization(1.0, &substrate, &apps);
        tc.slots = 600;
        let history = tracegen::generate(&substrate, &apps, &tc, &mut rng);
        let aggregate = AggregateDemand::from_history(
            &history,
            600,
            &AggregationConfig {
                alpha: 80.0,
                bootstrap_replicates: 30,
            },
            &mut rng,
        );
        let psi = RejectionPenalty::conservative(&apps, &substrate).max_psi();
        let policy = PlacementPolicy::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(substrate.name().to_string()),
            &substrate,
            |b, s| {
                b.iter(|| {
                    let (plan, stats) =
                        solve_plan(s, &apps, &policy, &aggregate, &PlanVneConfig::new(psi));
                    assert!(stats.columns > 0);
                    plan.total_columns()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);
