//! Criterion bench: the streaming engine hot path — a perf baseline for
//! the event-driven simulator.
//!
//! Measures `run_stream` end to end (lazy trace generation, slot loop,
//! observer dispatch) over a full online phase, with the two standard
//! observers: `NullObserver` (engine floor) and `WindowSummary` (the
//! multi-seed runner's path). QUICKG keeps the algorithm cost flat so
//! regressions in the engine itself are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vne_model::policy::PlacementPolicy;
use vne_olive::olive::Olive;
use vne_sim::engine::run_stream;
use vne_sim::observe::{NullObserver, WindowSummary};
use vne_sim::runner::default_apps;
use vne_workload::rng::SeededRng;
use vne_workload::tracegen::{self, TraceConfig};

fn bench_engine_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_stream");
    group.sample_size(10);
    let slots = 300;
    for substrate in [
        vne_topology::zoo::iris().unwrap(),
        vne_topology::random::hundred_n_150e().unwrap(),
    ] {
        let apps = default_apps(1);
        let mut tc = TraceConfig::default().at_utilization(1.0, &substrate, &apps);
        tc.slots = slots;
        // Throughput in requests: count one realization.
        let total: usize = tracegen::stream(&substrate, &apps, &tc, SeededRng::new(5))
            .map(|ev| ev.arrivals.len())
            .sum();
        group.throughput(Throughput::Elements(total as u64));

        group.bench_with_input(
            BenchmarkId::new("null_observer", substrate.name()),
            &tc,
            |b, tc| {
                b.iter(|| {
                    let mut alg =
                        Olive::quickg(substrate.clone(), apps.clone(), PlacementPolicy::default());
                    let events = tracegen::stream(&substrate, &apps, tc, SeededRng::new(5));
                    run_stream(&mut alg, &substrate, events, &mut NullObserver)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("window_summary", substrate.name()),
            &tc,
            |b, tc| {
                b.iter(|| {
                    let mut alg =
                        Olive::quickg(substrate.clone(), apps.clone(), PlacementPolicy::default());
                    let events = tracegen::stream(&substrate, &apps, tc, SeededRng::new(5));
                    let mut observer = WindowSummary::new(
                        (50, 250),
                        vne_model::cost::RejectionPenalty::conservative(&apps, &substrate),
                    );
                    let stats = run_stream(&mut alg, &substrate, events, &mut observer);
                    observer.finish(&stats)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_stream);
criterion_main!(benches);
