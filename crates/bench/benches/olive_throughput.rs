//! Criterion bench: online request throughput — the paper's headline
//! scalability claim (two orders of magnitude beyond the ~40 req/s best
//! previously reported; 1000 requests per slot on 100-node topologies).
//!
//! Measures `process_slot` over a prepared burst of arrivals for OLIVE
//! (with plan) and QUICKG, on Iris and 100N150E.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vne_model::policy::PlacementPolicy;
use vne_olive::algorithm::OnlineAlgorithm;
use vne_olive::olive::{Olive, OliveConfig};
use vne_sim::runner::default_apps;
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};
use vne_workload::rng::SeededRng;
use vne_workload::tracegen::{self, TraceConfig};

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("olive_throughput");
    group.sample_size(10);
    for substrate in [
        vne_topology::zoo::iris().unwrap(),
        vne_topology::random::hundred_n_150e().unwrap(),
    ] {
        let apps = default_apps(1);
        // A plan from a short history.
        let mut config = ScenarioConfig::small(1.0);
        config.history_slots = 400;
        let scenario = Scenario::new(substrate.clone(), apps.clone(), config);
        let (plan, _) = scenario.build_plan();
        let _ = Algorithm::Olive; // plan feeds the OLIVE instance below

        // One slot with ~1000 arrivals (the paper's 100N150E rate).
        let mut rng = SeededRng::new(9);
        let mut tc = TraceConfig::default().at_utilization(0.8, &substrate, &apps);
        tc.slots = 1;
        tc.mean_rate_per_node = 1000.0 / substrate.edge_nodes().len() as f64;
        let burst = tracegen::generate(&substrate, &apps, &tc, &mut rng);
        group.throughput(Throughput::Elements(burst.len() as u64));

        let olive_template = Olive::new(
            substrate.clone(),
            apps.clone(),
            PlacementPolicy::default(),
            plan,
            OliveConfig::default(),
        );
        group.bench_with_input(
            BenchmarkId::new("OLIVE", substrate.name()),
            &burst,
            |b, burst| {
                b.iter_batched(
                    || olive_template.clone(),
                    |mut alg| alg.process_slot(0, &[], burst),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        let quickg_template =
            Olive::quickg(substrate.clone(), apps.clone(), PlacementPolicy::default());
        group.bench_with_input(
            BenchmarkId::new("QUICKG", substrate.name()),
            &burst,
            |b, burst| {
                b.iter_batched(
                    || quickg_template.clone(),
                    |mut alg| alg.process_slot(0, &[], burst),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
