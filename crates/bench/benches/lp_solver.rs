//! Criterion bench: the LP substrate — simplex solve times on PLAN-VNE
//! master problems of increasing size (the operation CPLEX performs in
//! the paper's pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vne_lp::problem::{Problem, Relation};
use vne_lp::simplex::Simplex;

/// A synthetic master-like LP: `rows` capacity rows, `cols` columns with
/// ~4 nonzeros each, plus one convexity row per 10 columns.
fn master_like(rows: usize, cols: usize) -> Problem {
    let mut p = Problem::new();
    let caps: Vec<_> = (0..rows)
        .map(|i| p.add_row(format!("cap{i}"), Relation::Le, 1000.0))
        .collect();
    let convs: Vec<_> = (0..cols / 10 + 1)
        .map(|i| p.add_row(format!("conv{i}"), Relation::Eq, 1.0))
        .collect();
    let mut state = 0x243f6a8885a308d3u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for j in 0..cols {
        let v = p.add_var(format!("x{j}"), 1.0 + rng() * 10.0, 0.0, f64::INFINITY);
        for k in 0..4 {
            let row = caps[(j * 7 + k * 13) % rows];
            p.set_coeff(row, v, 10.0 + rng() * 100.0);
        }
        p.set_coeff(convs[j / 10], v, 1.0);
    }
    // Rejection-like bounded variables keeping every convexity feasible.
    for (i, &c) in convs.iter().enumerate() {
        let v = p.add_var(format!("rej{i}"), 1e5, 0.0, 1.0);
        p.set_coeff(c, v, 1.0);
    }
    p
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_master");
    group.sample_size(10);
    for (rows, cols) in [(60, 200), (120, 600), (240, 1500)] {
        let p = master_like(rows, cols);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}r_{cols}c")),
            &p,
            |b, p| {
                b.iter(|| {
                    let sol = Simplex::from_problem(p).solve();
                    assert!(sol.status.is_optimal());
                    sol.objective
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simplex);
criterion_main!(benches);
