//! Criterion bench: runtime cost of OLIVE's individual mechanisms
//! (borrowing, preemption, greedy fallback) on a saturated substrate,
//! plus the PLAN-VNE quantile count (P) ablation for plan-solve time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vne_model::cost::RejectionPenalty;
use vne_model::policy::PlacementPolicy;
use vne_olive::aggregate::{AggregateDemand, AggregationConfig};
use vne_olive::algorithm::OnlineAlgorithm;
use vne_olive::colgen::{solve_plan, PlanVneConfig};
use vne_olive::olive::{Olive, OliveConfig};
use vne_sim::runner::default_apps;
use vne_sim::scenario::{Scenario, ScenarioConfig};
use vne_workload::rng::SeededRng;
use vne_workload::tracegen::{self, TraceConfig};

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("olive_mechanisms");
    group.sample_size(10);
    let substrate = vne_topology::zoo::iris().unwrap();
    let apps = default_apps(1);
    let mut config = ScenarioConfig::small(1.4);
    config.history_slots = 400;
    let scenario = Scenario::new(substrate.clone(), apps.clone(), config);
    let (plan, _) = scenario.build_plan();

    // An overloaded burst that exercises every path.
    let mut rng = SeededRng::new(5);
    let mut tc = TraceConfig::default().at_utilization(1.4, &substrate, &apps);
    tc.slots = 3;
    let burst = tracegen::generate(&substrate, &apps, &tc, &mut rng);

    let variants: Vec<(&str, OliveConfig)> = vec![
        ("full", OliveConfig::default()),
        (
            "no-borrowing",
            OliveConfig {
                borrowing: false,
                ..OliveConfig::default()
            },
        ),
        (
            "no-preemption",
            OliveConfig {
                preemption: false,
                ..OliveConfig::default()
            },
        ),
        (
            "no-greedy",
            OliveConfig {
                greedy_fallback: false,
                ..OliveConfig::default()
            },
        ),
    ];
    for (label, olive_config) in variants {
        let template = Olive::new(
            substrate.clone(),
            apps.clone(),
            PlacementPolicy::default(),
            plan.clone(),
            olive_config,
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &burst, |b, burst| {
            b.iter_batched(
                || template.clone(),
                |mut alg| alg.process_slot(0, &[], burst),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_quantiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_quantiles");
    group.sample_size(10);
    let substrate = vne_topology::zoo::iris().unwrap();
    let apps = default_apps(1);
    let mut rng = SeededRng::new(2);
    let mut tc = TraceConfig::default().at_utilization(1.4, &substrate, &apps);
    tc.slots = 400;
    let history = tracegen::generate(&substrate, &apps, &tc, &mut rng);
    let aggregate = AggregateDemand::from_history(
        &history,
        400,
        &AggregationConfig {
            alpha: 80.0,
            bootstrap_replicates: 30,
        },
        &mut rng,
    );
    let psi = RejectionPenalty::conservative(&apps, &substrate).max_psi();
    let policy = PlacementPolicy::default();
    for p in [1usize, 2, 10, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let (plan, _) = solve_plan(
                    &substrate,
                    &apps,
                    &policy,
                    &aggregate,
                    &PlanVneConfig::new(psi).with_quantiles(p),
                );
                plan.total_columns()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mechanisms, bench_quantiles);
criterion_main!(benches);
