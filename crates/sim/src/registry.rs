//! The open algorithm registry: online algorithms constructed by name.
//!
//! The paper's evaluation has four algorithms, but the simulator is not
//! limited to them: an [`AlgorithmRegistry`] maps an [`AlgorithmSpec`]
//! (a case-insensitive name) to an [`AlgorithmFactory`] that builds a
//! `Box<dyn OnlineAlgorithm>` from a [`BuildContext`] — the scenario's
//! substrate, applications, policy and configuration, plus a lazy plan
//! builder for plan-based algorithms. Registering a new algorithm is a
//! one-file addition (see the `custom_algorithm` example): no change to
//! `vne-sim` is needed.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use vne_model::app::AppSet;
use vne_model::policy::PlacementPolicy;
use vne_model::substrate::SubstrateNetwork;
use vne_olive::algorithm::OnlineAlgorithm;
use vne_olive::colgen::PlanVneConfig;
use vne_olive::fullg::FullG;
use vne_olive::olive::Olive;
use vne_olive::plan::Plan;
use vne_olive::slotoff::SlotOff;

use crate::scenario::{Algorithm, Scenario, ScenarioConfig};

/// An algorithm selector: a normalized (upper-case, trimmed) name
/// resolved against an [`AlgorithmRegistry`].
///
/// Built from the [`Algorithm`] enum (the four paper algorithms), from
/// any string, or parsed with [`str::parse`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AlgorithmSpec {
    name: String,
}

impl AlgorithmSpec {
    /// Creates a spec from a raw name (trimmed, upper-cased).
    pub fn new(name: &str) -> Self {
        Self {
            name: name.trim().to_ascii_uppercase(),
        }
    }

    /// The normalized algorithm name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for AlgorithmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl std::str::FromStr for AlgorithmSpec {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(Self::new(s))
    }
}

impl From<Algorithm> for AlgorithmSpec {
    fn from(a: Algorithm) -> Self {
        Self::new(a.label())
    }
}

impl From<&str> for AlgorithmSpec {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<String> for AlgorithmSpec {
    fn from(s: String) -> Self {
        Self::new(&s)
    }
}

impl From<&AlgorithmSpec> for AlgorithmSpec {
    fn from(s: &AlgorithmSpec) -> Self {
        s.clone()
    }
}

/// Everything a factory may need to construct an algorithm instance.
///
/// Borrows the scenario: substrate, application catalogue, placement
/// policy and configuration are accessors, and [`BuildContext::build_plan`]
/// runs the full history → aggregation → PLAN-VNE pipeline on demand
/// (only plan-based algorithms pay for it).
#[derive(Debug, Clone, Copy)]
pub struct BuildContext<'a> {
    scenario: &'a Scenario,
}

impl<'a> BuildContext<'a> {
    /// Creates a context for one scenario.
    pub fn new(scenario: &'a Scenario) -> Self {
        Self { scenario }
    }

    /// The scenario being run.
    pub fn scenario(&self) -> &'a Scenario {
        self.scenario
    }

    /// The physical substrate.
    pub fn substrate(&self) -> &'a SubstrateNetwork {
        &self.scenario.substrate
    }

    /// The application catalogue.
    pub fn apps(&self) -> &'a AppSet {
        &self.scenario.apps
    }

    /// The placement policy (η).
    pub fn policy(&self) -> &'a PlacementPolicy {
        &self.scenario.policy
    }

    /// The scenario parameters.
    pub fn config(&self) -> &'a ScenarioConfig {
        &self.scenario.config
    }

    /// Builds the OLIVE plan from the history trace; returns the plan
    /// and the wall-clock seconds it took.
    pub fn build_plan(&self) -> (Plan, f64) {
        self.scenario.build_plan()
    }

    /// The PLAN-VNE solver configuration (ψ, quantile count) of this
    /// scenario — what SLOTOFF re-optimizes with every slot.
    pub fn plan_config(&self) -> PlanVneConfig {
        self.scenario.plan_config()
    }
}

/// A constructed algorithm plus the planning byproducts (if any).
pub struct BuiltAlgorithm {
    /// The algorithm instance the engine will drive.
    pub algorithm: Box<dyn OnlineAlgorithm>,
    /// The plan used, for plan-based algorithms.
    pub plan: Option<Plan>,
    /// Seconds spent building the plan (0 for plan-free algorithms).
    pub plan_secs: f64,
}

impl BuiltAlgorithm {
    /// Wraps a plan-free algorithm.
    pub fn plain(algorithm: impl OnlineAlgorithm + 'static) -> Self {
        Self {
            algorithm: Box::new(algorithm),
            plan: None,
            plan_secs: 0.0,
        }
    }

    /// Wraps a plan-based algorithm with its plan and planning time.
    pub fn planned(algorithm: impl OnlineAlgorithm + 'static, plan: Plan, plan_secs: f64) -> Self {
        Self {
            algorithm: Box::new(algorithm),
            plan: Some(plan),
            plan_secs,
        }
    }
}

impl fmt::Debug for BuiltAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BuiltAlgorithm")
            .field("algorithm", &self.algorithm.name())
            .field("plan", &self.plan.is_some())
            .field("plan_secs", &self.plan_secs)
            .finish()
    }
}

/// A factory constructing an algorithm instance for one scenario run.
pub type AlgorithmFactory = Arc<dyn Fn(&BuildContext<'_>) -> BuiltAlgorithm + Send + Sync>;

/// The error returned when a spec does not resolve.
#[derive(Debug, Clone)]
pub struct UnknownAlgorithm {
    /// The name that failed to resolve.
    pub name: String,
    /// The names the registry does know.
    pub known: Vec<String>,
}

impl fmt::Display for UnknownAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown algorithm {:?}; registered: {}",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownAlgorithm {}

/// A name → factory map of online algorithms.
///
/// Cloning is cheap (factories are `Arc`s); registries are `Send +
/// Sync` so the multi-seed runner can share one across worker threads.
#[derive(Clone, Default)]
pub struct AlgorithmRegistry {
    factories: BTreeMap<String, AlgorithmFactory>,
}

impl AlgorithmRegistry {
    /// An empty registry (no algorithms).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A registry with the paper's four algorithms (OLIVE, QUICKG,
    /// FULLG, SLOTOFF) pre-registered.
    pub fn builtins() -> Self {
        let mut registry = Self::empty();
        registry.register(Algorithm::Olive.label(), |ctx| {
            let (plan, plan_secs) = ctx.build_plan();
            BuiltAlgorithm::planned(
                Olive::new(
                    ctx.substrate().clone(),
                    ctx.apps().clone(),
                    ctx.policy().clone(),
                    plan.clone(),
                    ctx.config().olive,
                ),
                plan,
                plan_secs,
            )
        });
        registry.register(Algorithm::Quickg.label(), |ctx| {
            BuiltAlgorithm::plain(Olive::quickg(
                ctx.substrate().clone(),
                ctx.apps().clone(),
                ctx.policy().clone(),
            ))
        });
        registry.register(Algorithm::Fullg.label(), |ctx| {
            BuiltAlgorithm::plain(FullG::new(
                ctx.substrate().clone(),
                ctx.apps().clone(),
                ctx.policy().clone(),
            ))
        });
        registry.register(Algorithm::SlotOff.label(), |ctx| {
            BuiltAlgorithm::plain(SlotOff::new(
                ctx.substrate().clone(),
                ctx.apps().clone(),
                ctx.policy().clone(),
                ctx.plan_config(),
            ))
        });
        registry
    }

    /// Registers (or replaces) a factory under `name` (normalized like
    /// an [`AlgorithmSpec`]).
    pub fn register(
        &mut self,
        name: &str,
        factory: impl Fn(&BuildContext<'_>) -> BuiltAlgorithm + Send + Sync + 'static,
    ) -> &mut Self {
        self.factories.insert(
            AlgorithmSpec::new(name).name().to_string(),
            Arc::new(factory),
        );
        self
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// Whether `spec` resolves.
    pub fn contains(&self, spec: &AlgorithmSpec) -> bool {
        self.factories.contains_key(spec.name())
    }

    /// Constructs the algorithm selected by `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownAlgorithm`] when the name is not registered.
    pub fn build(
        &self,
        spec: &AlgorithmSpec,
        ctx: &BuildContext<'_>,
    ) -> Result<BuiltAlgorithm, UnknownAlgorithm> {
        match self.factories.get(spec.name()) {
            Some(factory) => Ok(factory(ctx)),
            None => Err(UnknownAlgorithm {
                name: spec.name().to_string(),
                known: self.factories.keys().cloned().collect(),
            }),
        }
    }
}

// `Debug` lists the registered names (factories are opaque closures).
impl fmt::Debug for AlgorithmRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlgorithmRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_normalizes_names() {
        assert_eq!(AlgorithmSpec::new(" olive ").name(), "OLIVE");
        assert_eq!(AlgorithmSpec::from(Algorithm::SlotOff).name(), "SLOTOFF");
        assert_eq!(AlgorithmSpec::from("quickg").to_string(), "QUICKG");
        let parsed: AlgorithmSpec = "FullG".parse().unwrap();
        assert_eq!(parsed.name(), "FULLG");
    }

    #[test]
    fn builtins_cover_the_paper_algorithms() {
        let registry = AlgorithmRegistry::builtins();
        assert_eq!(
            registry.names(),
            vec!["FULLG", "OLIVE", "QUICKG", "SLOTOFF"]
        );
        for alg in Algorithm::ALL {
            assert!(registry.contains(&alg.into()), "{alg} missing");
        }
        assert!(!registry.contains(&"NOSUCH".into()));
    }

    #[test]
    fn unknown_algorithm_error_names_the_candidates() {
        let registry = AlgorithmRegistry::builtins();
        let spec = AlgorithmSpec::new("mystery");
        // Building requires a scenario; resolution alone is enough here.
        assert!(!registry.contains(&spec));
        let err = UnknownAlgorithm {
            name: spec.name().to_string(),
            known: registry.names().iter().map(|s| s.to_string()).collect(),
        };
        let msg = err.to_string();
        assert!(msg.contains("MYSTERY") && msg.contains("OLIVE"), "{msg}");
    }
}
