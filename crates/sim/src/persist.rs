//! Crash-safe checkpoint files.
//!
//! A [`crate::observe::Checkpointer`] sink that writes checkpoints with
//! `std::fs::write` has a failure window: a crash (or `SIGKILL`)
//! mid-write leaves a truncated blob at the *latest* path, and the
//! previous good checkpoint is already gone. This module closes that
//! window with the classic temp-file-then-rename protocol:
//!
//! 1. serialize into `<path>.tmp` (same directory, so the rename below
//!    cannot cross filesystems);
//! 2. `sync_all` the temp file so the bytes are durable before the name
//!    moves;
//! 3. atomically `rename` over `<path>` — readers see either the old
//!    complete checkpoint or the new complete checkpoint, never a
//!    partial one.
//!
//! [`read_checkpoint_file`] is the matching loader: it refuses a
//! truncated or corrupt blob with a clear [`PersistError::Decode`]
//! error instead of restoring garbage, and leaves the file untouched.
//! The `vne-serve` daemon and the bench suite's checkpointed cells both
//! persist through this module.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use vne_model::state::StateError;

use crate::engine::EngineCheckpoint;

/// Why a checkpoint file could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// The filesystem said no (missing directory, permissions, full
    /// disk, …). Carries the path for context.
    Io {
        /// The file (or temp file) the operation was touching.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The file's bytes are not a complete checkpoint (truncated write,
    /// corruption, or a foreign file). The file is left as found.
    Decode {
        /// The offending file.
        path: PathBuf,
        /// The codec's refusal.
        source: StateError,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "checkpoint file {}: {source}", path.display())
            }
            PersistError::Decode { path, source } => write!(
                f,
                "checkpoint file {} is not a valid checkpoint ({source}); \
                 refusing to restore from it",
                path.display()
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Decode { source, .. } => Some(source),
        }
    }
}

/// The sibling temp path the atomic protocol stages into: `<path>.tmp`
/// in the same directory (same filesystem, so the final rename is
/// atomic).
fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `bytes` to `path` atomically: stage into `<path>.tmp`, flush
/// and `sync_all`, then rename over `path`. After a crash at any point,
/// `path` holds either its previous contents or the new ones — never a
/// prefix.
///
/// # Errors
///
/// Returns [`PersistError::Io`] if any filesystem step fails; the
/// destination file is untouched in that case (a failed stage leaves at
/// most a stale `.tmp` behind, which the next write overwrites).
pub fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = staging_path(path);
    let stage = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()
    })();
    if let Err(source) = stage {
        return Err(PersistError::Io { path: tmp, source });
    }
    fs::rename(&tmp, path).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Serializes `checkpoint` and writes it to `path` via
/// [`write_bytes_atomic`].
///
/// # Errors
///
/// Returns [`PersistError::Io`] if the filesystem rejects the write.
pub fn write_checkpoint_file(
    path: &Path,
    checkpoint: &EngineCheckpoint,
) -> Result<(), PersistError> {
    write_bytes_atomic(path, &checkpoint.to_bytes())
}

/// Reads a checkpoint written by [`write_checkpoint_file`] (or any
/// [`EngineCheckpoint::to_bytes`] blob), refusing truncated or corrupt
/// files with a [`PersistError::Decode`] that names the path.
///
/// # Errors
///
/// Returns [`PersistError::Io`] if the file cannot be read,
/// [`PersistError::Decode`] if its bytes are not a complete checkpoint.
pub fn read_checkpoint_file(path: &Path) -> Result<EngineCheckpoint, PersistError> {
    let bytes = fs::read(path).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    EngineCheckpoint::from_bytes(&bytes).map_err(|source| PersistError::Decode {
        path: path.to_path_buf(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vne-persist-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn atomic_write_replaces_contents_and_cleans_staging() {
        let dir = temp_dir("atomic");
        let path = dir.join("blob.bin");
        write_bytes_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_bytes_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(
            !staging_path(&path).exists(),
            "staging file must not survive a successful write"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_reports_io_error() {
        let path = temp_dir("missing").join("no-such-subdir").join("blob.bin");
        let err = write_bytes_atomic(&path, b"x").unwrap_err();
        assert!(matches!(err, PersistError::Io { .. }), "got {err}");
        assert!(err.to_string().contains("no-such-subdir"));
    }
}
