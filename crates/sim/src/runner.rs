//! Multi-seed experiment runner with parallel execution.
//!
//! The paper executes every experiment 30 times and reports means with
//! confidence intervals. [`run_seeds`] replays a scenario across seeds on
//! worker threads (std scoped threads) and aggregates the summaries.
//! Each per-seed run streams the online phase through the engine's
//! incremental window-summary observer, so a whole sweep never
//! materializes a trace or an outcome log. [`run_seeds_in`] is the same
//! loop with an explicit [`AlgorithmRegistry`], which is how custom
//! (non-builtin) algorithms join multi-seed sweeps.

use std::sync::Mutex;
use vne_model::app::AppSet;
use vne_model::substrate::SubstrateNetwork;
use vne_workload::appgen::{paper_mix, AppGenConfig};
use vne_workload::rng::SeededRng;

use crate::metrics::{aggregate, AggregatedSummary, Summary};
use crate::registry::{AlgorithmRegistry, AlgorithmSpec};
use crate::scenario::{Scenario, ScenarioConfig};

/// An edge-utilization level (the x-axis of Figs. 6/7/15/16).
///
/// Total-ordered and hashable (`Ord` via IEEE `total_cmp`, `Hash` over
/// the bit pattern) so sweeps can key result maps by utilization.
/// Constructors reject non-finite values and normalize `-0.0` to `0.0`,
/// which keeps `Eq`/`Ord`/`Hash` mutually consistent.
#[derive(Debug, Clone, Copy)]
pub struct Utilization(f64);

impl Utilization {
    /// From a percentage (e.g. `Utilization::percent(140)`).
    pub fn percent(p: u32) -> Self {
        Self(f64::from(p) / 100.0)
    }

    /// From a fraction (e.g. `Utilization::fraction_of(1.4)` = 140%).
    ///
    /// # Panics
    ///
    /// Panics if `f` is NaN, infinite, or negative.
    pub fn fraction_of(f: f64) -> Self {
        assert!(
            f.is_finite() && f >= 0.0,
            "utilization must be finite and ≥ 0, got {f}"
        );
        // `-0.0 + 0.0 == +0.0`: one canonical zero for Eq/Ord/Hash.
        Self(f + 0.0)
    }

    /// As a fraction (1.0 = 100%).
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The paper's sweep: 60% to 140% in 20-point steps.
    pub fn paper_sweep() -> Vec<Utilization> {
        [60, 80, 100, 120, 140]
            .into_iter()
            .map(Utilization::percent)
            .collect()
    }
}

impl PartialEq for Utilization {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Utilization {}

impl PartialOrd for Utilization {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Utilization {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for Utilization {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.to_bits());
    }
}

impl std::fmt::Display for Utilization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0}%", self.0 * 100.0)
    }
}

/// Generates the per-seed application set the way the paper does: a
/// fresh draw of the standard mix per execution.
pub fn default_apps(seed: u64) -> AppSet {
    let mut rng = SeededRng::new(seed).derive(0xA995);
    paper_mix(&AppGenConfig::default(), &mut rng)
}

/// Runs `algorithm` across `seeds` in parallel and returns the per-seed
/// summaries (in seed order) plus their aggregate.
///
/// The algorithm is resolved by name in [`AlgorithmRegistry::builtins`];
/// use [`run_seeds_in`] to sweep custom algorithms. `make_apps` draws
/// the application set for a seed (usually [`default_apps`]);
/// `configure` builds the scenario config for a seed.
pub fn run_seeds<FA, FC>(
    substrate: &SubstrateNetwork,
    algorithm: impl Into<AlgorithmSpec>,
    seeds: &[u64],
    make_apps: FA,
    configure: FC,
) -> (Vec<Summary>, AggregatedSummary)
where
    FA: Fn(u64) -> AppSet + Sync,
    FC: Fn(u64) -> ScenarioConfig + Sync,
{
    run_seeds_in(
        &AlgorithmRegistry::builtins(),
        substrate,
        &algorithm.into(),
        seeds,
        make_apps,
        configure,
    )
}

/// [`run_seeds`] with an explicit algorithm registry — the entry point
/// for sweeping algorithms registered outside `vne-sim`.
///
/// # Panics
///
/// Panics when `spec` does not resolve in `registry`.
pub fn run_seeds_in<FA, FC>(
    registry: &AlgorithmRegistry,
    substrate: &SubstrateNetwork,
    spec: &AlgorithmSpec,
    seeds: &[u64],
    make_apps: FA,
    configure: FC,
) -> (Vec<Summary>, AggregatedSummary)
where
    FA: Fn(u64) -> AppSet + Sync,
    FC: Fn(u64) -> ScenarioConfig + Sync,
{
    let summaries = seed_map(seeds, |seed| {
        let apps = make_apps(seed);
        let config = configure(seed);
        let scenario =
            Scenario::new(substrate.clone(), apps, config).with_registry(registry.clone());
        scenario.run_summary(spec).unwrap_or_else(|e| panic!("{e}"))
    });
    let agg = aggregate(&summaries);
    (summaries, agg)
}

/// Maps `f` over `seeds` on a worker pool (one task per seed, up to
/// `available_parallelism` threads) and returns the results **in seed
/// order** — the shared scaffolding of [`run_seeds_in`] and the
/// checkpointing sweeps in `vne-bench`.
///
/// # Panics
///
/// Propagates panics from `f` (a panicking worker aborts the map).
pub fn seed_map<R, F>(seeds: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(seeds.len()));
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(seeds.len().max(1));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= seeds.len() {
                    break;
                }
                let result = f(seeds[idx]);
                results
                    .lock()
                    .expect("runner mutex poisoned")
                    .push((idx, result));
            });
        }
    });

    let mut collected = results.into_inner().expect("runner mutex poisoned");
    collected.sort_by_key(|(idx, _)| *idx);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Algorithm;
    use std::collections::{BTreeMap, HashMap};
    use vne_topology::zoo::citta_studi;

    #[test]
    fn utilization_helpers() {
        let u = Utilization::percent(140);
        assert!((u.fraction() - 1.4).abs() < 1e-12);
        assert_eq!(u.to_string(), "140%");
        assert_eq!(Utilization::paper_sweep().len(), 5);
    }

    #[test]
    fn utilization_is_totally_ordered() {
        let mut sweep = Utilization::paper_sweep();
        sweep.reverse();
        sweep.sort();
        let fractions: Vec<f64> = sweep.iter().map(|u| u.fraction()).collect();
        assert_eq!(fractions, vec![0.6, 0.8, 1.0, 1.2, 1.4]);
        assert!(Utilization::percent(60) < Utilization::percent(140));
        assert_eq!(Utilization::percent(100), Utilization::fraction_of(1.0));
    }

    #[test]
    fn utilization_works_as_map_key() {
        // The satellite motivation: keying a sweep's results per level.
        let mut btree: BTreeMap<Utilization, usize> = BTreeMap::new();
        let mut hash: HashMap<Utilization, usize> = HashMap::new();
        for (i, u) in Utilization::paper_sweep().into_iter().enumerate() {
            btree.insert(u, i);
            hash.insert(u, i);
        }
        assert_eq!(btree.len(), 5);
        assert_eq!(hash.len(), 5);
        // Lookup through an independently-constructed key.
        assert_eq!(btree[&Utilization::fraction_of(1.2)], 3);
        assert_eq!(hash[&Utilization::percent(120)], 3);
        // BTreeMap iterates in utilization order.
        let keys: Vec<f64> = btree.keys().map(|u| u.fraction()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn utilization_zero_is_canonical() {
        assert_eq!(Utilization::fraction_of(0.0), Utilization::percent(0));
        let neg_zero = Utilization::fraction_of(-0.0);
        assert_eq!(neg_zero, Utilization::percent(0));
        assert_eq!(neg_zero.fraction().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn utilization_rejects_nan() {
        let _ = Utilization::fraction_of(f64::NAN);
    }

    #[test]
    fn parallel_seeds_are_deterministic_and_ordered() {
        let substrate = citta_studi().unwrap();
        let seeds = [1u64, 2, 3];
        let run = || {
            run_seeds(
                &substrate,
                Algorithm::Quickg,
                &seeds,
                default_apps,
                |seed| ScenarioConfig::small(1.2).with_seed(seed),
            )
        };
        let (a, agg_a) = run();
        let (b, _) = run();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rejection_rate, y.rejection_rate);
        }
        assert_eq!(agg_a.seeds, 3);
        assert!(agg_a.rejection_rate.0 >= 0.0);
    }

    #[test]
    fn run_seeds_matches_scenario_runs() {
        let substrate = citta_studi().unwrap();
        let seeds = [4u64, 5];
        let (summaries, _) = run_seeds(
            &substrate,
            Algorithm::Quickg,
            &seeds,
            default_apps,
            |seed| ScenarioConfig::small(1.0).with_seed(seed),
        );
        for (i, &seed) in seeds.iter().enumerate() {
            let scenario = Scenario::new(
                substrate.clone(),
                default_apps(seed),
                ScenarioConfig::small(1.0).with_seed(seed),
            );
            let direct = scenario.run(Algorithm::Quickg).summary;
            assert_eq!(summaries[i].arrivals, direct.arrivals);
            assert_eq!(summaries[i].rejection_rate, direct.rejection_rate);
            assert_eq!(summaries[i].resource_cost, direct.resource_cost);
        }
    }
}
