//! Multi-seed experiment runner with parallel execution and shared
//! per-sweep artifacts.
//!
//! The paper executes every experiment 30 times and reports means with
//! confidence intervals. [`run_seeds`] replays a scenario across seeds on
//! worker threads (std scoped threads) and aggregates the summaries.
//! Each per-seed run streams the online phase through the engine's
//! incremental window-summary observer, so a whole sweep never
//! materializes a trace or an outcome log. [`run_seeds_in`] is the same
//! loop with an explicit [`AlgorithmRegistry`], which is how custom
//! (non-builtin) algorithms join multi-seed sweeps.
//!
//! Two pieces make whole *sweeps* (many cells of algorithm ×
//! utilization × seed) cheap:
//!
//! * [`SweepContext`] — a shared memo of per-seed application draws and
//!   offline [`vne_olive::plan::Plan`]s, keyed by the scenario's
//!   plan-input fingerprint. Cells with identical plan inputs (ablation
//!   variants, repeated plan-based algorithms) derive the plan once;
//!   the cached value is the identical `Plan`, so summaries stay
//!   byte-identical to fresh derivations.
//! * [`cell_map`] — the generalized worker pool behind [`seed_map`]:
//!   *all* cells of a sweep feed one pool (instead of a fresh pool per
//!   cell group), so workers stay busy across cell boundaries and plans
//!   materialize in the shared context as the first cell needing them
//!   runs.
//!
//! Workers collect into per-worker buffers (no shared result mutex); a
//! panicking cell propagates its original panic payload after the
//! surviving workers finish.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use vne_model::app::AppSet;
use vne_model::substrate::SubstrateNetwork;
use vne_olive::plan::Plan;
use vne_workload::appgen::{paper_mix, AppGenConfig};
use vne_workload::rng::SeededRng;

use crate::metrics::{aggregate, AggregatedSummary, Summary};
use crate::registry::{AlgorithmRegistry, AlgorithmSpec};
use crate::scenario::{Scenario, ScenarioConfig};

/// An edge-utilization level (the x-axis of Figs. 6/7/15/16).
///
/// Total-ordered and hashable (`Ord` via IEEE `total_cmp`, `Hash` over
/// the bit pattern) so sweeps can key result maps by utilization.
/// Constructors reject non-finite values and normalize `-0.0` to `0.0`,
/// which keeps `Eq`/`Ord`/`Hash` mutually consistent.
#[derive(Debug, Clone, Copy)]
pub struct Utilization(f64);

impl Utilization {
    /// From a percentage (e.g. `Utilization::percent(140)`).
    pub fn percent(p: u32) -> Self {
        Self(f64::from(p) / 100.0)
    }

    /// From a fraction (e.g. `Utilization::fraction_of(1.4)` = 140%).
    ///
    /// # Panics
    ///
    /// Panics if `f` is NaN, infinite, or negative.
    pub fn fraction_of(f: f64) -> Self {
        assert!(
            f.is_finite() && f >= 0.0,
            "utilization must be finite and ≥ 0, got {f}"
        );
        // `-0.0 + 0.0 == +0.0`: one canonical zero for Eq/Ord/Hash.
        Self(f + 0.0)
    }

    /// As a fraction (1.0 = 100%).
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The paper's sweep: 60% to 140% in 20-point steps.
    pub fn paper_sweep() -> Vec<Utilization> {
        [60, 80, 100, 120, 140]
            .into_iter()
            .map(Utilization::percent)
            .collect()
    }
}

impl PartialEq for Utilization {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Utilization {}

impl PartialOrd for Utilization {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Utilization {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for Utilization {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.to_bits());
    }
}

impl std::fmt::Display for Utilization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0}%", self.0 * 100.0)
    }
}

/// Generates the per-seed application set the way the paper does: a
/// fresh draw of the standard mix per execution.
pub fn default_apps(seed: u64) -> AppSet {
    let mut rng = SeededRng::new(seed).derive(0xA995);
    paper_mix(&AppGenConfig::default(), &mut rng)
}

/// Runs `algorithm` across `seeds` in parallel and returns the per-seed
/// summaries (in seed order) plus their aggregate.
///
/// The algorithm is resolved by name in [`AlgorithmRegistry::builtins`];
/// use [`run_seeds_in`] to sweep custom algorithms. `make_apps` draws
/// the application set for a seed (usually [`default_apps`]);
/// `configure` builds the scenario config for a seed.
pub fn run_seeds<FA, FC>(
    substrate: &SubstrateNetwork,
    algorithm: impl Into<AlgorithmSpec>,
    seeds: &[u64],
    make_apps: FA,
    configure: FC,
) -> (Vec<Summary>, AggregatedSummary)
where
    FA: Fn(u64) -> AppSet + Sync,
    FC: Fn(u64) -> ScenarioConfig + Sync,
{
    run_seeds_in(
        &AlgorithmRegistry::builtins(),
        substrate,
        &algorithm.into(),
        seeds,
        make_apps,
        configure,
    )
}

/// [`run_seeds`] with an explicit algorithm registry — the entry point
/// for sweeping algorithms registered outside `vne-sim`. Creates a
/// fresh [`SweepContext`] for the call; use [`run_seeds_with`] to share
/// one across calls (ablation variants, multi-figure sweeps).
///
/// # Panics
///
/// Panics when `spec` does not resolve in `registry`.
pub fn run_seeds_in<FA, FC>(
    registry: &AlgorithmRegistry,
    substrate: &SubstrateNetwork,
    spec: &AlgorithmSpec,
    seeds: &[u64],
    make_apps: FA,
    configure: FC,
) -> (Vec<Summary>, AggregatedSummary)
where
    FA: Fn(u64) -> AppSet + Sync,
    FC: Fn(u64) -> ScenarioConfig + Sync,
{
    run_seeds_with(
        &Arc::new(SweepContext::new()),
        registry,
        substrate,
        spec,
        seeds,
        make_apps,
        configure,
    )
}

/// [`run_seeds_in`] sharing an explicit [`SweepContext`]: per-seed
/// application draws and offline plans memoized in `ctx` are reused
/// instead of re-derived — across the seeds of this call *and* across
/// any other call sharing the same context (the vne-bench sweep drivers
/// share one per sweep). Byte-identical to [`run_seeds_in`].
///
/// # Panics
///
/// Panics when `spec` does not resolve in `registry`.
pub fn run_seeds_with<FA, FC>(
    ctx: &Arc<SweepContext>,
    registry: &AlgorithmRegistry,
    substrate: &SubstrateNetwork,
    spec: &AlgorithmSpec,
    seeds: &[u64],
    make_apps: FA,
    configure: FC,
) -> (Vec<Summary>, AggregatedSummary)
where
    FA: Fn(u64) -> AppSet + Sync,
    FC: Fn(u64) -> ScenarioConfig + Sync,
{
    let summaries = seed_map(seeds, |seed| {
        let apps = ctx.apps(seed, &make_apps);
        let config = configure(seed);
        let scenario = Scenario::new(substrate.clone(), apps, config)
            .with_registry(registry.clone())
            .with_sweep_context(Arc::clone(ctx));
        scenario.run_summary(spec).unwrap_or_else(|e| panic!("{e}"))
    });
    let agg = aggregate(&summaries);
    (summaries, agg)
}

/// Shared artifacts of one sweep: per-seed application draws and
/// memoized offline plans.
///
/// The plan memo is keyed by
/// [`crate::scenario::Scenario::plan_cache_key`] — a fingerprint of
/// every plan input — so only cells that would derive bit-identical
/// plans share an entry. Each entry is built exactly once (a per-key
/// `OnceLock`; concurrent workers needing the same plan block on the
/// first builder instead of duplicating the work). Application draws
/// are keyed by seed and assume one app generator per context — which
/// holds by construction, since a context lives inside a single sweep
/// call with a fixed `make_apps`.
pub struct SweepContext {
    apps: Mutex<HashMap<u64, AppSet>>,
    plans: Mutex<HashMap<u64, PlanSlot>>,
}

/// One memoized plan entry: `(plan, original build seconds)`, derived
/// exactly once through the per-key `OnceLock`.
type PlanSlot = Arc<OnceLock<(Plan, f64)>>;

impl SweepContext {
    /// An empty context.
    pub fn new() -> Self {
        Self {
            apps: Mutex::new(HashMap::new()),
            plans: Mutex::new(HashMap::new()),
        }
    }

    /// The application set for `seed`: drawn through `make` on first
    /// use, cloned from the memo afterwards.
    ///
    /// **Contract:** every call on one context must pass the *same*
    /// deterministic generator — the memo is keyed by seed alone (a
    /// closure cannot be fingerprinted), so a second generator would
    /// silently receive the first one's draws. Debug builds verify the
    /// hit against a fresh draw and panic on mismatch; use one
    /// `SweepContext` per app generator.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when a cache hit does not match what
    /// `make` draws — i.e. the context is being shared across
    /// different app generators.
    pub fn apps(&self, seed: u64, make: impl FnOnce(u64) -> AppSet) -> AppSet {
        let apps = self.apps.lock().expect("sweep context apps mutex");
        if let Some(cached) = apps.get(&seed) {
            let cached = cached.clone();
            drop(apps);
            #[cfg(debug_assertions)]
            assert_eq!(
                format!("{cached:?}"),
                format!("{:?}", make(seed)),
                "SweepContext::apps hit a draw from a different app generator; \
                 use one SweepContext per generator"
            );
            return cached;
        }
        drop(apps); // draw outside the lock; drawing can be slow
        let drawn = make(seed);
        self.apps
            .lock()
            .expect("sweep context apps mutex")
            .entry(seed)
            .or_insert(drawn)
            .clone()
    }

    /// The plan for cache key `key`: derived through `build` exactly
    /// once, cloned from the memo afterwards. Returns `(plan,
    /// build_secs)` where `build_secs` is the original derivation's
    /// wall-clock (cache hits report the amortized cost, not zero).
    pub fn plan_for(&self, key: u64, build: impl FnOnce() -> (Plan, f64)) -> (Plan, f64) {
        let slot = {
            let mut plans = self.plans.lock().expect("sweep context plan mutex");
            Arc::clone(plans.entry(key).or_default())
        };
        slot.get_or_init(build).clone()
    }

    /// Number of memoized plans (diagnostics).
    pub fn plans_cached(&self) -> usize {
        self.plans.lock().expect("sweep context plan mutex").len()
    }

    /// Number of memoized application draws (diagnostics).
    pub fn apps_cached(&self) -> usize {
        self.apps.lock().expect("sweep context apps mutex").len()
    }
}

impl Default for SweepContext {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SweepContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepContext")
            .field("apps_cached", &self.apps_cached())
            .field("plans_cached", &self.plans_cached())
            .finish()
    }
}

thread_local! {
    /// Set inside [`cell_map`] worker threads so nested engine runs
    /// know the pool is already saturated (see
    /// `Scenario::use_pipeline`).
    static IN_PARALLEL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is a [`cell_map`] / [`seed_map`] worker.
pub(crate) fn in_parallel_worker() -> bool {
    IN_PARALLEL_WORKER.with(std::cell::Cell::get)
}

/// Maps `f` over `seeds` on a worker pool and returns the results **in
/// seed order** — the seed-list form of [`cell_map`], kept for
/// [`run_seeds_in`] and the checkpointing sweeps in `vne-bench`.
///
/// # Panics
///
/// Propagates the original panic of a panicking `f` after the surviving
/// workers finish their cells.
pub fn seed_map<R, F>(seeds: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    cell_map(seeds, |&seed| f(seed))
}

/// Maps `f` over arbitrary sweep cells on a worker pool (one task per
/// cell, up to `available_parallelism` threads) and returns the results
/// **in cell order**. This is the pipelined sweep pool: *all* cells of
/// a sweep feed one pool, so workers pull the next cell the moment they
/// finish one — no idle tail between cell groups — and shared artifacts
/// ([`SweepContext`] plans) become available to later cells as earlier
/// ones derive them.
///
/// Each worker collects into its own buffer; there is no shared result
/// mutex to poison. If a cell panics, the surviving workers finish
/// their cells, and the map then re-raises the **original** panic
/// payload (not a poisoned-mutex secondary panic).
pub fn cell_map<T, R, F>(cells: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cells.len().max(1));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    let worker_results: Vec<std::thread::Result<Vec<(usize, R)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_PARALLEL_WORKER.with(|flag| flag.set(true));
                    let mut local = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if idx >= cells.len() {
                            break;
                        }
                        local.push((idx, f(&cells[idx])));
                    }
                    local
                })
            })
            .collect();
        // Join every worker before leaving the scope: a second panic
        // must not surface while the first is already unwinding (that
        // would abort), and survivors get to finish their cells.
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut collected = Vec::with_capacity(cells.len());
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for result in worker_results {
        match result {
            Ok(local) => collected.extend(local),
            Err(payload) => panic = panic.or(Some(payload)),
        }
    }
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
    collected.sort_by_key(|(idx, _)| *idx);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Algorithm;
    use std::collections::{BTreeMap, HashMap};
    use vne_topology::zoo::citta_studi;

    #[test]
    fn utilization_helpers() {
        let u = Utilization::percent(140);
        assert!((u.fraction() - 1.4).abs() < 1e-12);
        assert_eq!(u.to_string(), "140%");
        assert_eq!(Utilization::paper_sweep().len(), 5);
    }

    #[test]
    fn utilization_is_totally_ordered() {
        let mut sweep = Utilization::paper_sweep();
        sweep.reverse();
        sweep.sort();
        let fractions: Vec<f64> = sweep.iter().map(|u| u.fraction()).collect();
        assert_eq!(fractions, vec![0.6, 0.8, 1.0, 1.2, 1.4]);
        assert!(Utilization::percent(60) < Utilization::percent(140));
        assert_eq!(Utilization::percent(100), Utilization::fraction_of(1.0));
    }

    #[test]
    fn utilization_works_as_map_key() {
        // The satellite motivation: keying a sweep's results per level.
        let mut btree: BTreeMap<Utilization, usize> = BTreeMap::new();
        let mut hash: HashMap<Utilization, usize> = HashMap::new();
        for (i, u) in Utilization::paper_sweep().into_iter().enumerate() {
            btree.insert(u, i);
            hash.insert(u, i);
        }
        assert_eq!(btree.len(), 5);
        assert_eq!(hash.len(), 5);
        // Lookup through an independently-constructed key.
        assert_eq!(btree[&Utilization::fraction_of(1.2)], 3);
        assert_eq!(hash[&Utilization::percent(120)], 3);
        // BTreeMap iterates in utilization order.
        let keys: Vec<f64> = btree.keys().map(|u| u.fraction()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn utilization_zero_is_canonical() {
        assert_eq!(Utilization::fraction_of(0.0), Utilization::percent(0));
        let neg_zero = Utilization::fraction_of(-0.0);
        assert_eq!(neg_zero, Utilization::percent(0));
        assert_eq!(neg_zero.fraction().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn utilization_rejects_nan() {
        let _ = Utilization::fraction_of(f64::NAN);
    }

    #[test]
    fn seed_map_propagates_the_real_panic_message() {
        // The regression: a panicking worker used to poison the shared
        // results mutex, so the surviving workers died on a secondary
        // "runner mutex poisoned" panic that masked the original one.
        // With per-worker buffers the original payload must surface.
        let result = std::panic::catch_unwind(|| {
            seed_map(&[1u64, 2, 3, 4, 5], |seed| {
                if seed == 3 {
                    panic!("seed 3 exploded with code 42");
                }
                seed * 2
            })
        });
        let payload = result.expect_err("the panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string payload>");
        assert!(
            message.contains("seed 3 exploded with code 42"),
            "the original panic was masked: {message:?}"
        );
    }

    #[test]
    fn cell_map_returns_results_in_cell_order() {
        let cells: Vec<u32> = (0..37).collect();
        let doubled = cell_map(&cells, |&c| c * 2);
        assert_eq!(doubled, cells.iter().map(|c| c * 2).collect::<Vec<_>>());
        let empty: Vec<u32> = cell_map(&[] as &[u32], |&c| c);
        assert!(empty.is_empty());
    }

    #[test]
    fn workers_report_parallel_context() {
        assert!(!in_parallel_worker(), "test thread is not a worker");
        let flags = seed_map(&[1u64, 2], |_| in_parallel_worker());
        assert_eq!(flags, vec![true, true]);
    }

    #[test]
    fn parallel_seeds_are_deterministic_and_ordered() {
        let substrate = citta_studi().unwrap();
        let seeds = [1u64, 2, 3];
        let run = || {
            run_seeds(
                &substrate,
                Algorithm::Quickg,
                &seeds,
                default_apps,
                |seed| ScenarioConfig::small(1.2).with_seed(seed),
            )
        };
        let (a, agg_a) = run();
        let (b, _) = run();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rejection_rate, y.rejection_rate);
        }
        assert_eq!(agg_a.seeds, 3);
        assert!(agg_a.rejection_rate.0 >= 0.0);
    }

    #[test]
    fn run_seeds_matches_scenario_runs() {
        let substrate = citta_studi().unwrap();
        let seeds = [4u64, 5];
        let (summaries, _) = run_seeds(
            &substrate,
            Algorithm::Quickg,
            &seeds,
            default_apps,
            |seed| ScenarioConfig::small(1.0).with_seed(seed),
        );
        for (i, &seed) in seeds.iter().enumerate() {
            let scenario = Scenario::new(
                substrate.clone(),
                default_apps(seed),
                ScenarioConfig::small(1.0).with_seed(seed),
            );
            let direct = scenario.run(Algorithm::Quickg).summary;
            assert_eq!(summaries[i].arrivals, direct.arrivals);
            assert_eq!(summaries[i].rejection_rate, direct.rejection_rate);
            assert_eq!(summaries[i].resource_cost, direct.resource_cost);
        }
    }
}
