//! Multi-seed experiment runner with parallel execution.
//!
//! The paper executes every experiment 30 times and reports means with
//! confidence intervals. [`run_seeds`] replays a scenario across seeds on
//! worker threads (std scoped threads) and aggregates the summaries.

use std::sync::Mutex;
use vne_model::app::AppSet;
use vne_model::substrate::SubstrateNetwork;
use vne_workload::appgen::{paper_mix, AppGenConfig};
use vne_workload::rng::SeededRng;

use crate::metrics::{aggregate, AggregatedSummary, Summary};
use crate::scenario::{Algorithm, Scenario, ScenarioConfig};

/// An edge-utilization level (the x-axis of Figs. 6/7/15/16).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Utilization(f64);

impl Utilization {
    /// From a percentage (e.g. `Utilization::percent(140)`).
    pub fn percent(p: u32) -> Self {
        Self(f64::from(p) / 100.0)
    }

    /// As a fraction (1.0 = 100%).
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The paper's sweep: 60% to 140% in 20-point steps.
    pub fn paper_sweep() -> Vec<Utilization> {
        [60, 80, 100, 120, 140]
            .into_iter()
            .map(Utilization::percent)
            .collect()
    }
}

impl std::fmt::Display for Utilization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0}%", self.0 * 100.0)
    }
}

/// Generates the per-seed application set the way the paper does: a
/// fresh draw of the standard mix per execution.
pub fn default_apps(seed: u64) -> AppSet {
    let mut rng = SeededRng::new(seed).derive(0xA995);
    paper_mix(&AppGenConfig::default(), &mut rng)
}

/// Runs `algorithm` across `seeds` in parallel and returns the per-seed
/// summaries (in seed order) plus their aggregate.
///
/// `make_apps` draws the application set for a seed (usually
/// [`default_apps`]); `configure` builds the scenario config for a seed.
pub fn run_seeds<FA, FC>(
    substrate: &SubstrateNetwork,
    algorithm: Algorithm,
    seeds: &[u64],
    make_apps: FA,
    configure: FC,
) -> (Vec<Summary>, AggregatedSummary)
where
    FA: Fn(u64) -> AppSet + Sync,
    FC: Fn(u64) -> ScenarioConfig + Sync,
{
    let results: Mutex<Vec<(usize, Summary)>> = Mutex::new(Vec::with_capacity(seeds.len()));
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(seeds.len().max(1));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= seeds.len() {
                    break;
                }
                let seed = seeds[idx];
                let apps = make_apps(seed);
                let config = configure(seed);
                let scenario = Scenario::new(substrate.clone(), apps, config);
                let outcome = scenario.run(algorithm);
                results
                    .lock()
                    .expect("runner mutex poisoned")
                    .push((idx, outcome.summary));
            });
        }
    });

    let mut collected = results.into_inner().expect("runner mutex poisoned");
    collected.sort_by_key(|(idx, _)| *idx);
    let summaries: Vec<Summary> = collected.into_iter().map(|(_, s)| s).collect();
    let agg = aggregate(&summaries);
    (summaries, agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_topology::zoo::citta_studi;

    #[test]
    fn utilization_helpers() {
        let u = Utilization::percent(140);
        assert!((u.fraction() - 1.4).abs() < 1e-12);
        assert_eq!(u.to_string(), "140%");
        assert_eq!(Utilization::paper_sweep().len(), 5);
    }

    #[test]
    fn parallel_seeds_are_deterministic_and_ordered() {
        let substrate = citta_studi().unwrap();
        let seeds = [1u64, 2, 3];
        let run = || {
            run_seeds(
                &substrate,
                Algorithm::Quickg,
                &seeds,
                default_apps,
                |seed| ScenarioConfig::small(1.2).with_seed(seed),
            )
        };
        let (a, agg_a) = run();
        let (b, _) = run();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rejection_rate, y.rejection_rate);
        }
        assert_eq!(agg_a.seeds, 3);
        assert!(agg_a.rejection_rate.0 >= 0.0);
    }
}
