//! Evaluation metrics (§IV): rejection rate, cost, balance index.
//!
//! All metrics are computed over a *measurement window* of arrival slots
//! — the paper displays requests started between slots 100 and 500 of
//! the 600-slot online phase. Preempted requests count as denied (they
//! incur the rejection cost like rejected ones).
//!
//! The rejection cost is accumulated with a *pinned summation order* so
//! the batch path here and the incremental
//! [`crate::observe::WindowSummary`] are byte-identical even when
//! preemptions occur: rejected-on-arrival costs fold in arrival order,
//! preemption costs fold in `(eviction slot, request id)` order, each
//! through a compensated [`NeumaierSum`], and the two partial sums are
//! combined last.

use std::collections::BTreeMap;

use vne_model::cost::RejectionPenalty;
use vne_model::ids::{AppId, NodeId};
use vne_model::request::Slot;

use crate::engine::{ChurnStats, RequestStatus, RunResult};

/// Kahan–Neumaier compensated summation.
///
/// Both summary paths accumulate the rejection cost through this (in
/// the same pinned order), so streaming and batch summaries agree bit
/// for bit; the compensation also keeps long-horizon cost sums accurate
/// to the last ulp.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// An empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one term into the sum.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            // audit:allow(D3, "the compensated accumulator itself: this IS NeumaierSum")
            self.compensation += (self.sum - t) + x;
        } else {
            // audit:allow(D3, "the compensated accumulator itself: this IS NeumaierSum")
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }

    /// The raw `(sum, compensation)` pair — the complete accumulator
    /// state, exposed for bit-exact checkpointing.
    pub fn parts(&self) -> (f64, f64) {
        (self.sum, self.compensation)
    }

    /// Rebuilds an accumulator from [`NeumaierSum::parts`] (checkpoint
    /// restore; continuing the fold is bit-identical to never having
    /// stopped).
    pub fn from_parts(sum: f64, compensation: f64) -> Self {
        Self { sum, compensation }
    }
}

/// Summary of one run over a measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Requests arriving inside the window.
    pub arrivals: usize,
    /// Requests rejected on arrival.
    pub rejected: usize,
    /// Requests preempted after acceptance.
    pub preempted: usize,
    /// `(rejected + preempted) / arrivals`.
    pub rejection_rate: f64,
    /// Σ over window slots of the per-slot resource cost (Eq. 3).
    pub resource_cost: f64,
    /// Σ over denied requests of `ψ(a)·d·T` (Eq. 4).
    pub rejection_cost: f64,
    /// `resource_cost + rejection_cost`.
    pub total_cost: f64,
    /// Jain-style rejection balance index (Eq. 20).
    pub balance_index: f64,
    /// Online-loop wall-clock seconds (whole run, not only the window).
    pub online_secs: f64,
    /// Substrate-churn tallies over window slots. Always default for
    /// the batch [`summarize`] path: the [`crate::observe::Recorder`]
    /// sees per-request outcomes, not churn events — churn scenarios
    /// pair the engine with [`crate::observe::WindowSummary`].
    pub churn: ChurnStats,
}

impl Summary {
    /// FNV-1a fingerprint of every *deterministic* field (all counts
    /// and IEEE bit patterns; the wall-clock `online_secs` is excluded).
    /// Two runs of the same scenario — including a checkpointed run
    /// resumed mid-stream — must produce equal fingerprints; the golden
    /// regression suite pins these values per algorithm the way
    /// `plan_identity` pins plans.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(&(self.arrivals as u64).to_le_bytes());
        eat(&(self.rejected as u64).to_le_bytes());
        eat(&(self.preempted as u64).to_le_bytes());
        eat(&self.rejection_rate.to_bits().to_le_bytes());
        eat(&self.resource_cost.to_bits().to_le_bytes());
        eat(&self.rejection_cost.to_bits().to_le_bytes());
        eat(&self.total_cost.to_bits().to_le_bytes());
        eat(&self.balance_index.to_bits().to_le_bytes());
        // Churn tallies join the digest only when churn occurred, so
        // every churn-free fingerprint (the pre-churn golden table)
        // is unchanged.
        if !self.churn.is_empty() {
            eat(&(self.churn.events as u64).to_le_bytes());
            eat(&(self.churn.stranded as u64).to_le_bytes());
            eat(&(self.churn.evicted as u64).to_le_bytes());
            eat(&(self.churn.reembedded as u64).to_le_bytes());
        }
        h
    }
}

/// Computes the window summary of a run.
pub fn summarize(result: &RunResult, penalty: &RejectionPenalty, window: (Slot, Slot)) -> Summary {
    let (from, to) = window;
    let mut arrivals = 0usize;
    let mut rejected = 0usize;
    let mut preempted = 0usize;
    let mut rejected_cost = NeumaierSum::new();
    let mut preemptions: Vec<(Slot, vne_model::ids::RequestId, f64)> = Vec::new();
    for r in &result.requests {
        if r.arrival < from || r.arrival >= to {
            continue;
        }
        arrivals += 1;
        match r.status {
            RequestStatus::Accepted => {}
            RequestStatus::Rejected => {
                rejected += 1;
                rejected_cost.add(penalty.psi(r.class.app) * r.demand * f64::from(r.duration));
            }
            RequestStatus::Preempted(at) => {
                preempted += 1;
                preemptions.push((
                    at,
                    r.id,
                    penalty.psi(r.class.app) * r.demand * f64::from(r.duration),
                ));
            }
        }
    }
    // Pinned order: preemption costs fold by (eviction slot, id) — the
    // order the incremental observer sees them in.
    preemptions.sort_by_key(|&(slot, id, _)| (slot, id));
    let mut preempted_cost = NeumaierSum::new();
    for (_, _, cost) in preemptions {
        preempted_cost.add(cost);
    }
    let rejection_cost = rejected_cost.value() + preempted_cost.value();
    let resource_cost: f64 = result
        .slots
        .iter()
        .enumerate()
        .filter(|(t, _)| (*t as Slot) >= from && (*t as Slot) < to)
        .map(|(_, s)| s.resource_cost)
        .sum();
    let denied = rejected + preempted;
    Summary {
        arrivals,
        rejected,
        preempted,
        rejection_rate: if arrivals == 0 {
            0.0
        } else {
            denied as f64 / arrivals as f64
        },
        resource_cost,
        rejection_cost,
        total_cost: resource_cost + rejection_cost,
        balance_index: balance_index(result, window),
        online_secs: result.online_secs,
        churn: ChurnStats::default(),
    }
}

/// The rejection balance index (Eq. 20): a weighted Jain fairness index
/// of per-application rejections at each ingress node; 1 is perfectly
/// balanced. Nodes without any rejection are excluded (Jain's index is
/// undefined on an all-zero vector, and including them as "perfect"
/// saturates the index at high acceptance); if no node rejects at all
/// the index is 1.
pub fn balance_index(result: &RunResult, window: (Slot, Slot)) -> f64 {
    let (from, to) = window;
    // n(v) and x_{v,a}.
    let mut n_v: BTreeMap<NodeId, f64> = BTreeMap::new();
    let mut x_va: BTreeMap<(NodeId, AppId), f64> = BTreeMap::new();
    let mut apps: std::collections::BTreeSet<AppId> = std::collections::BTreeSet::new();
    for r in &result.requests {
        if r.arrival < from || r.arrival >= to {
            continue;
        }
        apps.insert(r.class.app);
        *n_v.entry(r.class.ingress).or_insert(0.0) += 1.0;
        if r.status.is_denied() {
            *x_va.entry((r.class.ingress, r.class.app)).or_insert(0.0) += 1.0;
        }
    }
    balance_from_counts(&n_v, &x_va, &apps)
}

/// The balance index computed from pre-aggregated counts: `n_v` window
/// arrivals per node, `x_va` denials per `(node, app)`, `apps` the apps
/// seen in the window. This is the shared core of [`balance_index`] and
/// the incremental [`crate::observe::WindowSummary`] observer.
pub fn balance_from_counts(
    n_v: &BTreeMap<NodeId, f64>,
    x_va: &BTreeMap<(NodeId, AppId), f64>,
    apps: &std::collections::BTreeSet<AppId>,
) -> f64 {
    let a_count = apps.len() as f64;
    if a_count == 0.0 || n_v.is_empty() {
        return 1.0;
    }
    let mut weighted = 0.0;
    let mut total_weight = 0.0;
    for (&v, &n) in n_v {
        let sum: f64 = apps
            .iter()
            .map(|&a| x_va.get(&(v, a)).copied().unwrap_or(0.0))
            .sum();
        let sum_sq: f64 = apps
            .iter()
            .map(|&a| x_va.get(&(v, a)).copied().unwrap_or(0.0).powi(2))
            .sum();
        if sum_sq == 0.0 {
            continue; // no rejections at v: Jain undefined, excluded
        }
        let jain = sum * sum / (a_count * sum_sq);
        // audit:allow(D3, "node-ordered short fold over <=|V| terms; compensating would re-pin goldens")
        weighted += n * jain;
        // audit:allow(D3, "node-ordered short fold over <=|V| terms; compensating would re-pin goldens")
        total_weight += n;
    }
    if total_weight == 0.0 {
        return 1.0;
    }
    weighted / total_weight
}

/// Mean ± 95% CI aggregation of summaries across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregatedSummary {
    /// Mean and CI half-width of the rejection rate.
    pub rejection_rate: (f64, f64),
    /// Mean and CI half-width of the total cost.
    pub total_cost: (f64, f64),
    /// Mean and CI half-width of the resource cost.
    pub resource_cost: (f64, f64),
    /// Mean and CI half-width of the rejection cost.
    pub rejection_cost: (f64, f64),
    /// Mean and CI half-width of the balance index.
    pub balance_index: (f64, f64),
    /// Mean and CI half-width of the online runtime (seconds).
    pub online_secs: (f64, f64),
    /// Number of seeds aggregated.
    pub seeds: usize,
}

/// Aggregates per-seed summaries with Student-t confidence intervals.
pub fn aggregate(summaries: &[Summary]) -> AggregatedSummary {
    use vne_workload::stats::mean_and_ci;
    let pick = |f: fn(&Summary) -> f64| -> (f64, f64) {
        let values: Vec<f64> = summaries.iter().map(f).collect();
        mean_and_ci(&values)
    };
    AggregatedSummary {
        rejection_rate: pick(|s| s.rejection_rate),
        total_cost: pick(|s| s.total_cost),
        resource_cost: pick(|s| s.resource_cost),
        rejection_cost: pick(|s| s.rejection_cost),
        balance_index: pick(|s| s.balance_index),
        online_secs: pick(|s| s.online_secs),
        seeds: summaries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RequestOutcome, SlotMetrics};
    use vne_model::app::{shapes, AppSet, AppShape};
    use vne_model::ids::{ClassId, RequestId};

    fn outcome(
        id: u64,
        arrival: Slot,
        node: u32,
        app: u32,
        status: RequestStatus,
    ) -> RequestOutcome {
        RequestOutcome {
            id: RequestId(id),
            class: ClassId::new(AppId(app), NodeId(node)),
            arrival,
            duration: 10,
            demand: 2.0,
            status,
        }
    }

    fn penalty() -> RejectionPenalty {
        let mut apps = AppSet::new();
        for name in ["a", "b"] {
            apps.push(
                name,
                AppShape::Chain,
                shapes::uniform_chain(1, 1.0, 1.0).unwrap(),
            )
            .unwrap();
        }
        RejectionPenalty::uniform(&apps, 3.0)
    }

    fn result(requests: Vec<RequestOutcome>, slots: usize) -> RunResult {
        RunResult {
            algorithm: "test".into(),
            requests,
            slots: vec![
                SlotMetrics {
                    requested_demand: 0.0,
                    allocated_demand: 0.0,
                    resource_cost: 5.0,
                };
                slots
            ],
            online_secs: 0.1,
        }
    }

    #[test]
    fn summary_counts_and_costs() {
        let r = result(
            vec![
                outcome(0, 1, 0, 0, RequestStatus::Accepted),
                outcome(1, 2, 0, 0, RequestStatus::Rejected),
                outcome(2, 3, 0, 1, RequestStatus::Preempted(5)),
                outcome(3, 99, 0, 0, RequestStatus::Rejected), // outside window
            ],
            10,
        );
        let s = summarize(&r, &penalty(), (0, 10));
        assert_eq!(s.arrivals, 3);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.preempted, 1);
        assert!((s.rejection_rate - 2.0 / 3.0).abs() < 1e-12);
        // Rejection cost: 2 denied × ψ3 × d2 × T10 = 120.
        assert_eq!(s.rejection_cost, 120.0);
        // Resource cost: 10 slots × 5.
        assert_eq!(s.resource_cost, 50.0);
        assert_eq!(s.total_cost, 170.0);
    }

    #[test]
    fn empty_window() {
        let r = result(vec![], 5);
        let s = summarize(&r, &penalty(), (0, 5));
        assert_eq!(s.arrivals, 0);
        assert_eq!(s.rejection_rate, 0.0);
        assert_eq!(s.balance_index, 1.0);
    }

    #[test]
    fn balance_index_perfect_when_rejections_even() {
        // Node 0: one rejection of each app → Jain = 1.
        let r = result(
            vec![
                outcome(0, 1, 0, 0, RequestStatus::Rejected),
                outcome(1, 1, 0, 1, RequestStatus::Rejected),
            ],
            5,
        );
        assert!((balance_index(&r, (0, 5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balance_index_halves_when_one_sided() {
        // All rejections on one app of two → Jain = 1/2.
        let r = result(
            vec![
                outcome(0, 1, 0, 0, RequestStatus::Rejected),
                outcome(1, 1, 0, 0, RequestStatus::Rejected),
                outcome(2, 1, 0, 1, RequestStatus::Accepted),
            ],
            5,
        );
        assert!((balance_index(&r, (0, 5)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn balance_index_weights_by_node_arrivals() {
        // Node 0 (3 requests): one-sided rejections (Jain 0.5); node 1
        // (1 request, no rejections): excluded. Node 2 (1 request):
        // balanced rejections across both apps (Jain 1.0).
        // Weighted over rejecting nodes: (3·0.5 + 1·1)/4 = 0.625.
        let r = result(
            vec![
                outcome(0, 1, 0, 0, RequestStatus::Rejected),
                outcome(1, 1, 0, 0, RequestStatus::Rejected),
                outcome(2, 1, 0, 1, RequestStatus::Accepted),
                outcome(3, 1, 1, 1, RequestStatus::Accepted),
                outcome(4, 1, 2, 0, RequestStatus::Rejected),
                outcome(5, 1, 2, 1, RequestStatus::Rejected),
            ],
            5,
        );
        // n(0)=3 (Jain 0.5), n(2)=2 (Jain 1.0) → (3·0.5+2·1)/5 = 0.7.
        assert!((balance_index(&r, (0, 5)) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn balance_index_is_one_without_rejections() {
        let r = result(vec![outcome(0, 1, 0, 0, RequestStatus::Accepted)], 5);
        assert_eq!(balance_index(&r, (0, 5)), 1.0);
    }

    #[test]
    fn neumaier_sum_is_compensated() {
        // The classic Kahan failure case: 1 + 1e100 + 1 - 1e100 = 2.
        let mut s = NeumaierSum::new();
        for x in [1.0, 1e100, 1.0, -1e100] {
            s.add(x);
        }
        assert_eq!(s.value(), 2.0);
        // Plain summation gets this wrong.
        let plain: f64 = [1.0, 1e100, 1.0, -1e100].iter().sum();
        assert_eq!(plain, 0.0);
    }

    #[test]
    fn summarize_pins_preemption_order_by_slot_then_id() {
        // Preemptions recorded in arrival order but evicted in a
        // different slot order: summarize must fold them by
        // (eviction slot, id) — the order the streaming observer sees.
        let mk = |id: u64, at: Slot| RequestOutcome {
            demand: 2.0 + id as f64,
            ..outcome(id, 1, 0, 0, RequestStatus::Preempted(at))
        };
        // Arrival order: 0 (evicted late), 1 (evicted early).
        let r1 = result(vec![mk(0, 9), mk(1, 3)], 10);
        // Same multiset, arrival order flipped.
        let r2 = result(vec![mk(1, 3), mk(0, 9)], 10);
        let p = penalty();
        let s1 = summarize(&r1, &p, (0, 10));
        let s2 = summarize(&r2, &p, (0, 10));
        assert_eq!(s1.rejection_cost.to_bits(), s2.rejection_cost.to_bits());
        assert_eq!(s1.preempted, 2);
    }

    #[test]
    fn fingerprint_ignores_wall_clock_only() {
        let r = result(vec![outcome(0, 1, 0, 0, RequestStatus::Rejected)], 5);
        let p = penalty();
        let a = summarize(&r, &p, (0, 5));
        let mut b = a;
        b.online_secs = a.online_secs + 123.0;
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a;
        c.rejected += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn neumaier_parts_roundtrip_mid_fold() {
        let terms = [1.0, 1e100, 1.0, -1e100, 3.5];
        let mut original = NeumaierSum::new();
        for &x in &terms[..3] {
            original.add(x);
        }
        let (sum, comp) = original.parts();
        let mut resumed = NeumaierSum::from_parts(sum, comp);
        for &x in &terms[3..] {
            original.add(x);
            resumed.add(x);
        }
        assert_eq!(original.value().to_bits(), resumed.value().to_bits());
        assert_eq!(original.parts(), resumed.parts());
    }

    #[test]
    fn aggregation_produces_cis() {
        let r1 = result(vec![outcome(0, 1, 0, 0, RequestStatus::Rejected)], 5);
        let r2 = result(vec![outcome(0, 1, 0, 0, RequestStatus::Accepted)], 5);
        let p = penalty();
        let summaries = vec![summarize(&r1, &p, (0, 5)), summarize(&r2, &p, (0, 5))];
        let agg = aggregate(&summaries);
        assert_eq!(agg.seeds, 2);
        assert!((agg.rejection_rate.0 - 0.5).abs() < 1e-12);
        assert!(agg.rejection_rate.1 > 0.0);
    }
}
