//! End-to-end experiment scenarios: trace → history → plan → online run.
//!
//! A [`Scenario`] reproduces the paper's pipeline for one seed: generate
//! a request history, aggregate it, solve PLAN-VNE, then stream the
//! online phase through the chosen algorithm and summarize the
//! measurement window. Algorithms are resolved by name through the
//! scenario's [`AlgorithmRegistry`] — the paper's four are built in,
//! and [`ScenarioBuilder::algorithm`] registers new ones without
//! touching this crate. The online trace is *streamed* (one slot at a
//! time), so a run's memory is bounded by the active requests, not the
//! horizon. Variations used by the evaluation — plan built for a
//! different utilization (Fig. 13), spatially shifted plan input
//! (Fig. 14), CAIDA-like demand (Fig. 15), GPU scenario (Fig. 10) —
//! are configuration switches here.

use std::fmt;
use std::str::FromStr;

use vne_model::app::AppSet;
use vne_model::cost::RejectionPenalty;
use vne_model::ids::RequestId;
use vne_model::policy::PlacementPolicy;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::state::StateError;
use vne_model::substrate::SubstrateNetwork;
use vne_olive::aggregate::{AggregateDemand, AggregationConfig};
use vne_olive::algorithm::OnlineAlgorithm;
use vne_olive::colgen::{solve_plan, PlanVneConfig};
use vne_olive::olive::{Olive, OliveConfig};
use vne_olive::plan::Plan;
use vne_workload::adversary::{
    self, AdversaryProfile, ChurnProfile, ChurnSchedule, LifetimeCliffConfig, Modulation,
    PlanAdversarialConfig, RevenueBurstConfig,
};
use vne_workload::caida::{self, CaidaConfig};
use vne_workload::estimator::{DemandEstimator, EstimatorKind, ExactEstimator};
use vne_workload::rng::SeededRng;
use vne_workload::tracegen::{self, TraceConfig};

use crate::engine::{
    pipeline_enabled, run_stream_from_pipelined_with, run_stream_from_with,
    run_stream_pipelined_with, run_stream_with, EngineCheckpoint, PipelineConfig, PipelineSafe,
    ReembedKind, RunResult, SimObserver,
};
use crate::metrics::{summarize, Summary};
use crate::observe::{
    Checkpointer, Inspect, NullObserver, Recorder, StopAfter, Tee, WindowSummary,
};
use crate::registry::{AlgorithmRegistry, AlgorithmSpec, BuildContext, UnknownAlgorithm};

/// The algorithms of the paper's evaluation — convenience handles whose
/// names resolve against [`AlgorithmRegistry::builtins`].
///
/// The simulator itself is open: any name registered in a scenario's
/// registry runs the same way. `Display` writes the canonical label
/// (`"OLIVE"`), [`FromStr`] parses it case-insensitively — the single
/// source of truth for CLI parsing and result labeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's contribution: plan-based online embedding.
    Olive,
    /// Greedy collocated baseline (OLIVE with an empty plan).
    Quickg,
    /// Exact per-request baseline.
    Fullg,
    /// Per-slot offline re-optimization.
    SlotOff,
}

impl Algorithm {
    /// All four paper algorithms, in the paper's order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Olive,
        Algorithm::Quickg,
        Algorithm::Fullg,
        Algorithm::SlotOff,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Olive => "OLIVE",
            Algorithm::Quickg => "QUICKG",
            Algorithm::Fullg => "FULLG",
            Algorithm::SlotOff => "SLOTOFF",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The error returned when a string names none of the paper algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgorithmError(String);

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown algorithm {:?}; expected one of OLIVE, QUICKG, FULLG, SLOTOFF",
            self.0
        )
    }
}

impl std::error::Error for ParseAlgorithmError {}

impl FromStr for Algorithm {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        Self::ALL
            .into_iter()
            .find(|a| a.label().eq_ignore_ascii_case(trimmed))
            .ok_or_else(|| ParseAlgorithmError(s.to_string()))
    }
}

/// Scenario parameters (defaults mirror Table III at reduced scale; use
/// [`ScenarioConfig::paper`] for the full-scale settings).
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// History (planning) window length in slots.
    pub history_slots: Slot,
    /// Online (test) phase length in slots.
    pub test_slots: Slot,
    /// Measurement window within the online phase.
    pub measure_window: (Slot, Slot),
    /// Edge utilization of the online demand (1.0 = 100%).
    pub utilization: f64,
    /// Utilization the *plan* is built for (Fig. 13); defaults to
    /// `utilization`.
    pub plan_utilization: Option<f64>,
    /// Remap history ingress nodes randomly before planning (Fig. 14).
    pub shift_plan_ingress: bool,
    /// Rejection quantile count `P` (Fig. 11).
    pub quantiles: usize,
    /// OLIVE mechanism switches (ablations).
    pub olive: OliveConfig,
    /// History aggregation (percentile α, bootstrap replicates).
    pub aggregation: AggregationConfig,
    /// The demand estimator folding the history stream into per-class
    /// expected demands: exact (dense + bootstrap, the default),
    /// `O(classes)` P² sketches, or a custom estimator.
    pub estimator: EstimatorKind,
    /// Base synthetic trace parameters.
    pub trace: TraceConfig,
    /// Use the CAIDA-like trace instead of the synthetic one (Fig. 15).
    pub caida: Option<CaidaConfig>,
    /// Adversarial online-workload profile (scenario suite). `None`
    /// keeps the benign Table III trace; burst/cliff/plan-adversarial
    /// profiles *replace* the online generator, flash-crowd/diurnal
    /// profiles *modulate* it. The history (planning) phase is never
    /// affected — the adversary attacks the plan, not its derivation.
    pub adversary: Option<AdversaryProfile>,
    /// Substrate-churn schedule injected into the online phase (link
    /// outages, node maintenance, capacity drains). `None` keeps the
    /// substrate static.
    pub churn: Option<ChurnProfile>,
    /// What the engine does with requests stranded by churn: re-offer
    /// them to the algorithm (default) or evict them outright.
    pub reembed: ReembedKind,
    /// Master seed of this scenario instance.
    pub seed: u64,
}

impl ScenarioConfig {
    /// Fast, reduced-scale defaults for tests and quick runs.
    pub fn small(utilization: f64) -> Self {
        Self {
            history_slots: 300,
            test_slots: 120,
            measure_window: (20, 100),
            utilization,
            plan_utilization: None,
            shift_plan_ingress: false,
            quantiles: 10,
            olive: OliveConfig::default(),
            aggregation: AggregationConfig {
                alpha: 80.0,
                bootstrap_replicates: 30,
            },
            estimator: EstimatorKind::Exact,
            trace: TraceConfig {
                slots: 0, // set per phase
                ..TraceConfig::default()
            },
            caida: None,
            adversary: None,
            churn: None,
            reembed: ReembedKind::default(),
            seed: 1,
        }
    }

    /// The paper's full-scale settings (Table III): 5400 planning slots,
    /// 600 online slots, measurement window 100–500.
    pub fn paper(utilization: f64) -> Self {
        Self {
            history_slots: 5400,
            test_slots: 600,
            measure_window: (100, 500),
            aggregation: AggregationConfig::default(),
            ..Self::small(utilization)
        }
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything produced by one scenario run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Window summary.
    pub summary: Summary,
    /// Full per-request / per-slot result.
    pub result: RunResult,
    /// The plan used (plan-based algorithms only).
    pub plan: Option<Plan>,
    /// Seconds spent building the plan (aggregation + PLAN-VNE).
    pub plan_secs: f64,
}

/// One phase's trace source (synthetic or CAIDA-like), calibrated for a
/// target utilization.
enum PhaseTrace {
    Synthetic(TraceConfig),
    Caida(CaidaConfig),
}

/// A fully wired experiment for one substrate, application set and seed.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The physical substrate.
    pub substrate: SubstrateNetwork,
    /// The application catalogue.
    pub apps: AppSet,
    /// Placement policy (η).
    pub policy: PlacementPolicy,
    /// Scenario parameters.
    pub config: ScenarioConfig,
    /// Algorithms runnable by name (builtins unless overridden).
    registry: AlgorithmRegistry,
    /// Shared per-sweep artifact cache (memoized offline plans); `None`
    /// outside sweeps.
    sweep: Option<std::sync::Arc<crate::runner::SweepContext>>,
}

impl Scenario {
    /// Creates a scenario with the default placement policy and the
    /// built-in algorithm registry.
    pub fn new(substrate: SubstrateNetwork, apps: AppSet, config: ScenarioConfig) -> Self {
        Self {
            substrate,
            apps,
            policy: PlacementPolicy::default(),
            config,
            registry: AlgorithmRegistry::builtins(),
            sweep: None,
        }
    }

    /// Starts a [`ScenarioBuilder`] (custom policy, registry,
    /// third-party algorithms).
    pub fn builder(substrate: SubstrateNetwork) -> ScenarioBuilder {
        ScenarioBuilder::new(substrate)
    }

    /// Replaces the algorithm registry (builder style).
    pub fn with_registry(mut self, registry: AlgorithmRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Attaches a shared [`crate::runner::SweepContext`] (builder
    /// style): [`Scenario::build_plan`] then memoizes the offline plan
    /// under the scenario's plan-input key, so sweeps running the same
    /// `(seed, plan inputs)` cell more than once (ablation variants,
    /// multiple plan-based algorithms) derive it exactly once. Cached
    /// plans are the identical `Plan` values a fresh derivation
    /// produces, so summaries stay byte-identical.
    pub fn with_sweep_context(
        mut self,
        sweep: std::sync::Arc<crate::runner::SweepContext>,
    ) -> Self {
        self.sweep = Some(sweep);
        self
    }

    /// The algorithm registry of this scenario.
    pub fn registry(&self) -> &AlgorithmRegistry {
        &self.registry
    }

    /// Registers an algorithm factory on this scenario (see
    /// [`AlgorithmRegistry::register`]).
    pub fn register_algorithm(
        &mut self,
        name: &str,
        factory: impl Fn(&BuildContext<'_>) -> crate::registry::BuiltAlgorithm + Send + Sync + 'static,
    ) -> &mut Self {
        self.registry.register(name, factory);
        self
    }

    fn rng(&self, stream: u64) -> SeededRng {
        SeededRng::new(self.config.seed).derive(stream)
    }

    /// The calibrated trace source for one phase: utilization sets the
    /// mean demand, the popularity/population seed is a scenario
    /// property (history and online phases must agree on the hot
    /// nodes), and `slots` is the phase length.
    fn phase_trace(&self, utilization: f64, slots: Slot) -> PhaseTrace {
        match &self.config.caida {
            None => {
                let mut tc =
                    self.config
                        .trace
                        .at_utilization(utilization, &self.substrate, &self.apps);
                tc.slots = slots;
                // Popularity is a property of the scenario: history and
                // online phases must agree on the hot nodes.
                tc.popularity_seed = self.config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(7);
                PhaseTrace::Synthetic(tc)
            }
            Some(caida_config) => {
                // Calibrate the CAIDA trace's mean demand the same way:
                // u · cap_edge = rate_per_edge · E[T] · E[d] · E[Σβ].
                let edge_nodes = self.substrate.edge_nodes().len() as f64;
                let rate_per_edge = caida_config.total_rate / edge_nodes;
                let cap_per_edge = self.substrate.total_edge_capacity() / edge_nodes;
                let mean_fp = self.apps.mean_total_node_size();
                let mut cc = caida_config.clone();
                cc.slots = slots;
                cc.demand_mean =
                    utilization * cap_per_edge / (rate_per_edge * cc.duration_mean * mean_fp);
                cc.population_seed = self.config.seed.wrapping_mul(0x517c_c1b7).wrapping_add(3);
                PhaseTrace::Caida(cc)
            }
        }
    }

    fn trace_at(&self, utilization: f64, slots: Slot, rng: &mut SeededRng) -> Vec<Request> {
        match self.phase_trace(utilization, slots) {
            PhaseTrace::Synthetic(tc) => tracegen::generate(&self.substrate, &self.apps, &tc, rng),
            PhaseTrace::Caida(cc) => caida::generate(&self.substrate, &self.apps, &cc, rng),
        }
    }

    /// The online phase as a lazy slot-event stream — what
    /// [`Scenario::run`] feeds the engine. Yields exactly
    /// `config.test_slots` events; memory is `O(edge nodes)` /
    /// `O(sources)`, independent of the horizon. The stream is `Send`
    /// so the pipelined engine can produce events on a worker thread.
    ///
    /// The configured [`ScenarioConfig::adversary`] profile (if any)
    /// replaces or modulates the benign generator, and the configured
    /// [`ScenarioConfig::churn`] schedule injects its substrate events —
    /// both lazily. Debug builds additionally wrap the stream in a
    /// [`CheckedStream`] validator.
    pub fn online_events(&self) -> Box<dyn Iterator<Item = SlotEvents> + Send + '_> {
        self.online_stream(0)
    }

    /// The online phase from `from_slot` on — the resume path of
    /// checkpointed runs. The underlying lazy stream fast-forwards via
    /// its `skip_to` (replaying the RNG draws of the consumed slots, so
    /// the tail is identical to the tail of [`Scenario::online_events`])
    /// and yields events for slots `from_slot..test_slots` only.
    /// Adversary modulators and churn schedules are stateless per-slot
    /// maps, so they commute with the skip and the suffix stays
    /// byte-identical.
    pub fn online_events_from(
        &self,
        from_slot: Slot,
    ) -> Box<dyn Iterator<Item = SlotEvents> + Send + '_> {
        self.online_stream(from_slot)
    }

    /// The benign (non-adversarial) online trace stream, fast-forwarded
    /// to `from`.
    fn base_online_events(&self, from: Slot) -> Box<dyn Iterator<Item = SlotEvents> + Send + '_> {
        let rng = self.rng(2);
        match self.phase_trace(self.config.utilization, self.config.test_slots) {
            PhaseTrace::Synthetic(tc) => {
                let mut stream = tracegen::stream(&self.substrate, &self.apps, &tc, rng);
                stream.skip_to(from);
                Box::new(stream)
            }
            PhaseTrace::Caida(cc) => {
                let mut stream = caida::stream(&self.substrate, &self.apps, &cc, rng);
                stream.skip_to(from);
                Box::new(stream)
            }
        }
    }

    /// One derived sub-seed per adversary component, mixed from the
    /// scenario seed so adversarial scenarios still vary across seeds.
    fn derived_seed(&self, salt: u64) -> u64 {
        self.config.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt
    }

    /// The single assembly point for every online stream (fresh and
    /// resumed): base trace or adversarial generator, fast-forwarded to
    /// `from`, optionally modulated, optionally churned, and — in debug
    /// builds — validated by [`CheckedStream`].
    fn online_stream(&self, from: Slot) -> Box<dyn Iterator<Item = SlotEvents> + Send + '_> {
        let slots = self.config.test_slots;
        let base: Box<dyn Iterator<Item = SlotEvents> + Send + '_> = match self.config.adversary {
            None => self.base_online_events(from),
            Some(AdversaryProfile::RevenueBurst) => {
                let config = RevenueBurstConfig {
                    slots,
                    seed: self.derived_seed(0xADF5),
                    ..RevenueBurstConfig::default()
                };
                let mut stream = adversary::revenue_burst(&self.substrate, &self.apps, &config);
                stream.skip_to(from);
                Box::new(stream)
            }
            Some(AdversaryProfile::LifetimeCliff) => {
                let config = LifetimeCliffConfig {
                    slots,
                    seed: self.derived_seed(0xC11F),
                    ..LifetimeCliffConfig::default()
                };
                let mut stream = adversary::lifetime_cliff(&self.substrate, &self.apps, &config);
                stream.skip_to(from);
                Box::new(stream)
            }
            Some(AdversaryProfile::PlanAdversarial) => {
                // Rank classes by the scenario's own (deterministic)
                // plan, so every algorithm faces the identical stream.
                let (plan, _) = self.build_plan();
                let shares = plan
                    .iter()
                    .map(|cp| (cp.class, cp.guaranteed_demand()))
                    .collect();
                let config = PlanAdversarialConfig {
                    slots,
                    seed: self.derived_seed(0x91A7),
                    ..PlanAdversarialConfig::default()
                };
                let mut stream =
                    adversary::plan_adversarial(&self.substrate, &self.apps, &shares, &config);
                stream.skip_to(from);
                Box::new(stream)
            }
            Some(AdversaryProfile::FlashCrowd) => Box::new(adversary::modulate(
                self.base_online_events(from),
                Modulation::FlashCrowd {
                    period: 40,
                    len: 8,
                    base_keep: 0.25,
                },
                self.derived_seed(0xF1A5),
            )),
            Some(AdversaryProfile::Diurnal) => Box::new(adversary::modulate(
                self.base_online_events(from),
                Modulation::Diurnal {
                    period: 60,
                    low: 0.2,
                    high: 1.0,
                },
                self.derived_seed(0xD1CE),
            )),
        };
        let stream: Box<dyn Iterator<Item = SlotEvents> + Send + '_> = match self.config.churn {
            Some(profile) => Box::new(adversary::with_churn(
                base,
                ChurnSchedule::new(profile, &self.substrate),
            )),
            None => base,
        };
        if cfg!(debug_assertions) {
            Box::new(CheckedStream::new(stream))
        } else {
            stream
        }
    }

    /// Generates the *benign* online-phase trace eagerly (conformance
    /// checks and offline analysis; the engine streams
    /// [`Scenario::online_events`] instead). Adversary and churn
    /// configuration affect only the streamed events, not this batch
    /// view.
    pub fn online_trace(&self) -> Vec<Request> {
        let mut rng = self.rng(2);
        self.trace_at(self.config.utilization, self.config.test_slots, &mut rng)
    }

    /// Generates the history (planning) trace, honoring the Fig. 13/14
    /// distortions. The Fig. 14 ingress shift draws from its own
    /// derived RNG stream (independent of the trace RNG), which is what
    /// lets [`Scenario::history_events`] apply it lazily.
    pub fn history_trace(&self) -> Vec<Request> {
        let mut rng = self.rng(1);
        let u = self
            .config
            .plan_utilization
            .unwrap_or(self.config.utilization);
        let mut history = self.trace_at(u, self.config.history_slots, &mut rng);
        if self.config.shift_plan_ingress {
            let mut shift_rng = self.rng(5);
            history = tracegen::shift_ingress(&history, &self.substrate, &mut shift_rng);
        }
        history
    }

    /// The history (planning) phase as a lazy slot-event stream — what
    /// [`Scenario::build_plan`] folds through the demand estimator.
    /// Yields exactly `config.history_slots` events with memory
    /// `O(edge nodes)` / `O(sources)`, independent of the horizon, and
    /// flattens to exactly [`Scenario::history_trace`].
    ///
    /// That includes the Fig. 14 `shift_plan_ingress` distortion: the
    /// shift draws from a dedicated derived RNG stream in request
    /// order, so the lazy [`tracegen::shift_stream`] wrapper reproduces
    /// the batch shift bit for bit without collecting the history.
    pub fn history_events(&self) -> Box<dyn Iterator<Item = SlotEvents> + Send + '_> {
        let u = self
            .config
            .plan_utilization
            .unwrap_or(self.config.utilization);
        let rng = self.rng(1);
        let base: Box<dyn Iterator<Item = SlotEvents> + Send + '_> = match self
            .phase_trace(u, self.config.history_slots)
        {
            PhaseTrace::Synthetic(tc) => {
                Box::new(tracegen::stream(&self.substrate, &self.apps, &tc, rng))
            }
            PhaseTrace::Caida(cc) => Box::new(caida::stream(&self.substrate, &self.apps, &cc, rng)),
        };
        if self.config.shift_plan_ingress {
            Box::new(tracegen::shift_stream(base, &self.substrate, self.rng(5)))
        } else {
            base
        }
    }

    /// The rejection penalty used for both planning and cost accounting
    /// (the paper's conservative ψ).
    pub fn penalty(&self) -> RejectionPenalty {
        RejectionPenalty::conservative(&self.apps, &self.substrate)
    }

    /// The paper's demand-conformance check (§III-A): the fraction of
    /// classes whose online `P_α` demand falls inside the 95% bootstrap
    /// confidence interval of the history estimate. Close to 1 when the
    /// online demand is "drawn from the same distribution" as the
    /// history; low under the Fig. 13/14 distortions.
    pub fn demand_conformance(&self) -> f64 {
        let mut history = ExactEstimator::new(self.config.history_slots, self.config.aggregation);
        history.observe_all(self.history_events());
        let mut online = ExactEstimator::new(self.config.test_slots, self.config.aggregation);
        online.observe_all(self.online_events());
        let mut rng = self.rng(4);
        history.conformance(online.series(), &mut rng)
    }

    /// The PLAN-VNE solver configuration of this scenario (ψ from the
    /// conservative penalty, quantile count from the config).
    pub fn plan_config(&self) -> PlanVneConfig {
        PlanVneConfig::new(self.penalty().max_psi()).with_quantiles(self.config.quantiles)
    }

    /// Builds the OLIVE plan by *streaming* the history through the
    /// configured [`EstimatorKind`] — the trace is folded one slot at a
    /// time and never materialized (planning memory is the estimator's:
    /// `O(classes × slots)` exact, `O(classes)` sketch). Returns the
    /// plan and the wall-clock seconds it took (fold + PLAN-VNE solve).
    ///
    /// When a [`crate::runner::SweepContext`] is attached
    /// ([`Scenario::with_sweep_context`]) the derivation is memoized
    /// under [`Scenario::plan_cache_key`]: cells sharing identical plan
    /// inputs (e.g. OLIVE ablation variants on one seed) reuse the
    /// first derivation — same `Plan` value, original build time.
    pub fn build_plan(&self) -> (Plan, f64) {
        match (&self.sweep, self.plan_cache_key()) {
            (Some(sweep), Some(key)) => sweep.plan_for(key, || self.build_plan_uncached()),
            _ => self.build_plan_uncached(),
        }
    }

    fn build_plan_uncached(&self) -> (Plan, f64) {
        // audit:allow(D2, "plan-build cost probe reported in Outcome; never feeds embeddings")
        let started = std::time::Instant::now();
        let mut estimator = self
            .config
            .estimator
            .build(self.config.history_slots, &self.config.aggregation);
        let mut rng = self.rng(3);
        let aggregate =
            AggregateDemand::from_stream(self.history_events(), estimator.as_mut(), &mut rng);
        let (plan, _) = solve_plan(
            &self.substrate,
            &self.apps,
            &self.policy,
            &aggregate,
            &self.plan_config(),
        );
        (plan, started.elapsed().as_secs_f64())
    }

    /// A fingerprint of every input the offline plan depends on: the
    /// **full** substrate (nodes, capacities, links — two substrates
    /// sharing a name but differing in capacity must not share plans),
    /// application catalogue shape, placement policy, seed and the
    /// planning-relevant configuration (history horizon, plan
    /// utilization, Fig. 13/14 distortions, aggregation, estimator
    /// kind, quantiles, trace/CAIDA parameters). Deliberately
    /// *excludes* [`OliveConfig`] and the online phase — two scenarios
    /// with equal keys derive bit-identical plans. Returns `None` for
    /// [`EstimatorKind::Custom`] (an opaque factory cannot be
    /// fingerprinted), which disables memoization for that scenario.
    pub fn plan_cache_key(&self) -> Option<u64> {
        let estimator_tag = match self.config.estimator {
            EstimatorKind::Exact => "exact",
            EstimatorKind::Sketch => "sketch",
            EstimatorKind::Custom(_) => return None,
        };
        // Debug formatting is deterministic within a process and covers
        // every field, including future additions to the structs.
        let inputs = format!(
            "{:?};{:?};{:?};{};{};{:?};{:?};{};{:?};{:?};{:?};{}",
            self.substrate,
            self.apps,
            self.policy,
            self.config.seed,
            self.config.history_slots,
            self.config.plan_utilization,
            self.config.utilization,
            self.config.shift_plan_ingress,
            self.config.quantiles,
            self.config.aggregation,
            self.config.trace,
            estimator_tag,
        );
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in inputs
            .bytes()
            .chain(format!("{:?}", self.config.caida).bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Some(h)
    }

    /// Runs one algorithm through the online phase.
    ///
    /// # Panics
    ///
    /// Panics when the name does not resolve in this scenario's
    /// registry; use [`Scenario::try_run`] to handle that gracefully.
    pub fn run(&self, algorithm: impl Into<AlgorithmSpec>) -> Outcome {
        self.try_run(algorithm).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs one algorithm through the online phase, resolving the name
    /// in this scenario's registry.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownAlgorithm`] when the name is not registered.
    pub fn try_run(
        &self,
        algorithm: impl Into<AlgorithmSpec>,
    ) -> Result<Outcome, UnknownAlgorithm> {
        self.try_run_observed(algorithm, &mut NullObserver)
    }

    /// Like [`Scenario::run`], with an extra [`SimObserver`] attached to
    /// the engine (per-slot metrics, drill-down inspection, early stop).
    pub fn run_observed<O: SimObserver + ?Sized>(
        &self,
        algorithm: impl Into<AlgorithmSpec>,
        observer: &mut O,
    ) -> Outcome {
        self.try_run_observed(algorithm, observer)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The fallible core of [`Scenario::run_observed`]: resolve the
    /// algorithm, stream the online phase through the engine with a
    /// [`Recorder`] plus the caller's observer, summarize the window.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownAlgorithm`] when the name is not registered.
    pub fn try_run_observed<O: SimObserver + ?Sized>(
        &self,
        algorithm: impl Into<AlgorithmSpec>,
        observer: &mut O,
    ) -> Result<Outcome, UnknownAlgorithm> {
        let spec = algorithm.into();
        let mut built = self.registry.build(&spec, &BuildContext::new(self))?;
        let mut recorder = Recorder::new();
        let mut policy = self.config.reembed.policy();
        let stats = {
            let mut tee = Tee(&mut recorder, observer);
            run_stream_with(
                built.algorithm.as_mut(),
                &self.substrate,
                self.online_events(),
                &mut tee,
                policy.as_mut(),
            )
        };
        let result = recorder.finish(built.algorithm.name(), &stats);
        let summary = summarize(&result, &self.penalty(), self.config.measure_window);
        Ok(Outcome {
            summary,
            result,
            plan: built.plan,
            plan_secs: built.plan_secs,
        })
    }

    /// Whether this run should go through the pipelined engine: the
    /// process-wide toggle ([`pipeline_enabled`]), unless the run is
    /// already inside a [`crate::runner`] worker thread — a saturated
    /// seed pool gains nothing from two more threads per run.
    fn use_pipeline(&self) -> bool {
        pipeline_enabled() && !crate::runner::in_parallel_worker()
    }

    /// Dispatches one engine run to the serial or pipelined loop (both
    /// byte-identical; see the `pipeline_parity` suite), with the
    /// configured [`ScenarioConfig::reembed`] policy deciding the fate
    /// of churn-stranded requests.
    fn dispatch_stream<O>(
        &self,
        algorithm: &mut dyn OnlineAlgorithm,
        events: Box<dyn Iterator<Item = SlotEvents> + Send + '_>,
        observer: &mut O,
        capture_every: Option<Slot>,
    ) -> crate::engine::StreamStats
    where
        O: PipelineSafe + ?Sized,
    {
        let mut policy = self.config.reembed.policy();
        if self.use_pipeline() {
            let config = PipelineConfig {
                capture_every,
                ..PipelineConfig::default()
            };
            run_stream_pipelined_with(
                algorithm,
                &self.substrate,
                events,
                observer,
                &config,
                policy.as_mut(),
            )
        } else {
            run_stream_with(
                algorithm,
                &self.substrate,
                events,
                observer,
                policy.as_mut(),
            )
        }
    }

    /// Runs one algorithm and returns only the window [`Summary`],
    /// computed incrementally by [`WindowSummary`] — `O(classes)`
    /// memory instead of a full outcome log, the pairing for multi-seed
    /// sweeps and long horizons. Uses the pipelined engine when enabled
    /// (see [`pipeline_enabled`]); results are byte-identical either
    /// way.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownAlgorithm`] when the name is not registered.
    pub fn run_summary(
        &self,
        algorithm: impl Into<AlgorithmSpec>,
    ) -> Result<Summary, UnknownAlgorithm> {
        let spec = algorithm.into();
        let mut built = self.registry.build(&spec, &BuildContext::new(self))?;
        let mut window = WindowSummary::new(self.config.measure_window, self.penalty());
        let stats = self.dispatch_stream(
            built.algorithm.as_mut(),
            self.online_events(),
            &mut window,
            None,
        );
        Ok(window.finish(&stats))
    }

    /// Like [`Scenario::run_summary`], with a checkpoint serialized
    /// every `every` slots: the run survives interruption — feed the
    /// latest checkpoint back through [`Scenario::resume_summary`] to
    /// finish it byte-identically. `sink` receives every captured
    /// checkpoint (pass `None` to only keep the latest in memory).
    ///
    /// # Errors
    ///
    /// Returns [`ResumeError::UnknownAlgorithm`] when the name is not
    /// registered, and [`ResumeError::State`] when a checkpoint capture
    /// failed (e.g. a third-party algorithm without snapshot support —
    /// the run completes, but it was never interruptible, which must
    /// not pass silently).
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn run_summary_checkpointed(
        &self,
        algorithm: impl Into<AlgorithmSpec>,
        every: Slot,
        sink: Option<CheckpointSink>,
    ) -> Result<(Summary, Option<EngineCheckpoint>), ResumeError> {
        let spec = algorithm.into();
        let mut built = self.registry.build(&spec, &BuildContext::new(self))?;
        // Probe snapshot support up front: a run that can never be
        // checkpointed must fail in milliseconds, not after the whole
        // simulation.
        ensure_snapshot_capable(built.algorithm.as_ref())?;
        let mut window = WindowSummary::new(self.config.measure_window, self.penalty());
        let mut checkpointer = Checkpointer::every(every, &mut window);
        if let Some(sink) = sink {
            checkpointer = checkpointer.with_sink(sink);
        }
        let stats = self.dispatch_stream(
            built.algorithm.as_mut(),
            self.online_events(),
            &mut checkpointer,
            Some(every),
        );
        if let Some(error) = checkpointer.last_error() {
            return Err(ResumeError::State(error.clone()));
        }
        let latest = checkpointer.into_latest();
        Ok((window.finish(&stats), latest))
    }

    /// Runs `algorithm` up to and *including* slot `at`, checkpoints
    /// there, and returns a [`Fork`] handle: resume it to finish the
    /// run ([`Fork::resume`], byte-identical to the uninterrupted
    /// [`Scenario::run_summary`]), resume it repeatedly for warm-started
    /// what-if branches, or extract the raw [`EngineCheckpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`ResumeError`] when the name is not registered, `at` is
    /// outside the online phase, or the algorithm does not support
    /// snapshots.
    pub fn fork_at(
        &self,
        algorithm: impl Into<AlgorithmSpec>,
        at: Slot,
    ) -> Result<Fork<'_>, ResumeError> {
        if at >= self.config.test_slots {
            return Err(ResumeError::State(StateError::Corrupt(format!(
                "fork slot {at} outside the {}-slot online phase",
                self.config.test_slots
            ))));
        }
        let spec = algorithm.into();
        let mut built = self.registry.build(&spec, &BuildContext::new(self))?;
        ensure_snapshot_capable(built.algorithm.as_ref())?;
        let mut window = WindowSummary::new(self.config.measure_window, self.penalty());
        // One checkpoint exactly at `at`, with the stop firing on the
        // same slot — the engine's commit hook runs even on the stop
        // slot, so the checkpoint is captured (the StopAfter off-by-one
        // regression lives in the checkpoint test battery).
        let mut checkpointer = Checkpointer::every(at + 1, &mut window);
        let mut stop = StopAfter::new(at + 1);
        {
            let mut observer = Tee(&mut checkpointer, &mut stop);
            self.dispatch_stream(
                built.algorithm.as_mut(),
                self.online_events(),
                &mut observer,
                Some(at + 1),
            );
        }
        if let Some(error) = checkpointer.last_error() {
            return Err(ResumeError::State(error.clone()));
        }
        let checkpoint = checkpointer.into_latest().ok_or_else(|| {
            ResumeError::State(StateError::Corrupt(format!(
                "no checkpoint captured at slot {at}"
            )))
        })?;
        Ok(Fork {
            scenario: self,
            checkpoint,
        })
    }

    /// Finishes a checkpointed summary run: rebuilds the algorithm the
    /// checkpoint names (same registry, same deterministic plan),
    /// restores algorithm + engine + window state, and streams the
    /// remaining online slots. The result is byte-identical (up to the
    /// wall-clock `online_secs`) to the uninterrupted
    /// [`Scenario::run_summary`] — use [`Summary::fingerprint`] to
    /// compare.
    ///
    /// # Errors
    ///
    /// Returns [`ResumeError`] when the checkpoint's algorithm is not
    /// registered here or any state blob fails to restore.
    pub fn resume_summary(&self, checkpoint: &EngineCheckpoint) -> Result<Summary, ResumeError> {
        let spec = AlgorithmSpec::new(&checkpoint.algorithm);
        let mut built = self.registry.build(&spec, &BuildContext::new(self))?;
        let mut window = WindowSummary::new(self.config.measure_window, self.penalty());
        let events = self.online_events_from(checkpoint.slot + 1);
        let mut policy = self.config.reembed.policy();
        let stats = if self.use_pipeline() {
            run_stream_from_pipelined_with(
                checkpoint,
                built.algorithm.as_mut(),
                &self.substrate,
                events,
                &mut window,
                &PipelineConfig::default(),
                policy.as_mut(),
            )?
        } else {
            run_stream_from_with(
                checkpoint,
                built.algorithm.as_mut(),
                &self.substrate,
                events,
                &mut window,
                policy.as_mut(),
            )?
        };
        Ok(window.finish(&stats))
    }

    /// Like [`Scenario::run`], but the inspector is called after every
    /// slot with the concrete OLIVE state when the running algorithm is
    /// OLIVE-based (Fig. 12 drill-down); for other algorithms the
    /// inspector is not called.
    pub fn run_with_inspector<F>(
        &self,
        algorithm: impl Into<AlgorithmSpec>,
        mut inspect: F,
    ) -> Outcome
    where
        F: FnMut(Slot, &Olive),
    {
        let mut observer = Inspect(
            |t: Slot, _m: &crate::engine::SlotMetrics, alg: &dyn OnlineAlgorithm| {
                if let Some(olive) = alg.as_any().and_then(|a| a.downcast_ref::<Olive>()) {
                    inspect(t, olive);
                }
            },
        );
        self.run_observed(algorithm, &mut observer)
    }
}

/// A callback receiving every checkpoint a
/// [`Scenario::run_summary_checkpointed`] run captures (e.g. persist it
/// to disk).
pub type CheckpointSink = Box<dyn FnMut(&EngineCheckpoint) + Send>;

/// Errors early when `algorithm` does not implement state snapshots
/// (probing is cheap: serializing the just-constructed state).
fn ensure_snapshot_capable(algorithm: &dyn OnlineAlgorithm) -> Result<(), ResumeError> {
    if algorithm.snapshot_state().is_none() {
        return Err(ResumeError::State(StateError::Unsupported(format!(
            "algorithm {}",
            algorithm.name()
        ))));
    }
    Ok(())
}

/// Why a checkpointed run could not be created or resumed.
#[derive(Debug, Clone)]
pub enum ResumeError {
    /// The algorithm name does not resolve in the scenario's registry.
    UnknownAlgorithm(UnknownAlgorithm),
    /// A state blob failed to capture or restore.
    State(StateError),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::UnknownAlgorithm(e) => e.fmt(f),
            ResumeError::State(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<UnknownAlgorithm> for ResumeError {
    fn from(e: UnknownAlgorithm) -> Self {
        Self::UnknownAlgorithm(e)
    }
}

impl From<StateError> for ResumeError {
    fn from(e: StateError) -> Self {
        Self::State(e)
    }
}

/// A run frozen mid-stream by [`Scenario::fork_at`]: the paper pipeline
/// up to slot `k`, warm state included. [`Fork::resume`] finishes the
/// run — repeatedly, if desired: every resume starts from the same
/// checkpoint, which is what makes mid-stream what-if branches (swap
/// observers, compare tails) cheap.
#[derive(Debug, Clone)]
pub struct Fork<'a> {
    scenario: &'a Scenario,
    checkpoint: EngineCheckpoint,
}

impl Fork<'_> {
    /// The last slot the fork has completed.
    pub fn slot(&self) -> Slot {
        self.checkpoint.slot
    }

    /// The frozen state.
    pub fn checkpoint(&self) -> &EngineCheckpoint {
        &self.checkpoint
    }

    /// Consumes the fork into its checkpoint (e.g. to serialize it with
    /// [`EngineCheckpoint::to_bytes`]).
    pub fn into_checkpoint(self) -> EngineCheckpoint {
        self.checkpoint
    }

    /// Finishes the run from the fork point; byte-identical to the
    /// uninterrupted run (see [`Scenario::resume_summary`]).
    ///
    /// # Errors
    ///
    /// Returns [`ResumeError`] when restore fails.
    pub fn resume(&self) -> Result<Summary, ResumeError> {
        self.scenario.resume_summary(&self.checkpoint)
    }
}

/// Debug-mode slot-stream validator: asserts the contract every
/// scenario stream must satisfy — slots contiguous relative to the
/// first yielded slot (so resumed suffixes pass), each arrival stamped
/// with its slot, and strictly ascending request ids across the whole
/// stream. Panics with a message naming the offending slot and ids on
/// the first violation.
///
/// [`Scenario::online_events`] wraps every online stream with this in
/// debug builds; release builds skip the wrapper. (Sparse streams —
/// slot gaps — are legal at the *engine* level, which is why this is a
/// scenario-layer adapter and not an engine assertion: the scenario
/// generators promise density, the engine does not require it.)
#[derive(Debug, Clone)]
pub struct CheckedStream<I> {
    inner: I,
    expected_slot: Option<Slot>,
    last_id: Option<RequestId>,
}

impl<I: Iterator<Item = SlotEvents>> CheckedStream<I> {
    /// Wraps a slot-event stream with the validator.
    pub fn new(inner: I) -> Self {
        Self {
            inner,
            expected_slot: None,
            last_id: None,
        }
    }
}

impl<I: Iterator<Item = SlotEvents>> Iterator for CheckedStream<I> {
    type Item = SlotEvents;

    fn next(&mut self) -> Option<SlotEvents> {
        let event = self.inner.next()?;
        if let Some(expected) = self.expected_slot {
            assert_eq!(
                event.slot, expected,
                "malformed slot stream: expected contiguous slot {expected}, got slot {}",
                event.slot
            );
        }
        self.expected_slot = Some(event.slot + 1);
        for r in &event.arrivals {
            assert_eq!(
                r.arrival, event.slot,
                "malformed slot stream: request {} stamped with arrival {} was yielded in slot {}",
                r.id.0, r.arrival, event.slot
            );
            if let Some(last) = self.last_id {
                assert!(
                    r.id > last,
                    "malformed slot stream: request ids must be strictly ascending, \
                     got {} after {} (slot {})",
                    r.id.0,
                    last.0,
                    event.slot
                );
            }
            self.last_id = Some(r.id);
        }
        Some(event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Builds a [`Scenario`] piece by piece: substrate, applications,
/// policy, configuration, and — the open part — algorithm registration
/// by name.
///
/// ```no_run
/// use vne_sim::scenario::{Scenario, ScenarioConfig};
/// use vne_sim::registry::BuiltAlgorithm;
/// # let substrate = vne_topology::zoo::iris().unwrap();
/// # let apps = vne_sim::runner::default_apps(1);
/// # fn my_algorithm(_: &vne_sim::registry::BuildContext<'_>) -> BuiltAlgorithm { unimplemented!() }
/// let scenario = Scenario::builder(substrate)
///     .apps(apps)
///     .config(ScenarioConfig::small(1.0))
///     .algorithm("MYALG", my_algorithm)
///     .build();
/// let outcome = scenario.run("MYALG");
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    substrate: SubstrateNetwork,
    apps: Option<AppSet>,
    policy: PlacementPolicy,
    config: Option<ScenarioConfig>,
    registry: AlgorithmRegistry,
}

impl ScenarioBuilder {
    /// Starts a builder for one substrate.
    pub fn new(substrate: SubstrateNetwork) -> Self {
        Self {
            substrate,
            apps: None,
            policy: PlacementPolicy::default(),
            config: None,
            registry: AlgorithmRegistry::builtins(),
        }
    }

    /// Sets the application catalogue (default: the paper mix drawn
    /// from the config seed).
    pub fn apps(mut self, apps: AppSet) -> Self {
        self.apps = Some(apps);
        self
    }

    /// Sets the placement policy (default: [`PlacementPolicy::default`]).
    pub fn policy(mut self, policy: PlacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the scenario parameters (default:
    /// [`ScenarioConfig::small`] at 100% utilization).
    pub fn config(mut self, config: ScenarioConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Replaces the whole algorithm registry (default: the builtins).
    pub fn registry(mut self, registry: AlgorithmRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Registers an algorithm factory under `name` — the one-file path
    /// for third-party algorithms.
    pub fn algorithm(
        mut self,
        name: &str,
        factory: impl Fn(&BuildContext<'_>) -> crate::registry::BuiltAlgorithm + Send + Sync + 'static,
    ) -> Self {
        self.registry.register(name, factory);
        self
    }

    /// Finishes the scenario.
    pub fn build(self) -> Scenario {
        let config = self.config.unwrap_or_else(|| ScenarioConfig::small(1.0));
        let apps = self
            .apps
            .unwrap_or_else(|| crate::runner::default_apps(config.seed));
        Scenario {
            substrate: self.substrate,
            apps,
            policy: self.policy,
            config,
            registry: self.registry,
            sweep: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::BuiltAlgorithm;
    use vne_topology::zoo::citta_studi;
    use vne_workload::appgen::{paper_mix, AppGenConfig};

    fn scenario(utilization: f64, seed: u64) -> Scenario {
        let substrate = citta_studi().unwrap();
        let mut rng = SeededRng::new(seed);
        let apps = paper_mix(&AppGenConfig::default(), &mut rng);
        Scenario::new(
            substrate,
            apps,
            ScenarioConfig::small(utilization).with_seed(seed),
        )
    }

    #[test]
    fn algorithm_names_roundtrip_through_display_and_fromstr() {
        for alg in Algorithm::ALL {
            assert_eq!(alg.to_string().parse::<Algorithm>().unwrap(), alg);
            assert_eq!(
                alg.label().to_lowercase().parse::<Algorithm>().unwrap(),
                alg
            );
        }
        assert_eq!(
            " slotoff ".parse::<Algorithm>().unwrap(),
            Algorithm::SlotOff
        );
        let err = "nope".parse::<Algorithm>().unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn olive_beats_quickg_at_high_load() {
        let sc = scenario(1.4, 11);
        let olive = sc.run(Algorithm::Olive);
        let quickg = sc.run(Algorithm::Quickg);
        assert!(olive.summary.arrivals > 100);
        assert_eq!(olive.summary.arrivals, quickg.summary.arrivals);
        // The paper's headline: OLIVE rejects significantly less.
        assert!(
            olive.summary.rejection_rate <= quickg.summary.rejection_rate + 0.02,
            "OLIVE {} vs QUICKG {}",
            olive.summary.rejection_rate,
            quickg.summary.rejection_rate
        );
        assert!(olive.plan.is_some());
        assert!(olive.plan_secs > 0.0);
    }

    #[test]
    fn low_load_everything_accepted() {
        let sc = scenario(0.3, 7);
        let olive = sc.run(Algorithm::Olive);
        assert!(
            olive.summary.rejection_rate < 0.05,
            "rate {}",
            olive.summary.rejection_rate
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let sc = scenario(1.0, 5);
        let a = sc.run(Algorithm::Olive);
        let b = sc.run(Algorithm::Olive);
        assert_eq!(a.summary.rejection_rate, b.summary.rejection_rate);
        assert_eq!(a.summary.total_cost, b.summary.total_cost);
    }

    #[test]
    fn different_seeds_differ() {
        let a = scenario(1.0, 5).run(Algorithm::Quickg);
        let b = scenario(1.0, 6).run(Algorithm::Quickg);
        assert_ne!(a.summary.arrivals, b.summary.arrivals);
    }

    #[test]
    fn algorithms_run_by_name() {
        let sc = scenario(1.0, 5);
        let by_enum = sc.run(Algorithm::Quickg);
        let by_name = sc.run("quickg");
        assert_eq!(
            by_enum.summary.rejection_rate,
            by_name.summary.rejection_rate
        );
        assert_eq!(by_enum.summary.total_cost, by_name.summary.total_cost);
        assert!(sc.try_run("NOSUCH").is_err());
    }

    #[test]
    fn run_summary_matches_full_run() {
        let sc = scenario(1.2, 8);
        let full = sc.run(Algorithm::Quickg).summary;
        let streaming = sc.run_summary(Algorithm::Quickg).unwrap();
        assert_eq!(full.arrivals, streaming.arrivals);
        assert_eq!(full.rejected, streaming.rejected);
        assert_eq!(full.preempted, streaming.preempted);
        assert_eq!(full.rejection_rate, streaming.rejection_rate);
        assert_eq!(full.resource_cost, streaming.resource_cost);
        assert_eq!(full.rejection_cost, streaming.rejection_cost);
        assert_eq!(full.balance_index, streaming.balance_index);
    }

    #[test]
    fn run_summary_is_byte_identical_under_preemption() {
        // OLIVE at 140% preempts (pinned by the streaming-parity
        // suite); the incremental and batch summaries must still agree
        // bit for bit — the rejection-cost fold order is pinned on both
        // paths.
        let sc = scenario(1.4, 11);
        let full = sc.run(Algorithm::Olive).summary;
        let streaming = sc.run_summary(Algorithm::Olive).unwrap();
        assert!(full.preempted > 0, "seed must exercise preemption");
        assert_eq!(full.arrivals, streaming.arrivals);
        assert_eq!(full.preempted, streaming.preempted);
        assert_eq!(
            full.rejection_cost.to_bits(),
            streaming.rejection_cost.to_bits()
        );
        assert_eq!(full.total_cost.to_bits(), streaming.total_cost.to_bits());
        assert_eq!(
            full.balance_index.to_bits(),
            streaming.balance_index.to_bits()
        );
    }

    #[test]
    fn sketch_estimator_scenario_runs_close_to_exact() {
        let exact = scenario(1.2, 19);
        let mut sketch = scenario(1.2, 19);
        sketch.config.estimator = EstimatorKind::Sketch;
        let exact_out = exact.run(Algorithm::Olive);
        let sketch_out = sketch.run(Algorithm::Olive);
        // Same online trace, a plan built from approximated demands:
        // the sketch plan must be a working plan of a similar size.
        assert_eq!(exact_out.summary.arrivals, sketch_out.summary.arrivals);
        let exact_plan = exact_out.plan.unwrap();
        let sketch_plan = sketch_out.plan.unwrap();
        assert!(!sketch_plan.is_empty());
        let ratio = sketch_plan.len() as f64 / exact_plan.len() as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "planned classes: sketch {} vs exact {}",
            sketch_plan.len(),
            exact_plan.len()
        );
        assert!(
            (sketch_out.summary.rejection_rate - exact_out.summary.rejection_rate).abs() < 0.15,
            "rates: sketch {} vs exact {}",
            sketch_out.summary.rejection_rate,
            exact_out.summary.rejection_rate
        );
    }

    #[test]
    fn custom_estimator_drives_the_plan() {
        // A fixed-demand estimator: every observed class gets demand 5.
        struct Flat {
            seen: std::collections::BTreeSet<vne_model::ids::ClassId>,
            observed: Slot,
        }
        impl DemandEstimator for Flat {
            fn observe_slot(&mut self, events: &SlotEvents) {
                for r in &events.arrivals {
                    self.seen.insert(r.class());
                }
                self.observed += 1;
            }
            fn slots_observed(&self) -> Slot {
                self.observed
            }
            fn finalize(
                &mut self,
                _rng: &mut dyn vne_workload::estimator::RngCore,
            ) -> std::collections::BTreeMap<vne_model::ids::ClassId, f64> {
                self.seen.iter().map(|&c| (c, 5.0)).collect()
            }
        }
        let mut sc = scenario(1.0, 23);
        sc.config.estimator = EstimatorKind::custom(|_, _| {
            Box::new(Flat {
                seen: Default::default(),
                observed: 0,
            })
        });
        let (plan, _) = sc.build_plan();
        assert!(!plan.is_empty());
        for class_plan in plan.iter() {
            assert!((class_plan.expected_demand - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn history_events_match_history_trace() {
        for shift in [false, true] {
            let mut sc = scenario(1.0, 31);
            sc.config.shift_plan_ingress = shift;
            let streamed: Vec<Request> = sc.history_events().flat_map(|ev| ev.arrivals).collect();
            assert_eq!(streamed, sc.history_trace(), "shift={shift}");
            assert_eq!(
                sc.history_events().count(),
                sc.config.history_slots as usize
            );
        }
    }

    #[test]
    fn online_events_match_online_trace() {
        let sc = scenario(1.0, 17);
        let streamed: Vec<Request> = sc.online_events().flat_map(|ev| ev.arrivals).collect();
        assert_eq!(streamed, sc.online_trace());
        assert_eq!(sc.online_events().count(), sc.config.test_slots as usize);
    }

    #[test]
    fn custom_algorithm_registers_and_runs() {
        // An "algorithm" that rejects everything, registered through the
        // builder — the open-registry path end to end.
        struct RejectAll(vne_model::load::LoadLedger);
        impl OnlineAlgorithm for RejectAll {
            fn name(&self) -> &str {
                "REJECTALL"
            }
            fn process_slot(
                &mut self,
                _t: Slot,
                _departures: &[Request],
                arrivals: &[Request],
            ) -> vne_olive::algorithm::SlotOutcome {
                vne_olive::algorithm::SlotOutcome {
                    rejected: arrivals.iter().map(|r| r.id).collect(),
                    ..Default::default()
                }
            }
            fn loads(&self) -> &vne_model::load::LoadLedger {
                &self.0
            }
        }

        let base = scenario(1.0, 5);
        let sc = Scenario::builder(base.substrate.clone())
            .apps(base.apps.clone())
            .config(base.config.clone())
            .algorithm("rejectall", |ctx| {
                BuiltAlgorithm::plain(RejectAll(vne_model::load::LoadLedger::new(ctx.substrate())))
            })
            .build();
        let outcome = sc.run("RejectAll");
        assert!(outcome.summary.arrivals > 0);
        assert_eq!(outcome.summary.rejection_rate, 1.0);
        assert_eq!(outcome.result.algorithm, "REJECTALL");
        assert!(outcome.plan.is_none());
    }

    #[test]
    fn plan_utilization_mismatch_still_works() {
        let mut sc = scenario(1.2, 9);
        sc.config.plan_utilization = Some(0.6);
        let out = sc.run(Algorithm::Olive);
        // Plan for 60%, demand at 120%: should still function.
        assert!(out.summary.rejection_rate < 1.0);
    }

    #[test]
    fn shifted_plan_ingress_works() {
        let mut sc = scenario(1.0, 13);
        sc.config.shift_plan_ingress = true;
        let out = sc.run(Algorithm::Olive);
        assert!(out.summary.arrivals > 0);
    }

    #[test]
    fn conformance_detects_distribution_shift() {
        // Note: the 95% CI is of the *estimator* (it tightens with
        // history length), not a prediction interval for the noisy
        // online statistic — so even same-distribution conformance is
        // well below 1 at small scale. The informative property is
        // relative: a demand shift must push conformance down hard.
        let sc = scenario(1.0, 21);
        let base = sc.demand_conformance();
        let mut shifted = scenario(1.0, 21);
        shifted.config.plan_utilization = Some(0.3); // history at 30%, online at 100%
        let low = shifted.demand_conformance();
        assert!(base > 0.05, "base conformance {base}");
        assert!(low < base, "shifted {low} vs base {base}");
    }

    #[test]
    fn adversarial_profiles_run_and_are_deterministic() {
        for profile in AdversaryProfile::ALL {
            let mut sc = scenario(1.0, 5);
            sc.config.adversary = Some(profile);
            let a = sc.run_summary(Algorithm::Quickg).unwrap();
            let b = sc.run_summary(Algorithm::Quickg).unwrap();
            assert!(a.arrivals > 0, "{profile:?} produced no arrivals");
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "{profile:?} is not deterministic"
            );
        }
    }

    #[test]
    fn adversarial_stream_is_identical_across_algorithms() {
        // Every algorithm must face the same request sequence — the
        // plan-adversarial generator in particular derives its targets
        // from the scenario's plan, not the running algorithm's.
        let mut sc = scenario(1.0, 7);
        sc.config.adversary = Some(AdversaryProfile::PlanAdversarial);
        let olive = sc.run_summary(Algorithm::Olive).unwrap();
        let quickg = sc.run_summary(Algorithm::Quickg).unwrap();
        assert_eq!(olive.arrivals, quickg.arrivals);
    }

    #[test]
    fn churn_scenario_counts_window_churn() {
        let mut sc = scenario(1.0, 5);
        sc.config.churn = Some(ChurnProfile::NodeMaintenance { period: 30, len: 5 });
        let summary = sc.run_summary(Algorithm::Quickg).unwrap();
        // Windows at t=30,60,90 fall inside the (20,100) measure
        // window: a down and an up event each.
        assert!(summary.churn.events > 0, "no churn events in window");
    }

    #[test]
    fn evict_policy_never_reembeds() {
        let mut sc = scenario(1.4, 11);
        sc.config.churn = Some(ChurnProfile::CapacityDrain {
            period: 30,
            len: 5,
            factor: 0.2,
        });
        sc.config.reembed = crate::engine::ReembedKind::Evict;
        let evict = sc.run_summary(Algorithm::Quickg).unwrap();
        assert!(evict.churn.stranded > 0, "drain must strand requests");
        assert_eq!(evict.churn.reembedded, 0);
        assert_eq!(evict.churn.evicted, evict.churn.stranded);

        sc.config.reembed = crate::engine::ReembedKind::Reembed;
        let reembed = sc.run_summary(Algorithm::Quickg).unwrap();
        assert!(
            reembed.churn.reembedded > 0,
            "re-offering after a drain must succeed at least once"
        );
        assert_eq!(
            reembed.churn.reembedded + reembed.churn.evicted,
            reembed.churn.stranded
        );
    }

    #[test]
    fn churned_adversarial_run_resumes_byte_identically() {
        let mut sc = scenario(1.2, 9);
        sc.config.adversary = Some(AdversaryProfile::RevenueBurst);
        sc.config.churn = Some(ChurnProfile::LinkOutages {
            period: 25,
            len: 6,
            count: 2,
        });
        let full = sc.run_summary(Algorithm::Olive).unwrap();
        // Fork inside the second outage window (slot 52 ∈ [50, 56)).
        let fork = sc.fork_at(Algorithm::Olive, 52).unwrap();
        let resumed = fork.resume().unwrap();
        assert_eq!(full.fingerprint(), resumed.fingerprint());
        assert_eq!(full.churn, resumed.churn);
    }

    #[test]
    #[should_panic(expected = "expected contiguous slot")]
    fn checked_stream_panics_on_slot_gap() {
        let events = vec![
            SlotEvents {
                slot: 0,
                arrivals: vec![],
                churn: vec![],
            },
            SlotEvents {
                slot: 2,
                arrivals: vec![],
                churn: vec![],
            },
        ];
        CheckedStream::new(events.into_iter()).count();
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn checked_stream_panics_on_descending_ids() {
        let req = |id: u64, slot: Slot| Request {
            id: vne_model::ids::RequestId(id),
            arrival: slot,
            duration: 1,
            ingress: vne_model::ids::NodeId(0),
            app: vne_model::ids::AppId(0),
            demand: 1.0,
        };
        let events = vec![
            SlotEvents {
                slot: 0,
                arrivals: vec![req(5, 0)],
                churn: vec![],
            },
            SlotEvents {
                slot: 1,
                arrivals: vec![req(3, 1)],
                churn: vec![],
            },
        ];
        CheckedStream::new(events.into_iter()).count();
    }

    #[test]
    #[should_panic(expected = "stamped with arrival")]
    fn checked_stream_panics_on_misstamped_arrival() {
        let events = vec![SlotEvents {
            slot: 4,
            arrivals: vec![Request {
                id: vne_model::ids::RequestId(0),
                arrival: 3,
                duration: 1,
                ingress: vne_model::ids::NodeId(0),
                app: vne_model::ids::AppId(0),
                demand: 1.0,
            }],
            churn: vec![],
        }];
        CheckedStream::new(events.into_iter()).count();
    }

    #[test]
    fn checked_stream_accepts_resumed_suffixes() {
        // Contiguity is relative to the first yielded slot, so a
        // skipped (resume-path) stream passes.
        let sc = scenario(1.0, 5);
        let n = CheckedStream::new(sc.online_events_from(40)).count();
        assert_eq!(n, (sc.config.test_slots - 40) as usize);
    }

    #[test]
    fn caida_trace_scenario() {
        let mut sc = scenario(1.0, 15);
        sc.config.caida = Some(CaidaConfig {
            total_rate: 100.0,
            sources: 300,
            ..CaidaConfig::default()
        });
        let out = sc.run(Algorithm::Olive);
        assert!(out.summary.arrivals > 0);
    }
}
