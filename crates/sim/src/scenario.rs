//! End-to-end experiment scenarios: trace → history → plan → online run.
//!
//! A [`Scenario`] reproduces the paper's pipeline for one seed: generate
//! a request history and an online trace, aggregate the history, solve
//! PLAN-VNE, then drive the chosen algorithm through the online phase and
//! summarize the measurement window. Variations used by the evaluation —
//! plan built for a different utilization (Fig. 13), spatially shifted
//! plan input (Fig. 14), CAIDA-like demand (Fig. 15), GPU scenario
//! (Fig. 10) — are configuration switches here.

use vne_model::app::AppSet;
use vne_model::cost::RejectionPenalty;
use vne_model::policy::PlacementPolicy;
use vne_model::request::{Request, Slot};
use vne_model::substrate::SubstrateNetwork;
use vne_olive::aggregate::{AggregateDemand, AggregationConfig};
use vne_olive::colgen::{solve_plan, PlanVneConfig};
use vne_olive::fullg::FullG;
use vne_olive::olive::{Olive, OliveConfig};
use vne_olive::plan::Plan;
use vne_olive::slotoff::SlotOff;
use vne_workload::caida::{self, CaidaConfig};
use vne_workload::rng::SeededRng;
use vne_workload::tracegen::{self, TraceConfig};

use crate::engine::{no_inspection, run, RunResult};
use crate::metrics::{summarize, Summary};

/// The algorithms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's contribution: plan-based online embedding.
    Olive,
    /// Greedy collocated baseline (OLIVE with an empty plan).
    Quickg,
    /// Exact per-request baseline.
    Fullg,
    /// Per-slot offline re-optimization.
    SlotOff,
}

impl Algorithm {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Olive => "OLIVE",
            Algorithm::Quickg => "QUICKG",
            Algorithm::Fullg => "FULLG",
            Algorithm::SlotOff => "SLOTOFF",
        }
    }
}

/// Scenario parameters (defaults mirror Table III at reduced scale; use
/// [`ScenarioConfig::paper`] for the full-scale settings).
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// History (planning) window length in slots.
    pub history_slots: Slot,
    /// Online (test) phase length in slots.
    pub test_slots: Slot,
    /// Measurement window within the online phase.
    pub measure_window: (Slot, Slot),
    /// Edge utilization of the online demand (1.0 = 100%).
    pub utilization: f64,
    /// Utilization the *plan* is built for (Fig. 13); defaults to
    /// `utilization`.
    pub plan_utilization: Option<f64>,
    /// Remap history ingress nodes randomly before planning (Fig. 14).
    pub shift_plan_ingress: bool,
    /// Rejection quantile count `P` (Fig. 11).
    pub quantiles: usize,
    /// OLIVE mechanism switches (ablations).
    pub olive: OliveConfig,
    /// History aggregation (percentile α, bootstrap replicates).
    pub aggregation: AggregationConfig,
    /// Base synthetic trace parameters.
    pub trace: TraceConfig,
    /// Use the CAIDA-like trace instead of the synthetic one (Fig. 15).
    pub caida: Option<CaidaConfig>,
    /// Master seed of this scenario instance.
    pub seed: u64,
}

impl ScenarioConfig {
    /// Fast, reduced-scale defaults for tests and quick runs.
    pub fn small(utilization: f64) -> Self {
        Self {
            history_slots: 300,
            test_slots: 120,
            measure_window: (20, 100),
            utilization,
            plan_utilization: None,
            shift_plan_ingress: false,
            quantiles: 10,
            olive: OliveConfig::default(),
            aggregation: AggregationConfig {
                alpha: 80.0,
                bootstrap_replicates: 30,
            },
            trace: TraceConfig {
                slots: 0, // set per phase
                ..TraceConfig::default()
            },
            caida: None,
            seed: 1,
        }
    }

    /// The paper's full-scale settings (Table III): 5400 planning slots,
    /// 600 online slots, measurement window 100–500.
    pub fn paper(utilization: f64) -> Self {
        Self {
            history_slots: 5400,
            test_slots: 600,
            measure_window: (100, 500),
            aggregation: AggregationConfig::default(),
            ..Self::small(utilization)
        }
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything produced by one scenario run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Window summary.
    pub summary: Summary,
    /// Full per-request / per-slot result.
    pub result: RunResult,
    /// The plan used (OLIVE only).
    pub plan: Option<Plan>,
    /// Seconds spent building the plan (aggregation + PLAN-VNE).
    pub plan_secs: f64,
}

/// A fully wired experiment for one substrate, application set and seed.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The physical substrate.
    pub substrate: SubstrateNetwork,
    /// The application catalogue.
    pub apps: AppSet,
    /// Placement policy (η).
    pub policy: PlacementPolicy,
    /// Scenario parameters.
    pub config: ScenarioConfig,
}

impl Scenario {
    /// Creates a scenario with the default placement policy.
    pub fn new(substrate: SubstrateNetwork, apps: AppSet, config: ScenarioConfig) -> Self {
        Self {
            substrate,
            apps,
            policy: PlacementPolicy::default(),
            config,
        }
    }

    fn rng(&self, stream: u64) -> SeededRng {
        SeededRng::new(self.config.seed).derive(stream)
    }

    fn trace_at(&self, utilization: f64, slots: Slot, rng: &mut SeededRng) -> Vec<Request> {
        match &self.config.caida {
            None => {
                let mut tc =
                    self.config
                        .trace
                        .at_utilization(utilization, &self.substrate, &self.apps);
                tc.slots = slots;
                // Popularity is a property of the scenario: history and
                // online phases must agree on the hot nodes.
                tc.popularity_seed = self.config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(7);
                tracegen::generate(&self.substrate, &self.apps, &tc, rng)
            }
            Some(caida_config) => {
                // Calibrate the CAIDA trace's mean demand the same way:
                // u · cap_edge = rate_per_edge · E[T] · E[d] · E[Σβ].
                let edge_nodes = self.substrate.edge_nodes().len() as f64;
                let rate_per_edge = caida_config.total_rate / edge_nodes;
                let cap_per_edge = self.substrate.total_edge_capacity() / edge_nodes;
                let mean_fp = self.apps.mean_total_node_size();
                let mut cc = caida_config.clone();
                cc.slots = slots;
                cc.demand_mean =
                    utilization * cap_per_edge / (rate_per_edge * cc.duration_mean * mean_fp);
                cc.population_seed = self.config.seed.wrapping_mul(0x517c_c1b7).wrapping_add(3);
                caida::generate(&self.substrate, &self.apps, &cc, rng)
            }
        }
    }

    /// Generates the online-phase trace.
    pub fn online_trace(&self) -> Vec<Request> {
        let mut rng = self.rng(2);
        self.trace_at(self.config.utilization, self.config.test_slots, &mut rng)
    }

    /// Generates the history (planning) trace, honoring the Fig. 13/14
    /// distortions.
    pub fn history_trace(&self) -> Vec<Request> {
        let mut rng = self.rng(1);
        let u = self
            .config
            .plan_utilization
            .unwrap_or(self.config.utilization);
        let mut history = self.trace_at(u, self.config.history_slots, &mut rng);
        if self.config.shift_plan_ingress {
            history = tracegen::shift_ingress(&history, &self.substrate, &mut rng);
        }
        history
    }

    /// The rejection penalty used for both planning and cost accounting
    /// (the paper's conservative ψ).
    pub fn penalty(&self) -> RejectionPenalty {
        RejectionPenalty::conservative(&self.apps, &self.substrate)
    }

    /// The paper's demand-conformance check (§III-A): the fraction of
    /// classes whose online `P_α` demand falls inside the 95% bootstrap
    /// confidence interval of the history estimate. Close to 1 when the
    /// online demand is "drawn from the same distribution" as the
    /// history; low under the Fig. 13/14 distortions.
    pub fn demand_conformance(&self) -> f64 {
        use vne_workload::history::ClassDemandSeries;
        let history =
            ClassDemandSeries::from_requests(&self.history_trace(), self.config.history_slots);
        let online = ClassDemandSeries::from_requests(&self.online_trace(), self.config.test_slots);
        let mut rng = self.rng(4);
        history.conformance(
            &online,
            self.config.aggregation.alpha,
            self.config.aggregation.bootstrap_replicates,
            &mut rng,
        )
    }

    fn plan_config(&self) -> PlanVneConfig {
        PlanVneConfig::new(self.penalty().max_psi()).with_quantiles(self.config.quantiles)
    }

    /// Builds the OLIVE plan from the history trace. Returns the plan and
    /// the wall-clock seconds it took (aggregation + PLAN-VNE solve).
    pub fn build_plan(&self) -> (Plan, f64) {
        let started = std::time::Instant::now();
        let history = self.history_trace();
        let mut rng = self.rng(3);
        let aggregate = AggregateDemand::from_history(
            &history,
            self.config.history_slots,
            &self.config.aggregation,
            &mut rng,
        );
        let (plan, _) = solve_plan(
            &self.substrate,
            &self.apps,
            &self.policy,
            &aggregate,
            &self.plan_config(),
        );
        (plan, started.elapsed().as_secs_f64())
    }

    /// Runs one algorithm through the online phase.
    pub fn run(&self, algorithm: Algorithm) -> Outcome {
        self.run_with_inspector(algorithm, no_inspection::<Olive>)
    }

    /// Like [`Scenario::run`], but for OLIVE the inspector is called
    /// after every slot with the algorithm state (Fig. 12 drill-down).
    /// For other algorithms the inspector is ignored.
    pub fn run_with_inspector<F>(&self, algorithm: Algorithm, inspect: F) -> Outcome
    where
        F: FnMut(Slot, &Olive),
    {
        let online = self.online_trace();
        let penalty = self.penalty();
        let (result, plan, plan_secs) = match algorithm {
            Algorithm::Olive => {
                let (plan, plan_secs) = self.build_plan();
                let mut alg = Olive::new(
                    self.substrate.clone(),
                    self.apps.clone(),
                    self.policy.clone(),
                    plan.clone(),
                    self.config.olive,
                );
                let result = run(
                    &mut alg,
                    &self.substrate,
                    &online,
                    self.config.test_slots,
                    inspect,
                );
                (result, Some(plan), plan_secs)
            }
            Algorithm::Quickg => {
                let mut alg = Olive::quickg(
                    self.substrate.clone(),
                    self.apps.clone(),
                    self.policy.clone(),
                );
                let result = run(
                    &mut alg,
                    &self.substrate,
                    &online,
                    self.config.test_slots,
                    no_inspection,
                );
                (result, None, 0.0)
            }
            Algorithm::Fullg => {
                let mut alg = FullG::new(
                    self.substrate.clone(),
                    self.apps.clone(),
                    self.policy.clone(),
                );
                let result = run(
                    &mut alg,
                    &self.substrate,
                    &online,
                    self.config.test_slots,
                    no_inspection,
                );
                (result, None, 0.0)
            }
            Algorithm::SlotOff => {
                let mut alg = SlotOff::new(
                    self.substrate.clone(),
                    self.apps.clone(),
                    self.policy.clone(),
                    self.plan_config(),
                );
                let result = run(
                    &mut alg,
                    &self.substrate,
                    &online,
                    self.config.test_slots,
                    no_inspection,
                );
                (result, None, 0.0)
            }
        };
        let summary = summarize(&result, &penalty, self.config.measure_window);
        Outcome {
            summary,
            result,
            plan,
            plan_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_topology::zoo::citta_studi;
    use vne_workload::appgen::{paper_mix, AppGenConfig};

    fn scenario(utilization: f64, seed: u64) -> Scenario {
        let substrate = citta_studi().unwrap();
        let mut rng = SeededRng::new(seed);
        let apps = paper_mix(&AppGenConfig::default(), &mut rng);
        Scenario::new(
            substrate,
            apps,
            ScenarioConfig::small(utilization).with_seed(seed),
        )
    }

    #[test]
    fn olive_beats_quickg_at_high_load() {
        let sc = scenario(1.4, 11);
        let olive = sc.run(Algorithm::Olive);
        let quickg = sc.run(Algorithm::Quickg);
        assert!(olive.summary.arrivals > 100);
        assert_eq!(olive.summary.arrivals, quickg.summary.arrivals);
        // The paper's headline: OLIVE rejects significantly less.
        assert!(
            olive.summary.rejection_rate <= quickg.summary.rejection_rate + 0.02,
            "OLIVE {} vs QUICKG {}",
            olive.summary.rejection_rate,
            quickg.summary.rejection_rate
        );
        assert!(olive.plan.is_some());
        assert!(olive.plan_secs > 0.0);
    }

    #[test]
    fn low_load_everything_accepted() {
        let sc = scenario(0.3, 7);
        let olive = sc.run(Algorithm::Olive);
        assert!(
            olive.summary.rejection_rate < 0.05,
            "rate {}",
            olive.summary.rejection_rate
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let sc = scenario(1.0, 5);
        let a = sc.run(Algorithm::Olive);
        let b = sc.run(Algorithm::Olive);
        assert_eq!(a.summary.rejection_rate, b.summary.rejection_rate);
        assert_eq!(a.summary.total_cost, b.summary.total_cost);
    }

    #[test]
    fn different_seeds_differ() {
        let a = scenario(1.0, 5).run(Algorithm::Quickg);
        let b = scenario(1.0, 6).run(Algorithm::Quickg);
        assert_ne!(a.summary.arrivals, b.summary.arrivals);
    }

    #[test]
    fn plan_utilization_mismatch_still_works() {
        let mut sc = scenario(1.2, 9);
        sc.config.plan_utilization = Some(0.6);
        let out = sc.run(Algorithm::Olive);
        // Plan for 60%, demand at 120%: should still function.
        assert!(out.summary.rejection_rate < 1.0);
    }

    #[test]
    fn shifted_plan_ingress_works() {
        let mut sc = scenario(1.0, 13);
        sc.config.shift_plan_ingress = true;
        let out = sc.run(Algorithm::Olive);
        assert!(out.summary.arrivals > 0);
    }

    #[test]
    fn conformance_detects_distribution_shift() {
        // Note: the 95% CI is of the *estimator* (it tightens with
        // history length), not a prediction interval for the noisy
        // online statistic — so even same-distribution conformance is
        // well below 1 at small scale. The informative property is
        // relative: a demand shift must push conformance down hard.
        let sc = scenario(1.0, 21);
        let base = sc.demand_conformance();
        let mut shifted = scenario(1.0, 21);
        shifted.config.plan_utilization = Some(0.3); // history at 30%, online at 100%
        let low = shifted.demand_conformance();
        assert!(base > 0.05, "base conformance {base}");
        assert!(low < base, "shifted {low} vs base {base}");
    }

    #[test]
    fn caida_trace_scenario() {
        let mut sc = scenario(1.0, 15);
        sc.config.caida = Some(CaidaConfig {
            total_rate: 100.0,
            sources: 300,
            ..CaidaConfig::default()
        });
        let out = sc.run(Algorithm::Olive);
        assert!(out.summary.arrivals > 0);
    }
}
