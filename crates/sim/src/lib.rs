#![warn(missing_docs)]
//! # vne-sim — the streaming discrete-time online VNE simulator
//!
//! Drives the paper's evaluation (§IV) as an event-driven pipeline:
//!
//! * the [`engine`] streams `SlotEvents` (lazy, one slot at a time)
//!   against any [`vne_olive::algorithm::OnlineAlgorithm`], keeping
//!   only `O(active requests)` of state and reporting per-request and
//!   per-slot facts to a [`engine::SimObserver`];
//! * [`observe`] has the ready-made observers: a full-result
//!   [`observe::Recorder`], an `O(classes)` incremental
//!   [`observe::WindowSummary`], a periodic [`observe::Checkpointer`]
//!   (checkpoint/resume for long-horizon runs), closure inspection and
//!   a tee;
//! * [`persist`] writes checkpoint files crash-safely (temp file +
//!   fsync + atomic rename) and refuses truncated blobs on read;
//! * the [`registry`] constructs algorithms by name
//!   (`Box<dyn OnlineAlgorithm>`): the paper's four are built in and
//!   third-party algorithms register without touching this crate;
//! * [`metrics`] computes rejection rates, costs (Eqs. 3–4) and the
//!   rejection balance index (Eq. 20);
//! * [`scenario`] wires the full history → plan → online pipeline with
//!   all the evaluation's variations ([`scenario::ScenarioBuilder`] for
//!   custom policies/algorithms);
//! * [`runner`] replays scenarios across seeds in parallel with
//!   confidence intervals.
//!
//! ## Example
//!
//! ```no_run
//! use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};
//! use vne_workload::appgen::{paper_mix, AppGenConfig};
//! use vne_workload::rng::SeededRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let substrate = vne_topology::zoo::iris()?;
//! let mut rng = SeededRng::new(7);
//! let apps = paper_mix(&AppGenConfig::default(), &mut rng);
//! let scenario = Scenario::new(substrate, apps, ScenarioConfig::small(1.0));
//! // Algorithms resolve by name: `Algorithm::Olive` and `"OLIVE"` are
//! // interchangeable.
//! let outcome = scenario.run(Algorithm::Olive);
//! println!("rejection rate: {:.3}", outcome.summary.rejection_rate);
//! # Ok(())
//! # }
//! ```

pub mod engine;
pub mod metrics;
pub mod observe;
pub mod persist;
pub mod registry;
pub mod runner;
pub mod scenario;

pub use engine::{
    restore_engine, EngineCheckpoint, EngineState, RequestStatus, RunResult, SimControl,
    SimObserver, SlotStep, StreamStats,
};
pub use metrics::{aggregate, summarize, AggregatedSummary, Summary};
pub use observe::{Checkpointer, NullObserver, Recorder, WindowSummary};
pub use persist::{read_checkpoint_file, write_bytes_atomic, write_checkpoint_file, PersistError};
pub use registry::{AlgorithmRegistry, AlgorithmSpec, BuildContext, BuiltAlgorithm};
pub use runner::{default_apps, run_seeds, run_seeds_in, Utilization};
pub use scenario::{
    Algorithm, Fork, Outcome, ResumeError, Scenario, ScenarioBuilder, ScenarioConfig,
};
