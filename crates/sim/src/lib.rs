#![warn(missing_docs)]
//! # vne-sim — the discrete-time online VNE simulator
//!
//! Drives the paper's evaluation (§IV): the [`engine`] replays a request
//! trace slot by slot against any [`vne_olive::algorithm::OnlineAlgorithm`],
//! [`metrics`] computes rejection rates, costs (Eqs. 3–4) and the
//! rejection balance index (Eq. 20), [`scenario`] wires the full
//! history → plan → online pipeline with all the evaluation's variations,
//! and [`runner`] replays scenarios across seeds in parallel with
//! confidence intervals.
//!
//! ## Example
//!
//! ```no_run
//! use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};
//! use vne_workload::appgen::{paper_mix, AppGenConfig};
//! use vne_workload::rng::SeededRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let substrate = vne_topology::zoo::iris()?;
//! let mut rng = SeededRng::new(7);
//! let apps = paper_mix(&AppGenConfig::default(), &mut rng);
//! let scenario = Scenario::new(substrate, apps, ScenarioConfig::small(1.0));
//! let outcome = scenario.run(Algorithm::Olive);
//! println!("rejection rate: {:.3}", outcome.summary.rejection_rate);
//! # Ok(())
//! # }
//! ```

pub mod engine;
pub mod metrics;
pub mod runner;
pub mod scenario;

pub use engine::{RequestStatus, RunResult};
pub use metrics::{aggregate, summarize, AggregatedSummary, Summary};
pub use runner::{default_apps, run_seeds, Utilization};
pub use scenario::{Algorithm, Outcome, Scenario, ScenarioConfig};
