//! The streaming, event-driven simulation engine.
//!
//! [`run_stream`] drives an [`OnlineAlgorithm`] over a lazy stream of
//! [`SlotEvents`] (one item per slot): departures are released first,
//! then the slot's arrivals are processed in order (ON-VNE semantics).
//! Instead of materializing the whole trace and a per-request outcome
//! log up front, the engine keeps only the *active* requests — peak
//! memory is `O(active requests)`, independent of the trace length —
//! and reports everything it learns through a [`SimObserver`]:
//!
//! * [`SimObserver::on_arrival`] — one call per request with its
//!   accept/reject decision;
//! * [`SimObserver::on_preemption`] — a previously accepted request was
//!   evicted;
//! * [`SimObserver::on_slot_end`] — per-slot [`SlotMetrics`] plus the
//!   algorithm itself (drill-down inspection), with the option to stop
//!   the simulation early.
//!
//! Ready-made observers live in [`crate::observe`]: a [`Recorder`]
//! collecting the classic [`RunResult`], an `O(classes)` incremental
//! window summary, closure-based inspection, and a tee combinator.
//! [`run`] is the batch convenience wrapper (slice in, [`RunResult`]
//! out) used by tests and small experiments.
//!
//! [`Recorder`]: crate::observe::Recorder

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

use vne_model::churn::{ChurnState, EffectiveCapacities};
use vne_model::embedding::Footprint;
use vne_model::ids::{ClassId, LinkId, NodeId, RequestId};
use vne_model::invariant::InvariantViolation;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::state::{
    ShardCheckpoint, Snapshot, StateBlob, StateError, StateReader, StateWriter,
};
use vne_model::substrate::SubstrateNetwork;
use vne_olive::algorithm::OnlineAlgorithm;

use crate::observe::{Inspect, Recorder, Tee};

/// Final status of a request after the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Accepted and never evicted.
    Accepted,
    /// Rejected on arrival.
    Rejected,
    /// Accepted, then preempted at the given slot.
    Preempted(Slot),
}

impl RequestStatus {
    /// Whether the request counts against the rejection rate (rejected on
    /// arrival or preempted later — both incur the rejection cost).
    pub fn is_denied(self) -> bool {
        !matches!(self, RequestStatus::Accepted)
    }
}

/// Outcome of a single request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The request id.
    pub id: RequestId,
    /// The request class.
    pub class: ClassId,
    /// Arrival slot.
    pub arrival: Slot,
    /// Duration in slots.
    pub duration: Slot,
    /// Demand size.
    pub demand: f64,
    /// Final status.
    pub status: RequestStatus,
}

impl RequestOutcome {
    fn of(request: &Request, status: RequestStatus) -> Self {
        Self {
            id: request.id,
            class: request.class(),
            arrival: request.arrival,
            duration: request.duration,
            demand: request.demand,
            status,
        }
    }
}

impl vne_model::state::StateEncode for RequestStatus {
    fn encode(&self, w: &mut StateWriter) {
        match self {
            RequestStatus::Accepted => w.write_u8(0),
            RequestStatus::Rejected => w.write_u8(1),
            RequestStatus::Preempted(at) => {
                w.write_u8(2);
                w.write_u32(*at);
            }
        }
    }
}

impl vne_model::state::StateDecode for RequestStatus {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        match r.read_u8()? {
            0 => Ok(RequestStatus::Accepted),
            1 => Ok(RequestStatus::Rejected),
            2 => Ok(RequestStatus::Preempted(r.read_u32()?)),
            tag => Err(StateError::Corrupt(format!(
                "invalid request status tag {tag}"
            ))),
        }
    }
}

impl vne_model::state::StateEncode for RequestOutcome {
    fn encode(&self, w: &mut StateWriter) {
        w.write(&self.id);
        w.write(&self.class);
        w.write_u32(self.arrival);
        w.write_u32(self.duration);
        w.write_f64(self.demand);
        w.write(&self.status);
    }
}

impl vne_model::state::StateDecode for RequestOutcome {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            id: r.read()?,
            class: r.read()?,
            arrival: r.read_u32()?,
            duration: r.read_u32()?,
            demand: r.read_f64()?,
            status: r.read()?,
        })
    }
}

/// Per-slot aggregate series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SlotMetrics {
    /// Total demand of all requests that *would* be active (accepted or
    /// not) — the "requested" curve of Fig. 8.
    pub requested_demand: f64,
    /// Total demand of active accepted requests — the "allocated" curve.
    pub allocated_demand: f64,
    /// Resource cost of the current loads for this slot (Eq. 3 term).
    pub resource_cost: f64,
}

impl vne_model::state::StateEncode for SlotMetrics {
    fn encode(&self, w: &mut StateWriter) {
        w.write_f64(self.requested_demand);
        w.write_f64(self.allocated_demand);
        w.write_f64(self.resource_cost);
    }
}

impl vne_model::state::StateDecode for SlotMetrics {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            requested_demand: r.read_f64()?,
            allocated_demand: r.read_f64()?,
            resource_cost: r.read_f64()?,
        })
    }
}

/// Complete result of one simulation run (as collected by
/// [`crate::observe::Recorder`]).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm name.
    pub algorithm: String,
    /// One outcome per request, in arrival order.
    pub requests: Vec<RequestOutcome>,
    /// One entry per simulated slot.
    pub slots: Vec<SlotMetrics>,
    /// Wall-clock seconds spent inside the online loop.
    pub online_secs: f64,
}

/// Engine-level counters returned by [`run_stream`].
///
/// `peak_active` is the engine's memory high-water mark in requests:
/// the streaming engine holds state only for active accepted requests,
/// so for a stationary workload this stays flat no matter how many
/// slots the stream yields (see the `long_horizon` integration test).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamStats {
    /// Number of slots actually simulated.
    pub slots_run: Slot,
    /// Total arrivals processed.
    pub arrivals: usize,
    /// Maximum number of simultaneously active (accepted) requests —
    /// the engine's O(active) memory bound.
    pub peak_active: usize,
    /// Wall-clock seconds spent inside the online loop.
    pub online_secs: f64,
    /// Whether an observer stopped the run before the stream ended.
    pub stopped_early: bool,
}

/// Per-slot churn counters: how many churn events the slot carried and
/// what happened to the requests they stranded.
///
/// All-zero on slots without churn (and for whole runs on a static
/// substrate), so the pre-churn golden fingerprints are unaffected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Churn events applied.
    pub events: usize,
    /// Requests stranded by capacity losses (their allocation no longer
    /// fit the effective capacities).
    pub stranded: usize,
    /// Stranded requests permanently lost: not selected for re-embedding
    /// by the [`ReembedPolicy`], or re-offered and rejected.
    pub evicted: usize,
    /// Stranded requests successfully re-embedded in the same slot.
    pub reembedded: usize,
}

impl ChurnStats {
    /// Whether every counter is zero (no churn observed).
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Adds another slot's counters into this cumulative tally.
    pub fn absorb(&mut self, other: &ChurnStats) {
        self.events += other.events;
        self.stranded += other.stranded;
        self.evicted += other.evicted;
        self.reembedded += other.reembedded;
    }
}

/// What to do with requests stranded by a churn capacity loss.
///
/// The engine releases every stranded request's resources through the
/// regular departure path, then asks the policy which of them to
/// *re-offer* to the algorithm in the same slot (same id, remaining
/// duration). Re-offered requests the algorithm re-accepts keep their
/// original accounting; everything else is reported as preempted.
pub trait ReembedPolicy: Send {
    /// Picks the subset of `stranded` (sorted by ascending id) to
    /// re-offer at slot `t`. Ids not in the returned set are evicted.
    fn reembed(&mut self, t: Slot, stranded: &[Request]) -> Vec<RequestId>;
}

/// Re-offer every stranded request (the default policy).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReembedAll;

impl ReembedPolicy for ReembedAll {
    fn reembed(&mut self, _t: Slot, stranded: &[Request]) -> Vec<RequestId> {
        stranded.iter().map(|r| r.id).collect()
    }
}

/// Evict every stranded request (no second chance).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvictAll;

impl ReembedPolicy for EvictAll {
    fn reembed(&mut self, _t: Slot, _stranded: &[Request]) -> Vec<RequestId> {
        Vec::new()
    }
}

/// Config-level selector for the builtin [`ReembedPolicy`] impls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReembedKind {
    /// Re-offer every stranded request ([`ReembedAll`]).
    #[default]
    Reembed,
    /// Evict every stranded request ([`EvictAll`]).
    Evict,
}

impl ReembedKind {
    /// Instantiates the selected policy.
    pub fn policy(self) -> Box<dyn ReembedPolicy> {
        match self {
            ReembedKind::Reembed => Box::new(ReembedAll),
            ReembedKind::Evict => Box::new(EvictAll),
        }
    }
}

/// Observer verdict after each slot: keep going or stop the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimControl {
    /// Continue with the next slot.
    Continue,
    /// Stop the simulation after this slot (early stop).
    Stop,
}

/// Per-slot callbacks invoked by [`run_stream`].
///
/// All methods have no-op defaults, so an observer implements only what
/// it needs. Observers compose with [`crate::observe::Tee`].
pub trait SimObserver {
    /// A new slot begins (before departures are released).
    fn on_slot_start(&mut self, _t: Slot) {}

    /// The slot carried substrate churn: `churn` holds this slot's
    /// counters. Called after [`SimObserver::on_slot_start`] and before
    /// the arrival/preemption callbacks, and only on slots whose
    /// counters are non-zero.
    fn on_churn(&mut self, _t: Slot, _churn: &ChurnStats) {}

    /// An arriving request was decided: `outcome.status` is
    /// [`RequestStatus::Accepted`] or [`RequestStatus::Rejected`].
    /// Called once per request, in processing order.
    fn on_arrival(&mut self, _outcome: &RequestOutcome) {}

    /// A previously accepted request was evicted; `outcome.status` is
    /// [`RequestStatus::Preempted`] and supersedes the `Accepted`
    /// outcome reported for the same id earlier.
    fn on_preemption(&mut self, _outcome: &RequestOutcome) {}

    /// The slot is complete: aggregate metrics plus the algorithm for
    /// drill-down inspection (downcast via
    /// [`OnlineAlgorithm::as_any`]). Return [`SimControl::Stop`] to end
    /// the run early.
    fn on_slot_end(
        &mut self,
        _t: Slot,
        _metrics: &SlotMetrics,
        _algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        SimControl::Continue
    }

    /// The slot is fully committed: invoked after
    /// [`SimObserver::on_slot_end`] with a checkpointable [`EngineView`]
    /// of the engine's internal state — **including when the slot's
    /// `on_slot_end` asked to stop**, so an early-stopped run still
    /// leaves a restorable checkpoint at its final slot (see
    /// [`crate::observe::Checkpointer`]).
    fn on_slot_committed(&mut self, _view: &EngineView<'_>) {}
}

/// Blanket impl so `&mut observer` can be passed down call chains.
impl<O: SimObserver + ?Sized> SimObserver for &mut O {
    fn on_slot_start(&mut self, t: Slot) {
        (**self).on_slot_start(t);
    }
    fn on_churn(&mut self, t: Slot, churn: &ChurnStats) {
        (**self).on_churn(t, churn);
    }
    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        (**self).on_arrival(outcome);
    }
    fn on_preemption(&mut self, outcome: &RequestOutcome) {
        (**self).on_preemption(outcome);
    }
    fn on_slot_end(
        &mut self,
        t: Slot,
        metrics: &SlotMetrics,
        algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        (**self).on_slot_end(t, metrics, algorithm)
    }
    fn on_slot_committed(&mut self, view: &EngineView<'_>) {
        (**self).on_slot_committed(view);
    }
}

/// Marker: this observer is safe to run on the pipelined engine's
/// observer stage ([`run_stream_pipelined`]).
///
/// The contract: the observer's [`SimObserver::on_slot_end`] does not
/// inspect the `algorithm` argument beyond [`OnlineAlgorithm::name`]
/// (the pipelined stage hands it a detached stub — the live algorithm
/// is already processing a later slot on another thread), and its
/// [`SimObserver::on_slot_committed`] uses the [`EngineView`] only
/// through [`EngineView::checkpoint`] / the owned accessors (the live
/// borrows return `None` there). All recording observers in
/// [`crate::observe`] qualify; [`crate::observe::Inspect`] — whose whole
/// point is the live algorithm — does not, and the compiler enforces
/// that it never reaches the pipelined entry points.
pub trait PipelineSafe: SimObserver {}

impl<O: PipelineSafe + ?Sized> PipelineSafe for &mut O {}

/// The engine's mutable state between slots: the `O(active)` working
/// set ([`run_stream`] keeps nothing else). Factored out of the run
/// loop so checkpoints can serialize it and [`run_stream_from`] can
/// rebuild it.
#[derive(Debug, Clone, Default)]
pub struct EngineState {
    /// Active accepted requests (the O(active) working set).
    alive: BTreeMap<RequestId, Request>,
    /// Departure calendar: slot -> accepted request ids departing then
    /// (in acceptance order — the order departures are released in).
    departures_at: BTreeMap<Slot, Vec<RequestId>>,
    /// Requested-demand decrements: slot -> total demand departing then
    /// (all arrivals, accepted or not — the "requested" curve of Fig. 8).
    requested_drop: BTreeMap<Slot, f64>,
    requested_active: f64,
    allocated_active: f64,
    stats: StreamStats,
    /// The lowest slot the next event may carry (slots strictly
    /// increase); after a resume this is `checkpoint slot + 1`.
    next_min_slot: u64,
    /// Folded substrate churn, lazily created on the first churn event
    /// (`None` on a static substrate, so churn-free runs cost nothing).
    churn: Option<ChurnState>,
}

impl EngineState {
    /// The state of a run that has not processed any slot.
    pub fn fresh() -> Self {
        Self::default()
    }

    /// The engine counters accumulated so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Number of currently active (accepted) requests.
    pub fn active_count(&self) -> usize {
        self.alive.len()
    }

    /// The first slot the next event may carry.
    pub fn next_slot(&self) -> u64 {
        self.next_min_slot
    }

    /// The folded churn state, if any churn event has been applied.
    pub fn churn_state(&self) -> Option<&ChurnState> {
        self.churn.as_ref()
    }

    /// Whether a request admitted earlier is still active (holding
    /// resources) at the current slot boundary.
    pub fn is_active(&self, id: RequestId) -> bool {
        self.alive.contains_key(&id)
    }

    /// Overwrites the wall-clock counter [`StreamStats::online_secs`].
    /// External drivers own wall-clock accounting (see
    /// [`EngineState::step`]); [`crate::metrics::Summary::fingerprint`]
    /// ignores this field, so it never perturbs determinism checks.
    pub fn set_online_secs(&mut self, secs: f64) {
        self.stats.online_secs = secs;
    }

    /// Overwrites the allocated-demand counter. Test seam for the
    /// `strict-invariants` auditor (corrupts state on purpose so the
    /// audit can be shown to catch it); never called by the engine.
    #[doc(hidden)]
    pub fn debug_set_allocated_active(&mut self, value: f64) {
        self.allocated_active = value;
    }

    /// Drops the departure calendar, leaving alive requests with no
    /// scheduled departure. Test seam for the `strict-invariants`
    /// auditor; never called by the engine.
    #[doc(hidden)]
    pub fn debug_clear_departures(&mut self) {
        self.departures_at.clear();
    }

    /// Schedules an active request to depart at the next stepped slot,
    /// ahead of its natural expiry — the `DEPART`-initiated early
    /// release used by the `vne-serve` daemon. Returns whether the
    /// request was active (and is now scheduled); an unknown or already
    /// departed id returns `false` and changes nothing.
    ///
    /// The request's resources are freed through the regular departure
    /// path when the next slot is stepped, so the algorithm sees an
    /// ordinary departure. Its original calendar entry becomes stale,
    /// which is harmless: the drain releases only ids still alive (the
    /// same property the churn eviction path relies on). The
    /// *requested*-demand curve keeps the original duration — early
    /// release frees capacity, it does not rewrite what was asked for.
    pub fn release_early(&mut self, id: RequestId) -> bool {
        if !self.alive.contains_key(&id) {
            return false;
        }
        let slot = Slot::try_from(self.next_min_slot).unwrap_or(Slot::MAX);
        self.departures_at.entry(slot).or_default().push(id);
        true
    }

    /// Advances the engine through exactly one slot — the public
    /// single-slot seam used by external drivers such as the
    /// `vne-serve` actor. This is the *identical* per-slot code path
    /// [`run_stream`] executes (slot assertion, departures, churn,
    /// algorithm step, counter fold, observer fan-out up to
    /// [`SimObserver::on_slot_end`]); `N` calls over the same slot
    /// events produce byte-identical observer state and stats to one
    /// `run_stream` over those events (pinned by the `actor_seam`
    /// parity test).
    ///
    /// What the caller still owns, mirroring the tail of the engine
    /// loop: updating [`StreamStats::online_secs`] (wall-clock is the
    /// driver's), emitting [`SimObserver::on_slot_committed`] with
    /// [`EngineState::view`] (checkpoint cadence), and honoring the
    /// returned [`SimControl`] (setting
    /// [`StreamStats::stopped_early`] if it stops).
    ///
    /// # Panics
    ///
    /// Panics like [`run_stream`] if `event.slot` is not strictly
    /// greater than every slot stepped before.
    pub fn step<O>(
        &mut self,
        algorithm: &mut dyn OnlineAlgorithm,
        substrate: &SubstrateNetwork,
        event: SlotEvents,
        observer: &mut O,
        policy: &mut dyn ReembedPolicy,
    ) -> (SlotStep, SimControl)
    where
        O: SimObserver + ?Sized,
    {
        let t = event.slot;
        observer.on_slot_start(t);
        let step = advance_slot(self, algorithm, substrate, event, policy);
        if !step.churn.is_empty() {
            observer.on_churn(t, &step.churn);
        }
        for outcome in &step.arrivals {
            observer.on_arrival(outcome);
        }
        for outcome in &step.preemptions {
            observer.on_preemption(outcome);
        }
        let control = observer.on_slot_end(t, &step.metrics, algorithm);
        (step, control)
    }

    /// Re-imposes the folded churn state's effective capacities on
    /// `algorithm` (no-op when the state carries no churn). Effective
    /// capacities are absolute, so this is idempotent — the
    /// post-restore fixup shared by [`restore_engine`] and external
    /// multi-engine drivers (the shard coordinator) restoring per-shard
    /// states, whose algorithm blobs snapshot loads but not churned
    /// capacities.
    pub fn reapply_churn(&self, algorithm: &mut dyn OnlineAlgorithm, substrate: &SubstrateNetwork) {
        if let Some(churn) = &self.churn {
            algorithm.apply_churn(&churn.effective(substrate));
        }
    }

    /// A live, checkpointable [`EngineView`] of the engine after the
    /// most recently stepped slot — what external drivers hand to
    /// [`SimObserver::on_slot_committed`] (and through it to a
    /// [`crate::observe::Checkpointer`]) after each [`EngineState::step`].
    ///
    /// # Panics
    ///
    /// Panics if no slot has been stepped yet (there is no committed
    /// slot to view).
    pub fn view<'a>(&'a self, algorithm: &'a dyn OnlineAlgorithm) -> EngineView<'a> {
        assert!(
            self.next_min_slot > 0,
            "EngineState::view requires at least one stepped slot"
        );
        EngineView {
            slot: (self.next_min_slot - 1) as Slot,
            stats: self.stats,
            active: self.active_count(),
            source: ViewSource::Live {
                state: self,
                algorithm,
            },
        }
    }
}

/// Checkpointing: everything [`run_stream`] keeps between slots. The
/// `alive` map is ordered by request id (its natural `BTreeMap`
/// order); the departure calendar's per-slot vectors keep their order
/// (it is the release order, and release order feeds the algorithm's
/// departure slice).
impl Snapshot for EngineState {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_seq(self.alive.values());
        w.write(&self.departures_at);
        w.write(&self.requested_drop);
        w.write_f64(self.requested_active);
        w.write_f64(self.allocated_active);
        w.write_u32(self.stats.slots_run);
        w.write_usize(self.stats.arrivals);
        w.write_usize(self.stats.peak_active);
        w.write_f64(self.stats.online_secs);
        w.write_bool(self.stats.stopped_early);
        w.write_u64(self.next_min_slot);
        w.write(&self.churn);
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let alive_list: Vec<Request> = r.read_seq()?;
        let departures_at: BTreeMap<Slot, Vec<RequestId>> = r.read()?;
        let requested_drop: BTreeMap<Slot, f64> = r.read()?;
        let requested_active = r.read_f64()?;
        let allocated_active = r.read_f64()?;
        let stats = StreamStats {
            slots_run: r.read_u32()?,
            arrivals: r.read_usize()?,
            peak_active: r.read_usize()?,
            online_secs: r.read_f64()?,
            stopped_early: r.read_bool()?,
        };
        let next_min_slot = r.read_u64()?;
        let churn: Option<ChurnState> = r.read()?;
        r.finish()?;
        self.alive = alive_list.into_iter().map(|r| (r.id, r)).collect();
        self.departures_at = departures_at;
        self.requested_drop = requested_drop;
        self.requested_active = requested_active;
        self.allocated_active = allocated_active;
        self.stats = stats;
        self.next_min_slot = next_min_slot;
        self.churn = churn;
        Ok(())
    }
}

/// The engine+algorithm state captured at one slot boundary — what an
/// [`EngineView`] wraps when it cannot borrow a live engine.
///
/// Two producers exist: the pipelined algorithm stage captures one per
/// [`PipelineConfig::capture_every`] cadence slot, and external
/// multi-engine drivers (the shard coordinator) assemble one on demand
/// inside [`EngineView::deferred`] — there the blobs are a composite
/// over every shard's state rather than a single engine snapshot.
#[derive(Debug, Clone)]
pub struct EngineCapture {
    /// The engine-state snapshot (or a driver-defined composite of
    /// several).
    pub engine: StateBlob,
    /// `None` when the algorithm does not support snapshots — the
    /// observer-stage [`EngineView::checkpoint`] then reports the same
    /// [`StateError::Unsupported`] the serial path would.
    pub algorithm_state: Option<StateBlob>,
}

/// Where an [`EngineView`] gets its state from: a live borrow of the
/// serial engine loop, an owned capture shipped across the pipeline's
/// record channel (the observer stage runs while the algorithm stage is
/// already slots ahead, so it cannot borrow the live state), or a
/// deferred capture produced only if a checkpoint is actually taken.
enum ViewSource<'a> {
    Live {
        state: &'a EngineState,
        algorithm: &'a dyn OnlineAlgorithm,
    },
    Captured {
        algorithm_name: &'a str,
        capture: Option<&'a EngineCapture>,
    },
    Deferred {
        algorithm_name: &'a str,
        produce: &'a dyn Fn() -> Result<EngineCapture, StateError>,
    },
}

/// A checkpointable view of the engine handed to
/// [`SimObserver::on_slot_committed`] after every slot.
///
/// On the serial path it borrows the live engine and algorithm; on the
/// pipelined path it wraps the owned state capture taken by the
/// algorithm stage at this slot (if one was configured). Either way,
/// [`EngineView::checkpoint`] produces the slot's [`EngineCheckpoint`].
pub struct EngineView<'a> {
    slot: Slot,
    stats: StreamStats,
    active: usize,
    source: ViewSource<'a>,
}

impl fmt::Debug for EngineView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineView")
            .field("slot", &self.slot)
            .field("algorithm", &self.algorithm_name())
            .field("active", &self.active)
            .finish()
    }
}

impl<'a> EngineView<'a> {
    /// A view whose state capture is produced lazily, the seam for
    /// external multi-engine drivers (the shard coordinator): `produce`
    /// is invoked only if [`EngineView::checkpoint`] is actually called
    /// on this view, so emitting the commit hook every slot costs
    /// nothing on slots nobody checkpoints.
    ///
    /// `stats` and `active` are the driver's *merged* counters as of
    /// this slot; `produce` returns the (possibly composite) capture or
    /// the error to surface from `checkpoint`.
    pub fn deferred(
        slot: Slot,
        stats: StreamStats,
        active: usize,
        algorithm_name: &'a str,
        produce: &'a dyn Fn() -> Result<EngineCapture, StateError>,
    ) -> Self {
        Self {
            slot,
            stats,
            active,
            source: ViewSource::Deferred {
                algorithm_name,
                produce,
            },
        }
    }

    /// The slot that just committed.
    pub fn slot(&self) -> Slot {
        self.slot
    }

    /// The engine counters as of this slot.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Number of active (accepted) requests after the slot.
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// The running algorithm's name.
    pub fn algorithm_name(&self) -> &'a str {
        match self.source {
            ViewSource::Live { algorithm, .. } => algorithm.name(),
            ViewSource::Captured { algorithm_name, .. }
            | ViewSource::Deferred { algorithm_name, .. } => algorithm_name,
        }
    }

    /// The live engine state — `None` on the pipelined observer stage,
    /// where the engine has already moved past this slot.
    pub fn live_state(&self) -> Option<&'a EngineState> {
        match self.source {
            ViewSource::Live { state, .. } => Some(state),
            ViewSource::Captured { .. } | ViewSource::Deferred { .. } => None,
        }
    }

    /// The live algorithm (drill-down via [`OnlineAlgorithm::as_any`]) —
    /// `None` on the pipelined observer stage.
    pub fn live_algorithm(&self) -> Option<&'a dyn OnlineAlgorithm> {
        match self.source {
            ViewSource::Live { algorithm, .. } => Some(algorithm),
            ViewSource::Captured { .. } | ViewSource::Deferred { .. } => None,
        }
    }

    /// Serializes a full [`EngineCheckpoint`] at this slot. The caller
    /// supplies the serialized state of whatever observers must survive
    /// the resume (e.g. a [`crate::observe::WindowSummary`] snapshot) —
    /// the engine cannot see them, only their owner can.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Unsupported`] when the running algorithm
    /// does not implement [`OnlineAlgorithm::snapshot_state`], or when
    /// this is a pipelined view of a slot the algorithm stage captured
    /// no state for (set [`PipelineConfig::capture_every`] to the
    /// checkpoint cadence).
    pub fn checkpoint(&self, observer_state: StateBlob) -> Result<EngineCheckpoint, StateError> {
        match self.source {
            ViewSource::Live { state, algorithm } => {
                let algorithm_state = algorithm.snapshot_state().ok_or_else(|| {
                    StateError::Unsupported(format!("algorithm {}", algorithm.name()))
                })?;
                Ok(EngineCheckpoint {
                    slot: self.slot,
                    algorithm: algorithm.name().to_string(),
                    engine: state.snapshot(),
                    algorithm_state,
                    observer_state,
                })
            }
            ViewSource::Captured {
                algorithm_name,
                capture,
            } => {
                let capture = capture.ok_or_else(|| {
                    StateError::Unsupported(format!(
                        "no engine capture at slot {}; pipelined runs capture state only at \
                         the PipelineConfig::capture_every cadence",
                        self.slot
                    ))
                })?;
                let algorithm_state = capture.algorithm_state.clone().ok_or_else(|| {
                    StateError::Unsupported(format!("algorithm {algorithm_name}"))
                })?;
                Ok(EngineCheckpoint {
                    slot: self.slot,
                    algorithm: algorithm_name.to_string(),
                    engine: capture.engine.clone(),
                    algorithm_state,
                    observer_state,
                })
            }
            ViewSource::Deferred {
                algorithm_name,
                produce,
            } => {
                let capture = produce()?;
                let algorithm_state = capture.algorithm_state.ok_or_else(|| {
                    StateError::Unsupported(format!("algorithm {algorithm_name}"))
                })?;
                Ok(EngineCheckpoint {
                    slot: self.slot,
                    algorithm: algorithm_name.to_string(),
                    engine: capture.engine,
                    algorithm_state,
                    observer_state,
                })
            }
        }
    }
}

/// A complete, serializable snapshot of a streaming run after one slot:
/// enough to finish the run later ([`run_stream_from`]) or to branch a
/// what-if fork from the middle of a stream
/// ([`crate::scenario::Scenario::fork_at`]), with results byte-identical
/// to the uninterrupted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineCheckpoint {
    /// The last slot the checkpointed run completed; the resume
    /// consumes events from `slot + 1` on.
    pub slot: Slot,
    /// Name of the algorithm that produced `algorithm_state` (validated
    /// on resume).
    pub algorithm: String,
    /// The [`EngineState`] snapshot.
    pub engine: StateBlob,
    /// The algorithm's [`OnlineAlgorithm::snapshot_state`] blob.
    pub algorithm_state: StateBlob,
    /// The resumable observer state (owner-defined; often a
    /// [`crate::observe::WindowSummary`] snapshot).
    pub observer_state: StateBlob,
}

impl EngineCheckpoint {
    /// Magic + version prefix of the serialized form. V2 added the
    /// folded churn state to the engine blob.
    pub const MAGIC: [u8; 8] = *b"VNECKPT2";

    /// The pre-churn V1 magic, refused with a descriptive error.
    pub const LEGACY_MAGIC_V1: [u8; 8] = *b"VNECKPT1";

    /// Serializes the checkpoint for storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        for b in Self::MAGIC {
            w.write_u8(b);
        }
        w.write_u32(self.slot);
        w.write_str(&self.algorithm);
        w.write_blob(&self.engine);
        w.write_blob(&self.algorithm_state);
        w.write_blob(&self.observer_state);
        w.finish().into_bytes()
    }

    /// Parses a checkpoint serialized by [`EngineCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on bad magic or malformed content.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::from_bytes(bytes);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.read_u8()?;
        }
        if magic == Self::LEGACY_MAGIC_V1 {
            return Err(StateError::Corrupt(
                "legacy V1 engine checkpoint: its engine state predates substrate churn \
                 and cannot be resumed by this version; re-run from scratch"
                    .into(),
            ));
        }
        if magic != Self::MAGIC {
            return Err(StateError::Corrupt(format!(
                "bad checkpoint magic {magic:02x?}"
            )));
        }
        let checkpoint = Self {
            slot: r.read_u32()?,
            algorithm: r.read_str()?,
            engine: r.read_blob()?,
            algorithm_state: r.read_blob()?,
            observer_state: r.read_blob()?,
        };
        r.finish()?;
        Ok(checkpoint)
    }
}

/// Runs `algorithm` over a lazy stream of slot events.
///
/// Slots must be yielded in strictly increasing order (enforced by an
/// assertion); quiet slots may be skipped — departures falling into a
/// gap are released at the next yielded slot, and only yielded slots
/// get a [`SimObserver::on_slot_end`] call. Use [`slot_events`] to
/// adapt a pre-collected trace. Engine state is bounded by the number
/// of simultaneously active requests: departures of accepted requests
/// are scheduled in a calendar keyed by departure slot, and the
/// requested-demand curve is maintained incrementally.
///
/// # Panics
///
/// Panics if the stream yields a slot that is not strictly greater
/// than its predecessor.
pub fn run_stream<E, O>(
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
) -> StreamStats
where
    E: IntoIterator<Item = SlotEvents>,
    O: SimObserver + ?Sized,
{
    run_stream_with(algorithm, substrate, events, observer, &mut ReembedAll)
}

/// [`run_stream`] with an explicit [`ReembedPolicy`] deciding the fate
/// of requests stranded by substrate churn. [`run_stream`] defaults to
/// [`ReembedAll`]; churn-free streams never consult the policy.
pub fn run_stream_with<E, O>(
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
    policy: &mut dyn ReembedPolicy,
) -> StreamStats
where
    E: IntoIterator<Item = SlotEvents>,
    O: SimObserver + ?Sized,
{
    let mut state = EngineState::fresh();
    drive(&mut state, algorithm, substrate, events, observer, policy)
}

/// Resumes a checkpointed run: restores the algorithm, the observer and
/// the engine state from `checkpoint`, drops the events the checkpoint
/// already consumed (slots `<= checkpoint.slot`; lazy sources can
/// fast-forward cheaper via their `skip_to`), and finishes the run.
///
/// `algorithm` and `observer` must be freshly constructed with the same
/// configuration as the checkpointed run (the deterministic scenario
/// pipeline does this per seed); their mutable state is replaced from
/// the checkpoint. The finished run is **byte-identical** to the
/// uninterrupted one — the guarantee pinned by the resume-determinism
/// test battery.
///
/// # Errors
///
/// Returns a [`StateError`] when the algorithm's name does not match
/// the checkpoint or any blob fails to restore.
///
/// # Panics
///
/// Panics like [`run_stream`] if the remaining stream yields
/// non-increasing slots.
pub fn run_stream_from<E, O>(
    checkpoint: &EngineCheckpoint,
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
) -> Result<StreamStats, StateError>
where
    E: IntoIterator<Item = SlotEvents>,
    O: SimObserver + Snapshot + ?Sized,
{
    run_stream_from_with(
        checkpoint,
        algorithm,
        substrate,
        events,
        observer,
        &mut ReembedAll,
    )
}

/// [`run_stream_from`] with an explicit [`ReembedPolicy`] (the resumed
/// segment must use the same policy as the checkpointed run to stay
/// byte-identical).
pub fn run_stream_from_with<E, O>(
    checkpoint: &EngineCheckpoint,
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
    policy: &mut dyn ReembedPolicy,
) -> Result<StreamStats, StateError>
where
    E: IntoIterator<Item = SlotEvents>,
    O: SimObserver + Snapshot + ?Sized,
{
    let mut state = restore_engine(checkpoint, algorithm, substrate, observer)?;
    let consumed = state.next_min_slot;
    let remaining = events
        .into_iter()
        .skip_while(move |ev| u64::from(ev.slot) < consumed);
    Ok(drive(
        &mut state, algorithm, substrate, remaining, observer, policy,
    ))
}

/// Restores a checkpoint into a live [`EngineState`] without driving
/// any events — the shared first half of [`run_stream_from`] and the
/// entry point for external drivers (the `vne-serve` daemon) that step
/// the engine themselves via [`EngineState::step`].
///
/// Restores, in order: the algorithm's state blob (after checking its
/// [`OnlineAlgorithm::name`] against the checkpoint), the observer, the
/// engine counters/calendar, and — if the checkpoint carries folded
/// churn — re-imposes the effective capacities on the algorithm
/// (idempotent: effective capacities are absolute). The returned
/// state's `stopped_early` flag is cleared so the resumed segment gets
/// its own early-stop verdict; its [`EngineState::next_slot`] tells the
/// caller which slots the checkpoint already consumed.
///
/// # Errors
///
/// Returns a [`StateError`] when the algorithm's name does not match
/// the checkpoint or any blob fails to restore.
pub fn restore_engine<O>(
    checkpoint: &EngineCheckpoint,
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    observer: &mut O,
) -> Result<EngineState, StateError>
where
    O: Snapshot + ?Sized,
{
    if algorithm.name() != checkpoint.algorithm {
        return Err(StateError::Mismatch {
            expected: format!("algorithm {}", checkpoint.algorithm),
            found: format!("algorithm {}", algorithm.name()),
        });
    }
    if ShardCheckpoint::is_packed(&checkpoint.engine) {
        return Err(StateError::Mismatch {
            expected: "a monolithic engine checkpoint".into(),
            found: "a packed multi-shard checkpoint (resume it with a shard coordinator)".into(),
        });
    }
    algorithm.restore_state(&checkpoint.algorithm_state)?;
    observer.restore(&checkpoint.observer_state)?;
    let mut state = EngineState::fresh();
    state.restore(&checkpoint.engine)?;
    // The algorithm blob does not carry churned capacities (ledgers
    // snapshot loads only); re-derive them from the folded churn state.
    state.reapply_churn(algorithm, substrate);
    // The resumed segment gets its own early-stop verdict.
    state.stats.stopped_early = false;
    Ok(state)
}

/// Everything one slot produces for the observer side: the decided
/// arrival outcomes (in processing order), the preemption outcomes (in
/// the algorithm's eviction order) and the slot metrics. Shared by the
/// serial and pipelined drivers so both compute bit-identical values,
/// and returned by [`EngineState::step`] so external drivers (the
/// `vne-serve` actor) can route per-request decisions without a private
/// copy of the slot loop.
#[derive(Debug, Clone)]
pub struct SlotStep {
    /// Decided arrival outcomes, in processing order (`Accepted` or
    /// `Rejected`).
    pub arrivals: Vec<RequestOutcome>,
    /// Preemption outcomes: churn evictions first, then the algorithm's
    /// own evictions in its order.
    pub preemptions: Vec<RequestOutcome>,
    /// Aggregate metrics after the slot.
    pub metrics: SlotMetrics,
    /// The slot's churn counters (all-zero without churn).
    pub churn: ChurnStats,
}

/// Finds the requests stranded by a capacity loss: with the slot's
/// scheduled departures already discounted (the algorithm releases them
/// inside `process_slot`, so its ledger still carries their loads),
/// evicts alive requests newest-first until no element exceeds its
/// effective capacity. Requests whose footprint the algorithm cannot
/// report (`footprint_of` → `None`) are never selected — such
/// algorithms self-heal on their next `process_slot`.
///
/// Returns the stranded requests sorted by ascending id.
fn find_stranded(
    state: &EngineState,
    algorithm: &dyn OnlineAlgorithm,
    departures: &[Request],
    effective: &EffectiveCapacities,
) -> Vec<Request> {
    let loads = algorithm.loads();
    let mut node_load: Vec<f64> = (0..effective.node.len())
        .map(|i| loads.node_load(NodeId::from_index(i)))
        .collect();
    let mut link_load: Vec<f64> = (0..effective.link.len())
        .map(|i| loads.link_load(LinkId::from_index(i)))
        .collect();
    for d in departures {
        if let Some(fp) = algorithm.footprint_of(d.id) {
            for &(n, x) in fp.nodes() {
                node_load[n.index()] -= x * d.demand;
            }
            for &(l, x) in fp.links() {
                link_load[l.index()] -= x * d.demand;
            }
        }
    }
    let tol = |cap: f64| vne_model::load::CAPACITY_EPS * cap.max(1.0);
    let over_node = |load: &[f64], n: usize| load[n] > effective.node[n] + tol(effective.node[n]);
    let over_link = |load: &[f64], l: usize| load[l] > effective.link[l] + tol(effective.link[l]);
    let any_over = |node_load: &[f64], link_load: &[f64]| {
        (0..node_load.len()).any(|n| over_node(node_load, n))
            || (0..link_load.len()).any(|l| over_link(link_load, l))
    };

    let mut stranded = Vec::new();
    if !any_over(&node_load, &link_load) {
        return stranded;
    }
    // Newest-first (descending id): later acceptances yield to earlier
    // ones, mirroring the seniority order of the arrival sequence.
    let mut candidates: Vec<&Request> = state.alive.values().collect();
    candidates.sort_unstable_by_key(|r| std::cmp::Reverse(r.id));
    for r in candidates {
        if !any_over(&node_load, &link_load) {
            break;
        }
        let Some(fp) = algorithm.footprint_of(r.id) else {
            continue;
        };
        // Skip requests whose allocation touches no overloaded element.
        let contributes = fp
            .nodes()
            .iter()
            .any(|&(n, x)| x * r.demand > 0.0 && over_node(&node_load, n.index()))
            || fp
                .links()
                .iter()
                .any(|&(l, x)| x * r.demand > 0.0 && over_link(&link_load, l.index()));
        if !contributes {
            continue;
        }
        for &(n, x) in fp.nodes() {
            node_load[n.index()] -= x * r.demand;
        }
        for &(l, x) in fp.links() {
            link_load[l.index()] -= x * r.demand;
        }
        stranded.push(r.clone());
    }
    stranded.sort_unstable_by_key(|r| r.id);
    stranded
}

/// Advances the engine state through one slot: releases departures,
/// runs the algorithm, applies acceptances/preemptions, and updates the
/// counters (everything except observer dispatch and wall-clock).
fn advance_slot(
    state: &mut EngineState,
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    event: SlotEvents,
    policy: &mut dyn ReembedPolicy,
) -> SlotStep {
    let t = event.slot;
    assert!(
        u64::from(t) >= state.next_min_slot,
        "slot events must be strictly increasing (got slot {t} after {})",
        state.next_min_slot - 1
    );
    state.next_min_slot = u64::from(t) + 1;

    // Departures of accepted-and-still-alive requests, up to and
    // including this slot (a sparse stream may skip quiet slots;
    // departures falling into the gap are released now).
    let mut departures: Vec<Request> = Vec::new();
    while let Some(entry) = state.departures_at.first_entry() {
        if *entry.key() > t {
            break;
        }
        for id in entry.remove() {
            if let Some(r) = state.alive.remove(&id) {
                state.allocated_active -= r.demand;
                departures.push(r);
            }
        }
    }
    while let Some(entry) = state.requested_drop.first_entry() {
        if *entry.key() > t {
            break;
        }
        state.requested_active -= entry.remove();
    }

    // Substrate churn takes effect before this slot's arrivals: fold
    // the events, hand the algorithm its new effective capacities,
    // detect stranded requests, and route them through the policy.
    // Stranded requests are released via the regular departure path (the
    // algorithm frees their resources inside `process_slot`); the subset
    // the policy re-offers is prepended to the arrivals with the same id
    // and the remaining duration — ids stay ascending because stranded
    // requests predate every new arrival.
    let mut churn_stats = ChurnStats::default();
    let mut preemptions: Vec<RequestOutcome> = Vec::new();
    let mut reoffer_originals: BTreeMap<RequestId, Request> = BTreeMap::new();
    let mut offered: Vec<Request> = Vec::new();
    if !event.churn.is_empty() {
        churn_stats.events = event.churn.len();
        let churn = state
            .churn
            .get_or_insert_with(|| ChurnState::pristine(substrate));
        for ev in &event.churn {
            churn.apply(ev);
        }
        let effective = churn.effective(substrate);
        algorithm.apply_churn(&effective);

        let stranded = find_stranded(state, algorithm, &departures, &effective);
        churn_stats.stranded = stranded.len();
        if !stranded.is_empty() {
            let chosen = policy.reembed(t, &stranded);
            for original in stranded {
                let original = state
                    .alive
                    .remove(&original.id)
                    .expect("stranded requests are alive");
                state.allocated_active -= original.demand;
                // The stale departure-calendar entry at the original
                // departure slot stays; release checks `alive` first.
                departures.push(original.clone());
                if chosen.contains(&original.id) {
                    // Remaining duration ≥ 1: alive means departure > t.
                    offered.push(Request {
                        id: original.id,
                        arrival: t,
                        duration: original.departure() - t,
                        ingress: original.ingress,
                        app: original.app,
                        demand: original.demand,
                    });
                    reoffer_originals.insert(original.id, original);
                } else {
                    churn_stats.evicted += 1;
                    preemptions.push(RequestOutcome::of(&original, RequestStatus::Preempted(t)));
                }
            }
            offered.sort_unstable_by_key(|r| r.id);
        }
    }

    let arrivals = event.arrivals;
    let new_arrivals = arrivals.len();
    // Re-offers do not touch the requested curve: their original arrival
    // already counted, and their departure slot is unchanged.
    for r in &arrivals {
        state.requested_active += r.demand;
        *state.requested_drop.entry(r.departure()).or_insert(0.0) += r.demand;
    }
    offered.extend(arrivals);
    let outcome = algorithm.process_slot(t, &departures, &offered);
    state.stats.arrivals += new_arrivals;

    let mut arrival_outcomes = Vec::with_capacity(new_arrivals);
    for r in offered {
        let accepted = outcome.accepted.contains(&r.id);
        if let Some(original) = reoffer_originals.remove(&r.id) {
            // A re-offered stranded request: re-accepted keeps its
            // original accounting (no new arrival outcome — the id was
            // reported accepted at its original arrival); rejected means
            // it is preempted now.
            if accepted {
                churn_stats.reembedded += 1;
                state.allocated_active += original.demand;
                state.alive.insert(original.id, original);
            } else {
                churn_stats.evicted += 1;
                preemptions.push(RequestOutcome::of(&original, RequestStatus::Preempted(t)));
            }
            continue;
        }
        let status = if accepted {
            RequestStatus::Accepted
        } else {
            RequestStatus::Rejected
        };
        arrival_outcomes.push(RequestOutcome::of(&r, status));
        if accepted {
            state.allocated_active += r.demand;
            state
                .departures_at
                .entry(r.departure())
                .or_default()
                .push(r.id);
            state.alive.insert(r.id, r);
        }
    }
    state.stats.peak_active = state.stats.peak_active.max(state.alive.len());
    for &p in &outcome.preempted {
        if let Some(r) = state.alive.remove(&p) {
            state.allocated_active -= r.demand;
            preemptions.push(RequestOutcome::of(&r, RequestStatus::Preempted(t)));
        }
    }

    let metrics = SlotMetrics {
        requested_demand: state.requested_active,
        allocated_demand: state.allocated_active,
        resource_cost: algorithm.loads().cost_per_slot(substrate),
    };
    state.stats.slots_run = t + 1;

    #[cfg(feature = "strict-invariants")]
    vne_model::invariant::enforce(&format!("engine slot {t}"), &audit_engine(state, algorithm));

    SlotStep {
        arrivals: arrival_outcomes,
        preemptions,
        metrics,
        churn: churn_stats,
    }
}

/// Audits the cross-structure invariants tying the engine's demand
/// bookkeeping to the algorithm's load ledger:
///
/// 1. the allocated-demand counter equals the sum of alive demands;
/// 2. every alive request is on the departure calendar (stale calendar
///    entries for already-departed ids are fine — release checks
///    `alive` first — but an alive request *missing* from the calendar
///    would hold resources forever);
/// 3. the ledger holds no negative or oversubscribed load
///    ([`vne_model::invariant::audit_ledger`]) — skipped once churn has
///    folded in, because [`LoadLedger::set_capacities`] documents that
///    loads may transiently exceed shrunk capacities;
/// 4. when the algorithm reports a footprint for *every* alive request,
///    the ledger's per-element loads equal the sum of those alive
///    footprints (algorithms without [`OnlineAlgorithm::footprint_of`]
///    skip this check).
///
/// Returns the violations instead of panicking so tests can inspect
/// them; the `strict-invariants` per-slot hook feeds the result through
/// [`vne_model::invariant::enforce`].
///
/// [`LoadLedger::set_capacities`]: vne_model::load::LoadLedger::set_capacities
pub fn audit_engine(
    state: &EngineState,
    algorithm: &dyn OnlineAlgorithm,
) -> Vec<InvariantViolation> {
    use std::collections::BTreeSet;

    let mut out = Vec::new();

    let alive_demand: f64 = state.alive.values().map(|r| r.demand).sum();
    let tol = 1e-6 * alive_demand.abs().max(1.0);
    if (state.allocated_active - alive_demand).abs() > tol {
        out.push(InvariantViolation {
            invariant: "engine-allocated-counter",
            detail: format!(
                "allocated_active {} != sum of {} alive demands {}",
                state.allocated_active,
                state.alive.len(),
                alive_demand
            ),
        });
    }

    let scheduled: BTreeSet<RequestId> = state
        .departures_at
        .values()
        .flat_map(|ids| ids.iter().copied())
        .collect();
    for id in state.alive.keys() {
        if !scheduled.contains(id) {
            out.push(InvariantViolation {
                invariant: "engine-departure-calendar",
                detail: format!("alive request {id} has no departure scheduled"),
            });
        }
    }

    let ledger = algorithm.loads();
    if state.churn.is_none() {
        out.extend(vne_model::invariant::audit_ledger(ledger));
    }

    let footprints: Option<Vec<(&Request, &Footprint)>> = state
        .alive
        .values()
        .map(|r| algorithm.footprint_of(r.id).map(|f| (r, f)))
        .collect();
    if let Some(pairs) = footprints {
        let mut node_acc = vec![0.0f64; ledger.node_count()];
        let mut link_acc = vec![0.0f64; ledger.link_count()];
        for (r, fp) in pairs {
            for &(n, x) in fp.nodes() {
                node_acc[n.index()] += x * r.demand;
            }
            for &(l, x) in fp.links() {
                link_acc[l.index()] += x * r.demand;
            }
        }
        for (i, &expected) in node_acc.iter().enumerate() {
            let n = NodeId::from_index(i);
            let got = ledger.node_load(n);
            if (got - expected).abs() > 1e-6 * expected.abs().max(1.0) {
                out.push(InvariantViolation {
                    invariant: "engine-ledger-footprints",
                    detail: format!(
                        "node {n}: ledger load {got} != sum of alive footprints {expected}"
                    ),
                });
            }
        }
        for (i, &expected) in link_acc.iter().enumerate() {
            let l = LinkId::from_index(i);
            let got = ledger.link_load(l);
            if (got - expected).abs() > 1e-6 * expected.abs().max(1.0) {
                out.push(InvariantViolation {
                    invariant: "engine-ledger-footprints",
                    detail: format!(
                        "link {l}: ledger load {got} != sum of alive footprints {expected}"
                    ),
                });
            }
        }
    }
    out
}

/// The shared serial engine loop behind [`run_stream`] and
/// [`run_stream_from`].
fn drive<E, O>(
    state: &mut EngineState,
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
    policy: &mut dyn ReembedPolicy,
) -> StreamStats
where
    E: IntoIterator<Item = SlotEvents>,
    O: SimObserver + ?Sized,
{
    // Online seconds accumulate across resumed segments.
    let base_secs = state.stats.online_secs;
    // audit:allow(D2, "set_online_secs feeder: run_stream stamps stats.online_secs")
    let started = Instant::now();
    for event in events {
        let (_step, control) = state.step(algorithm, substrate, event, observer, policy);
        // The commit hook fires even when this slot's on_slot_end asked
        // to stop: a budgeted run must leave a checkpoint at its final
        // slot (the StopAfter-on-checkpoint-slot regression).
        state.stats.online_secs = base_secs + started.elapsed().as_secs_f64();
        observer.on_slot_committed(&state.view(&*algorithm));
        if control == SimControl::Stop {
            state.stats.stopped_early = true;
            break;
        }
    }
    state.stats.online_secs = base_secs + started.elapsed().as_secs_f64();
    state.stats
}

/// Configuration of the pipelined engine ([`run_stream_pipelined`]).
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Bounded capacity of each inter-stage channel, in batches. Small
    /// values keep the stages tightly coupled (less run-ahead after an
    /// early stop); large values smooth out bursty slots.
    pub buffer: usize,
    /// Slots shipped per channel message. Batching amortizes the
    /// per-message synchronization cost (a 30k-slot stream at batch 16
    /// crosses each channel ~2k times instead of 30k); the maximum
    /// run-ahead after an early stop is `2 × buffer × batch` slots.
    pub batch: usize,
    /// Capture the engine+algorithm state every N slots (the slots
    /// `N-1, 2N-1, …` of a dense stream — the same cadence as
    /// [`crate::observe::Checkpointer::every`]), so the observer stage
    /// can serialize checkpoints there. `None` captures nothing;
    /// a [`EngineView::checkpoint`] call on an uncaptured slot errors.
    pub capture_every: Option<Slot>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            buffer: 4,
            batch: 16,
            capture_every: None,
        }
    }
}

impl PipelineConfig {
    /// A config capturing state every `every` slots (checkpointed runs).
    pub fn capturing(every: Slot) -> Self {
        Self {
            capture_every: Some(every),
            ..Self::default()
        }
    }

    /// Sizes the stage-1 batch and buffer from a *measured* per-slot
    /// cost instead of the default constants — used when another worker
    /// pool (e.g. the shard pool) leaves `idle_cores` cores to the
    /// pipeline. The batch targets ~1 ms of algorithm work per channel
    /// message (cheap slots batch up to 256, expensive slots ship one
    /// by one); the buffer grants one in-flight batch per idle core,
    /// capped at 8. Batching affects only scheduling granularity, never
    /// results — any sizing replays the same stream byte-identically
    /// (pinned by the pipeline parity suite).
    pub fn autosized(per_slot: std::time::Duration, idle_cores: usize) -> Self {
        const TARGET_BATCH_SECS: f64 = 1e-3;
        let per = per_slot.as_secs_f64().max(1e-9);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let batch = ((TARGET_BATCH_SECS / per).round() as usize).clamp(1, 256);
        Self {
            buffer: idle_cores.clamp(1, 8),
            batch,
            capture_every: None,
        }
    }
}

/// Whether the scenario-level runners should use the pipelined engine.
///
/// Resolution order: the `VNE_PIPELINE` environment variable (`0`,
/// `off`, `false`, `serial`, `no` disable; anything else enables), then
/// an adaptive default — pipelining pays only when at least one extra
/// core is free, so it is on iff `available_parallelism() >= 2`. Both
/// modes produce byte-identical summaries (pinned by the
/// `pipeline_parity` suite); only wall-clock differs. Read once and
/// cached for the process lifetime.
pub fn pipeline_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("VNE_PIPELINE") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "serial" | "no"
        ),
        Err(_) => std::thread::available_parallelism().is_ok_and(|n| n.get() >= 2),
    })
}

/// One slot's worth of observer work, shipped from the algorithm stage
/// to the observer stage over the bounded record channel.
struct SlotRecord {
    slot: Slot,
    step: SlotStep,
    /// The engine counters *after* this slot — what the serial path
    /// would report had it stopped here (`online_secs` is the algorithm
    /// stage's wall-clock; the pipelined run overwrites it with its own
    /// at the end).
    stats_after: StreamStats,
    active: usize,
    capture: Option<EngineCapture>,
}

/// The stand-in algorithm handed to [`SimObserver::on_slot_end`] on the
/// pipelined observer stage: carries the real name and an empty load
/// ledger, never processes a slot. [`PipelineSafe`] observers must not
/// look further — the live algorithm is slots ahead on another thread.
struct Detached {
    name: String,
    loads: vne_model::load::LoadLedger,
}

impl OnlineAlgorithm for Detached {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_slot(
        &mut self,
        _t: Slot,
        _departures: &[Request],
        _arrivals: &[Request],
    ) -> vne_olive::algorithm::SlotOutcome {
        unreachable!("the detached observer-stage stub never processes slots")
    }

    fn loads(&self) -> &vne_model::load::LoadLedger {
        &self.loads
    }
}

/// [`run_stream`], pipelined across three stages on scoped threads:
/// event production (the lazy trace generator), the algorithm step plus
/// metric fold, and — on the calling thread — the observer fan-out.
/// Slot `t+1`'s algorithm step proceeds while slot `t`'s observer work
/// drains from a bounded channel; observers still see every event in
/// slot order, and every value they see is computed by the same code as
/// the serial path, so summaries are **byte-identical** to
/// [`run_stream`] (pinned by the `pipeline_parity` proptest battery).
///
/// Early stop: when the observer returns [`SimControl::Stop`] the
/// returned [`StreamStats`] are exactly the serial run's (the stop
/// slot's counters), even though the algorithm stage may have run up to
/// `2 × buffer` slots ahead before the channels unwind — the algorithm
/// object's post-run state is therefore *not* meaningful after an early
/// stop (checkpoint captures, taken at their slots, are).
///
/// Checkpointing: set [`PipelineConfig::capture_every`] to the
/// [`crate::observe::Checkpointer`] cadence so the algorithm stage
/// captures state on exactly the slots the checkpointer serializes.
///
/// # Panics
///
/// Panics like [`run_stream`] on non-increasing slots (the panic
/// surfaces on the calling thread).
pub fn run_stream_pipelined<E, O>(
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
    config: &PipelineConfig,
) -> StreamStats
where
    E: IntoIterator<Item = SlotEvents>,
    E::IntoIter: Send,
    O: PipelineSafe + ?Sized,
{
    run_stream_pipelined_with(
        algorithm,
        substrate,
        events,
        observer,
        config,
        &mut ReembedAll,
    )
}

/// [`run_stream_pipelined`] with an explicit [`ReembedPolicy`] for
/// streams that carry churn events.
pub fn run_stream_pipelined_with<E, O>(
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
    config: &PipelineConfig,
    policy: &mut dyn ReembedPolicy,
) -> StreamStats
where
    E: IntoIterator<Item = SlotEvents>,
    E::IntoIter: Send,
    O: PipelineSafe + ?Sized,
{
    let mut state = EngineState::fresh();
    drive_pipelined(
        &mut state, algorithm, substrate, events, observer, config, policy,
    )
}

/// [`run_stream_from`], pipelined: restores the checkpoint like the
/// serial resume, then finishes the run through the three-stage
/// pipeline. Byte-identical to both the serial resume and the
/// uninterrupted run.
///
/// # Errors
///
/// Returns a [`StateError`] when the algorithm's name does not match
/// the checkpoint or any blob fails to restore.
pub fn run_stream_from_pipelined<E, O>(
    checkpoint: &EngineCheckpoint,
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
    config: &PipelineConfig,
) -> Result<StreamStats, StateError>
where
    E: IntoIterator<Item = SlotEvents>,
    E::IntoIter: Send,
    O: PipelineSafe + Snapshot + ?Sized,
{
    run_stream_from_pipelined_with(
        checkpoint,
        algorithm,
        substrate,
        events,
        observer,
        config,
        &mut ReembedAll,
    )
}

/// [`run_stream_from_pipelined`] with an explicit [`ReembedPolicy`] for
/// streams that carry churn events.
///
/// # Errors
///
/// Returns a [`StateError`] when the algorithm's name does not match
/// the checkpoint or any blob fails to restore.
pub fn run_stream_from_pipelined_with<E, O>(
    checkpoint: &EngineCheckpoint,
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
    config: &PipelineConfig,
    policy: &mut dyn ReembedPolicy,
) -> Result<StreamStats, StateError>
where
    E: IntoIterator<Item = SlotEvents>,
    E::IntoIter: Send,
    O: PipelineSafe + Snapshot + ?Sized,
{
    let mut state = restore_engine(checkpoint, algorithm, substrate, observer)?;
    let consumed = state.next_min_slot;
    let remaining = events
        .into_iter()
        .skip_while(move |ev| u64::from(ev.slot) < consumed);
    Ok(drive_pipelined(
        &mut state, algorithm, substrate, remaining, observer, config, policy,
    ))
}

/// The pipelined engine loop: stage 0 (worker) pulls slot events from
/// the lazy source, stage 1 (worker) advances the engine and algorithm
/// through [`advance_slot`] — the exact code the serial loop runs — and
/// stage 2 (the calling thread) replays the observer fan-out in slot
/// order from owned [`SlotRecord`]s. Bounded channels couple the
/// stages; dropping a receiver unwinds the upstream stages, which is how
/// an observer's early stop propagates back.
fn drive_pipelined<E, O>(
    state: &mut EngineState,
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
    config: &PipelineConfig,
    policy: &mut dyn ReembedPolicy,
) -> StreamStats
where
    E: IntoIterator<Item = SlotEvents>,
    E::IntoIter: Send,
    O: SimObserver + ?Sized,
{
    use std::sync::mpsc::sync_channel;

    let base_secs = state.stats.online_secs;
    // audit:allow(D2, "set_online_secs feeder: pipelined run stamps stats.online_secs")
    let started = Instant::now();
    let buffer = config.buffer.max(1);
    let batch = config.batch.max(1);
    let capture_every = config.capture_every;
    let name = algorithm.name().to_string();
    let stub = Detached {
        name: name.clone(),
        loads: vne_model::load::LoadLedger::new(substrate),
    };
    // If no slot is ever committed, the serial path would report the
    // restored counters unchanged.
    let mut final_stats = state.stats;
    let events = events.into_iter();

    std::thread::scope(|scope| {
        let (event_tx, event_rx) = sync_channel::<Vec<SlotEvents>>(buffer);
        let (record_tx, record_rx) = sync_channel::<Vec<SlotRecord>>(buffer);

        // Stage 0: event production (the RNG-heavy trace generator).
        let producer = scope.spawn(move || {
            let mut chunk = Vec::with_capacity(batch);
            for event in events {
                chunk.push(event);
                if chunk.len() == batch
                    && event_tx
                        .send(std::mem::replace(&mut chunk, Vec::with_capacity(batch)))
                        .is_err()
                {
                    return; // downstream stopped early
                }
            }
            if !chunk.is_empty() {
                let _ = event_tx.send(chunk);
            }
        });

        // Stage 1: algorithm step + metric fold + state captures.
        let state = &mut *state;
        let algorithm = &mut *algorithm;
        let policy = &mut *policy;
        let stepper = scope.spawn(move || {
            let stage_base = base_secs;
            // audit:allow(D2, "set_online_secs feeder: stage-local online-seconds stamp")
            let stage_started = Instant::now();
            'stepping: for chunk in event_rx {
                let mut records = Vec::with_capacity(chunk.len());
                for event in chunk {
                    let slot = event.slot;
                    let step = advance_slot(state, algorithm, substrate, event, policy);
                    state.stats.online_secs = stage_base + stage_started.elapsed().as_secs_f64();
                    let capture = match capture_every {
                        Some(every) if (u64::from(slot) + 1) % u64::from(every) == 0 => {
                            Some(EngineCapture {
                                engine: state.snapshot(),
                                algorithm_state: algorithm.snapshot_state(),
                            })
                        }
                        _ => None,
                    };
                    records.push(SlotRecord {
                        slot,
                        step,
                        stats_after: state.stats,
                        active: state.active_count(),
                        capture,
                    });
                }
                if record_tx.send(records).is_err() {
                    break 'stepping; // observer stopped early
                }
            }
        });

        // Stage 2 (this thread): observer fan-out, in slot order.
        'observing: for chunk in record_rx {
            for record in &chunk {
                observer.on_slot_start(record.slot);
                if !record.step.churn.is_empty() {
                    observer.on_churn(record.slot, &record.step.churn);
                }
                for outcome in &record.step.arrivals {
                    observer.on_arrival(outcome);
                }
                for outcome in &record.step.preemptions {
                    observer.on_preemption(outcome);
                }
                let control = observer.on_slot_end(record.slot, &record.step.metrics, &stub);
                final_stats = record.stats_after;
                observer.on_slot_committed(&EngineView {
                    slot: record.slot,
                    stats: record.stats_after,
                    active: record.active,
                    source: ViewSource::Captured {
                        algorithm_name: &name,
                        capture: record.capture.as_ref(),
                    },
                });
                if control == SimControl::Stop {
                    final_stats.stopped_early = true;
                    break 'observing;
                }
            }
        }
        // The record receiver is dropped with the loop above, so stage
        // 1's next send fails; stage 1 then drops the event receiver,
        // unwinding stage 0. Join both explicitly so a worker panic
        // (e.g. the strictly-increasing-slots assertion) re-raises its
        // *original* payload on the calling thread instead of the
        // scope's generic "a scoped thread panicked".
        let stepper_result = stepper.join();
        let producer_result = producer.join();
        if let Err(payload) = stepper_result {
            std::panic::resume_unwind(payload);
        }
        if let Err(payload) = producer_result {
            std::panic::resume_unwind(payload);
        }
    });
    final_stats.online_secs = base_secs + started.elapsed().as_secs_f64();
    final_stats
}

/// Adapts a pre-collected trace into the slot-event stream [`run_stream`]
/// expects: arrivals bucketed per slot (sorted by id within a slot, the
/// ON-VNE order), one event per slot in `0..slots`, arrivals at or past
/// the horizon dropped.
///
/// This is `O(trace)` memory by construction — it exists for tests and
/// pre-materialized traces; lazy sources ([`vne_workload::tracegen::stream`],
/// [`vne_workload::caida::stream`]) feed the engine directly.
pub fn slot_events(trace: &[Request], slots: Slot) -> impl Iterator<Item = SlotEvents> {
    let mut arrivals_at: Vec<Vec<Request>> = vec![Vec::new(); slots as usize];
    for r in trace {
        if r.arrival < slots {
            arrivals_at[r.arrival as usize].push(r.clone());
        }
    }
    for bucket in &mut arrivals_at {
        bucket.sort_by_key(|r| r.id);
    }
    arrivals_at
        .into_iter()
        .enumerate()
        .map(|(t, arrivals)| SlotEvents {
            slot: t as Slot,
            arrivals,
            churn: Vec::new(),
        })
}

/// Runs `algorithm` over a pre-collected `trace` for `slots` time slots
/// and records the full [`RunResult`] (batch convenience over
/// [`run_stream`]).
///
/// `inspect` is called after each slot with the slot index and the
/// algorithm (used by per-node drill-down figures); pass
/// [`no_inspection`] when not needed.
pub fn run<F>(
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    trace: &[Request],
    slots: Slot,
    mut inspect: F,
) -> RunResult
where
    F: FnMut(Slot, &dyn OnlineAlgorithm),
{
    let mut recorder = Recorder::new();
    let mut observer = Tee(
        &mut recorder,
        Inspect(|t: Slot, _m: &SlotMetrics, alg: &dyn OnlineAlgorithm| inspect(t, alg)),
    );
    let stats = run_stream(
        algorithm,
        substrate,
        slot_events(trace, slots),
        &mut observer,
    );
    recorder.finish(algorithm.name(), &stats)
}

/// A no-op inspection hook for [`run`].
pub fn no_inspection(_t: Slot, _a: &dyn OnlineAlgorithm) {}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_model::app::{shapes, AppSet, AppShape};
    use vne_model::ids::AppId;
    use vne_model::ids::NodeId;
    use vne_model::policy::PlacementPolicy;
    use vne_model::substrate::Tier;
    use vne_olive::olive::Olive;

    fn world() -> (SubstrateNetwork, AppSet) {
        let mut s = SubstrateNetwork::new("line");
        let e = s.add_node("e0", Tier::Edge, 100.0, 50.0).unwrap();
        let c = s.add_node("c1", Tier::Core, 200.0, 1.0).unwrap();
        s.add_link(e, c, 1000.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "chain",
            AppShape::Chain,
            shapes::uniform_chain(1, 10.0, 1.0).unwrap(),
        )
        .unwrap();
        (s, apps)
    }

    fn req(id: u64, t: Slot, dur: Slot, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival: t,
            duration: dur,
            ingress: NodeId(0),
            app: AppId(0),
            demand,
        }
    }

    #[test]
    fn accepts_and_departs() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        // Capacity 300 total; β 10: demand 10 → 100 CU.
        let trace = vec![req(0, 0, 3, 10.0), req(1, 1, 3, 10.0), req(2, 5, 2, 10.0)];
        let result = run(&mut alg, &s, &trace, 10, no_inspection);
        assert_eq!(result.requests.len(), 3);
        assert!(result
            .requests
            .iter()
            .all(|r| r.status == RequestStatus::Accepted));
        // Allocated demand series: 10 at t0, 20 at t1-2, 10 at t3, 0 at 4.
        assert_eq!(result.slots[0].allocated_demand, 10.0);
        assert_eq!(result.slots[1].allocated_demand, 20.0);
        assert_eq!(result.slots[3].allocated_demand, 10.0);
        assert_eq!(result.slots[4].allocated_demand, 0.0);
        assert_eq!(result.slots[5].allocated_demand, 10.0);
        // Requested matches allocated when everything is accepted.
        for sm in &result.slots {
            assert!((sm.requested_demand - sm.allocated_demand).abs() < 1e-9);
        }
        assert!(result.online_secs >= 0.0);
    }

    #[test]
    fn rejections_show_in_outcomes_and_series() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        // 300 CU total ⇒ 3 × demand-10 requests fit; the 4th is rejected.
        let trace: Vec<Request> = (0..4).map(|i| req(i, 0, 5, 10.0)).collect();
        let result = run(&mut alg, &s, &trace, 6, no_inspection);
        let denied = result
            .requests
            .iter()
            .filter(|r| r.status.is_denied())
            .count();
        assert_eq!(denied, 1);
        assert_eq!(result.slots[0].allocated_demand, 30.0);
        assert_eq!(result.slots[0].requested_demand, 40.0);
    }

    #[test]
    fn resource_cost_tracks_loads() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let trace = vec![req(0, 0, 2, 10.0)];
        let result = run(&mut alg, &s, &trace, 4, no_inspection);
        // 100 CU on the core node (cost 1/CU) + link 10 CU (cost 1).
        assert!(result.slots[0].resource_cost > 0.0);
        assert_eq!(result.slots[2].resource_cost, 0.0);
    }

    #[test]
    fn inspection_hook_runs_every_slot() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let mut calls = 0;
        let _ = run(&mut alg, &s, &[], 7, |_, _| calls += 1);
        assert_eq!(calls, 7);
    }

    #[test]
    fn arrivals_beyond_horizon_are_ignored() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let trace = vec![req(0, 50, 3, 10.0)];
        let result = run(&mut alg, &s, &trace, 10, no_inspection);
        assert!(result.requests.is_empty());
    }

    #[test]
    fn stream_stats_track_activity() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let trace = vec![req(0, 0, 3, 10.0), req(1, 1, 3, 10.0), req(2, 5, 2, 10.0)];
        let mut observer = crate::observe::NullObserver;
        let stats = run_stream(&mut alg, &s, slot_events(&trace, 10), &mut observer);
        assert_eq!(stats.slots_run, 10);
        assert_eq!(stats.arrivals, 3);
        // Requests 0 and 1 overlap at slots 1-2.
        assert_eq!(stats.peak_active, 2);
        assert!(!stats.stopped_early);
    }

    struct StopAt(Slot);
    // StopAt never looks at the algorithm: pipeline-safe by contract.
    impl crate::engine::PipelineSafe for StopAt {}
    impl SimObserver for StopAt {
        fn on_slot_end(
            &mut self,
            t: Slot,
            _m: &SlotMetrics,
            _a: &dyn OnlineAlgorithm,
        ) -> SimControl {
            if t >= self.0 {
                SimControl::Stop
            } else {
                SimControl::Continue
            }
        }
    }

    #[test]
    fn observer_can_stop_early() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let mut observer = StopAt(3);
        let stats = run_stream(&mut alg, &s, slot_events(&[], 100), &mut observer);
        assert!(stats.stopped_early);
        assert_eq!(stats.slots_run, 4);
    }

    #[test]
    fn sparse_streams_release_gap_departures() {
        // An event-driven source that skips quiet slots entirely: the
        // engine must still release departures falling into the gaps.
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        // Departs at slot 2; the stream then jumps straight to slot 9.
        let events = vec![
            SlotEvents {
                slot: 0,
                arrivals: vec![req(0, 0, 2, 10.0)],
                churn: Vec::new(),
            },
            SlotEvents {
                slot: 9,
                arrivals: vec![req(1, 9, 2, 10.0)],
                churn: Vec::new(),
            },
        ];
        let mut recorder = crate::observe::Recorder::new();
        let stats = run_stream(&mut alg, &s, events, &mut recorder);
        assert_eq!(stats.arrivals, 2);
        assert_eq!(stats.peak_active, 1, "request 0 must depart in the gap");
        let result = recorder.finish("QUICKG", &stats);
        // Only yielded slots produce metrics; by slot 9 request 0 is gone.
        assert_eq!(result.slots.len(), 2);
        assert_eq!(result.slots[1].allocated_demand, 10.0);
        assert_eq!(result.slots[1].requested_demand, 10.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_slots_panic() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let events = vec![SlotEvents::empty(5), SlotEvents::empty(5)];
        let _ = run_stream(&mut alg, &s, events, &mut crate::observe::NullObserver);
    }

    #[test]
    fn pipelined_stream_matches_serial_bit_for_bit() {
        let (s, apps) = world();
        let trace = vec![req(0, 0, 3, 10.0), req(1, 1, 3, 10.0), req(2, 5, 2, 10.0)];
        let run = |pipelined: bool| {
            let mut alg = Olive::quickg(s.clone(), apps.clone(), PlacementPolicy::default());
            let mut rec = crate::observe::Recorder::new();
            let stats = if pipelined {
                run_stream_pipelined(
                    &mut alg,
                    &s,
                    slot_events(&trace, 10),
                    &mut rec,
                    &PipelineConfig::default(),
                )
            } else {
                run_stream(&mut alg, &s, slot_events(&trace, 10), &mut rec)
            };
            (rec.finish("QUICKG", &stats), stats)
        };
        let (serial, serial_stats) = run(false);
        let (piped, piped_stats) = run(true);
        assert_eq!(serial.requests, piped.requests);
        assert_eq!(serial.slots, piped.slots);
        assert_eq!(serial_stats.slots_run, piped_stats.slots_run);
        assert_eq!(serial_stats.arrivals, piped_stats.arrivals);
        assert_eq!(serial_stats.peak_active, piped_stats.peak_active);
        assert_eq!(serial_stats.stopped_early, piped_stats.stopped_early);
    }

    #[test]
    fn pipelined_early_stop_reports_the_stop_slot_counters() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let mut observer = StopAt(3);
        let stats = run_stream_pipelined(
            &mut alg,
            &s,
            slot_events(&[], 100),
            &mut observer,
            &PipelineConfig::default(),
        );
        assert!(stats.stopped_early);
        // The algorithm stage ran ahead, but the reported counters are
        // the stop slot's — identical to the serial run.
        assert_eq!(stats.slots_run, 4);
    }

    #[test]
    fn pipelined_empty_stream_yields_default_stats() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let stats = run_stream_pipelined(
            &mut alg,
            &s,
            std::iter::empty(),
            &mut crate::observe::NullObserver,
            &PipelineConfig::default(),
        );
        assert_eq!(stats.slots_run, 0);
        assert_eq!(stats.arrivals, 0);
        assert!(!stats.stopped_early);
    }

    #[test]
    fn pipelined_checkpoint_requires_a_matching_capture_cadence() {
        use crate::observe::{Checkpointer, WindowSummary};
        let (s, apps) = world();
        let penalty = vne_model::cost::RejectionPenalty::uniform(&apps, 1.0);
        // Cadence configured: the capture is there and the checkpoint
        // round-trips.
        let mut alg = Olive::quickg(s.clone(), apps.clone(), PlacementPolicy::default());
        let mut window = WindowSummary::new((0, 10), penalty.clone());
        let mut checkpointer = Checkpointer::every(4, &mut window);
        let trace = vec![req(0, 0, 3, 10.0)];
        run_stream_pipelined(
            &mut alg,
            &s,
            slot_events(&trace, 10),
            &mut checkpointer,
            &PipelineConfig::capturing(4),
        );
        assert!(checkpointer.last_error().is_none());
        assert_eq!(checkpointer.checkpoints_taken(), 2); // slots 3 and 7
        assert_eq!(checkpointer.latest().unwrap().slot, 7);

        // Cadence missing: the checkpointer records a loud error
        // instead of silently skipping the capture.
        let mut alg = Olive::quickg(s.clone(), apps.clone(), PlacementPolicy::default());
        let mut window = WindowSummary::new((0, 10), penalty);
        let mut checkpointer = Checkpointer::every(4, &mut window);
        run_stream_pipelined(
            &mut alg,
            &s,
            slot_events(&trace, 10),
            &mut checkpointer,
            &PipelineConfig::default(),
        );
        match checkpointer.last_error() {
            Some(StateError::Unsupported(what)) => {
                assert!(what.contains("capture"), "{what}");
            }
            other => panic!("expected an unsupported-capture error, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn pipelined_out_of_order_slots_panic_on_the_caller() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let events = vec![SlotEvents::empty(5), SlotEvents::empty(5)];
        let _ = run_stream_pipelined(
            &mut alg,
            &s,
            events,
            &mut crate::observe::NullObserver,
            &PipelineConfig::default(),
        );
    }

    #[test]
    fn dyn_algorithm_runs_through_the_engine() {
        // The registry hands out Box<dyn OnlineAlgorithm>; the engine
        // must drive it without knowing the concrete type.
        let (s, apps) = world();
        let mut boxed: Box<dyn OnlineAlgorithm> =
            Box::new(Olive::quickg(s.clone(), apps, PlacementPolicy::default()));
        let trace = vec![req(0, 0, 3, 10.0)];
        let result = run(boxed.as_mut(), &s, &trace, 5, no_inspection);
        assert_eq!(result.requests.len(), 1);
        assert_eq!(result.algorithm, "QUICKG");
    }

    #[test]
    fn release_early_frees_capacity_at_the_next_slot() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let mut state = EngineState::fresh();
        let mut obs = crate::observe::NullObserver;
        // Slot 0: three demand-10 requests fill the 300 CU substrate.
        let ev = SlotEvents {
            slot: 0,
            arrivals: (0..3).map(|i| req(i, 0, 100, 10.0)).collect(),
            churn: vec![],
        };
        let (step, _) = state.step(&mut alg, &s, ev, &mut obs, &mut ReembedAll);
        assert!(step
            .arrivals
            .iter()
            .all(|o| o.status == RequestStatus::Accepted));
        // Slot 1: full, so a fourth request is rejected.
        let ev = SlotEvents {
            slot: 1,
            arrivals: vec![req(3, 1, 5, 10.0)],
            churn: vec![],
        };
        let (step, _) = state.step(&mut alg, &s, ev, &mut obs, &mut ReembedAll);
        assert_eq!(step.arrivals[0].status, RequestStatus::Rejected);
        // Early-release one request; unknown ids are no-ops.
        assert!(state.release_early(RequestId(0)));
        assert!(!state.release_early(RequestId(99)));
        // Slot 2: the release drains first, so an identical request is
        // re-admitted in the same slot.
        let ev = SlotEvents {
            slot: 2,
            arrivals: vec![req(4, 2, 5, 10.0)],
            churn: vec![],
        };
        let (step, _) = state.step(&mut alg, &s, ev, &mut obs, &mut ReembedAll);
        assert_eq!(step.arrivals[0].status, RequestStatus::Accepted);
        assert!(!state.is_active(RequestId(0)));
        // Releasing an already departed request reports inactive.
        assert!(!state.release_early(RequestId(0)));
        // The stale original calendar entry (slot 100) stays harmless.
        let ev = SlotEvents::empty(100);
        let (step, _) = state.step(&mut alg, &s, ev, &mut obs, &mut ReembedAll);
        assert!(step.arrivals.is_empty());
        assert_eq!(state.active_count(), 0);
    }

    #[test]
    fn autosized_pipeline_stays_within_bounds() {
        use std::time::Duration;
        // Cheap slots batch up to the cap; buffer follows idle cores.
        let cheap = PipelineConfig::autosized(Duration::from_micros(1), 4);
        assert_eq!((cheap.batch, cheap.buffer), (256, 4));
        // Expensive slots ship one at a time; zero idle cores still get
        // one in-flight batch.
        let costly = PipelineConfig::autosized(Duration::from_millis(50), 0);
        assert_eq!((costly.batch, costly.buffer), (1, 1));
        // ~250 µs slots target ~1 ms per message; buffer caps at 8.
        let mid = PipelineConfig::autosized(Duration::from_micros(250), 64);
        assert_eq!((mid.batch, mid.buffer), (4, 8));
        assert!(mid.capture_every.is_none());
    }
}
