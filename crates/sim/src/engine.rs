//! The discrete-time simulation engine.
//!
//! Drives an [`OnlineAlgorithm`] slot by slot over a request trace:
//! departures are released first, then the slot's arrivals are processed
//! in order (ON-VNE semantics). The engine records a per-request outcome
//! log and per-slot load/demand series from which all the paper's
//! metrics are computed.

use std::collections::HashSet;
use std::time::Instant;

use vne_model::ids::{ClassId, RequestId};
use vne_model::request::{Request, Slot};
use vne_model::substrate::SubstrateNetwork;
use vne_olive::algorithm::OnlineAlgorithm;

/// Final status of a request after the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Accepted and never evicted.
    Accepted,
    /// Rejected on arrival.
    Rejected,
    /// Accepted, then preempted at the given slot.
    Preempted(Slot),
}

impl RequestStatus {
    /// Whether the request counts against the rejection rate (rejected on
    /// arrival or preempted later — both incur the rejection cost).
    pub fn is_denied(self) -> bool {
        !matches!(self, RequestStatus::Accepted)
    }
}

/// Outcome of a single request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The request id.
    pub id: RequestId,
    /// The request class.
    pub class: ClassId,
    /// Arrival slot.
    pub arrival: Slot,
    /// Duration in slots.
    pub duration: Slot,
    /// Demand size.
    pub demand: f64,
    /// Final status.
    pub status: RequestStatus,
}

/// Per-slot aggregate series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SlotMetrics {
    /// Total demand of all requests that *would* be active (accepted or
    /// not) — the "requested" curve of Fig. 8.
    pub requested_demand: f64,
    /// Total demand of active accepted requests — the "allocated" curve.
    pub allocated_demand: f64,
    /// Resource cost of the current loads for this slot (Eq. 3 term).
    pub resource_cost: f64,
}

/// Complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm name.
    pub algorithm: String,
    /// One outcome per request, in arrival order.
    pub requests: Vec<RequestOutcome>,
    /// One entry per simulated slot.
    pub slots: Vec<SlotMetrics>,
    /// Wall-clock seconds spent inside the online loop.
    pub online_secs: f64,
}

/// Runs `algorithm` over `trace` for `slots` time slots.
///
/// `inspect` is called after each slot with the slot index and the
/// algorithm (used by per-node drill-down figures); pass
/// [`no_inspection`] when not needed.
pub fn run<A, F>(
    algorithm: &mut A,
    substrate: &SubstrateNetwork,
    trace: &[Request],
    slots: Slot,
    mut inspect: F,
) -> RunResult
where
    A: OnlineAlgorithm,
    F: FnMut(Slot, &A),
{
    // Pre-bucket arrivals per slot.
    let mut arrivals_at: Vec<Vec<Request>> = vec![Vec::new(); slots as usize];
    for r in trace {
        if r.arrival < slots {
            arrivals_at[r.arrival as usize].push(r.clone());
        }
    }
    for bucket in &mut arrivals_at {
        bucket.sort_by_key(|r| r.id);
    }

    let mut departures_at: Vec<Vec<Request>> = vec![Vec::new(); slots as usize + 1];
    let mut alive: HashSet<RequestId> = HashSet::new();
    let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(trace.len());
    let mut outcome_index: std::collections::HashMap<RequestId, usize> =
        std::collections::HashMap::with_capacity(trace.len());
    let mut slot_metrics = vec![SlotMetrics::default(); slots as usize];

    // Requested-demand series (independent of algorithm decisions).
    let mut requested = vec![0.0f64; slots as usize];
    for r in trace {
        let end = r.departure().min(slots);
        for t in r.arrival..end {
            requested[t as usize] += r.demand;
        }
    }

    let mut allocated_active = 0.0f64;
    let started = Instant::now();
    for t in 0..slots {
        // Departures of accepted-and-still-alive requests.
        let departures: Vec<Request> = departures_at[t as usize]
            .drain(..)
            .filter(|r| alive.remove(&r.id))
            .collect();
        for d in &departures {
            allocated_active -= d.demand;
        }
        let arrivals = std::mem::take(&mut arrivals_at[t as usize]);
        let outcome = algorithm.process_slot(t, &departures, &arrivals);

        for r in &arrivals {
            let accepted = outcome.accepted.contains(&r.id);
            let status = if accepted {
                RequestStatus::Accepted
            } else {
                RequestStatus::Rejected
            };
            outcome_index.insert(r.id, outcomes.len());
            outcomes.push(RequestOutcome {
                id: r.id,
                class: r.class(),
                arrival: r.arrival,
                duration: r.duration,
                demand: r.demand,
                status,
            });
            if accepted {
                alive.insert(r.id);
                allocated_active += r.demand;
                let dep = r.departure();
                if dep <= slots {
                    departures_at[dep as usize].push(r.clone());
                }
            }
        }
        for &p in &outcome.preempted {
            if alive.remove(&p) {
                if let Some(&idx) = outcome_index.get(&p) {
                    allocated_active -= outcomes[idx].demand;
                    outcomes[idx].status = RequestStatus::Preempted(t);
                }
            }
        }

        slot_metrics[t as usize] = SlotMetrics {
            requested_demand: requested[t as usize],
            allocated_demand: allocated_active,
            resource_cost: algorithm.loads().cost_per_slot(substrate),
        };
        inspect(t, algorithm);
    }
    let online_secs = started.elapsed().as_secs_f64();

    RunResult {
        algorithm: algorithm.name().to_string(),
        requests: outcomes,
        slots: slot_metrics,
        online_secs,
    }
}

/// A no-op inspection hook for [`run`].
pub fn no_inspection<A: OnlineAlgorithm>(_t: Slot, _a: &A) {}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_model::app::{shapes, AppSet, AppShape};
    use vne_model::ids::AppId;
    use vne_model::ids::NodeId;
    use vne_model::policy::PlacementPolicy;
    use vne_model::substrate::Tier;
    use vne_olive::olive::Olive;

    fn world() -> (SubstrateNetwork, AppSet) {
        let mut s = SubstrateNetwork::new("line");
        let e = s.add_node("e0", Tier::Edge, 100.0, 50.0).unwrap();
        let c = s.add_node("c1", Tier::Core, 200.0, 1.0).unwrap();
        s.add_link(e, c, 1000.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "chain",
            AppShape::Chain,
            shapes::uniform_chain(1, 10.0, 1.0).unwrap(),
        )
        .unwrap();
        (s, apps)
    }

    fn req(id: u64, t: Slot, dur: Slot, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival: t,
            duration: dur,
            ingress: NodeId(0),
            app: AppId(0),
            demand,
        }
    }

    #[test]
    fn accepts_and_departs() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        // Capacity 300 total; β 10: demand 10 → 100 CU.
        let trace = vec![req(0, 0, 3, 10.0), req(1, 1, 3, 10.0), req(2, 5, 2, 10.0)];
        let result = run(&mut alg, &s, &trace, 10, no_inspection);
        assert_eq!(result.requests.len(), 3);
        assert!(result
            .requests
            .iter()
            .all(|r| r.status == RequestStatus::Accepted));
        // Allocated demand series: 10 at t0, 20 at t1-2, 10 at t3, 0 at 4.
        assert_eq!(result.slots[0].allocated_demand, 10.0);
        assert_eq!(result.slots[1].allocated_demand, 20.0);
        assert_eq!(result.slots[3].allocated_demand, 10.0);
        assert_eq!(result.slots[4].allocated_demand, 0.0);
        assert_eq!(result.slots[5].allocated_demand, 10.0);
        // Requested matches allocated when everything is accepted.
        for sm in &result.slots {
            assert!((sm.requested_demand - sm.allocated_demand).abs() < 1e-9);
        }
        assert!(result.online_secs >= 0.0);
    }

    #[test]
    fn rejections_show_in_outcomes_and_series() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        // 300 CU total ⇒ 3 × demand-10 requests fit; the 4th is rejected.
        let trace: Vec<Request> = (0..4).map(|i| req(i, 0, 5, 10.0)).collect();
        let result = run(&mut alg, &s, &trace, 6, no_inspection);
        let denied = result
            .requests
            .iter()
            .filter(|r| r.status.is_denied())
            .count();
        assert_eq!(denied, 1);
        assert_eq!(result.slots[0].allocated_demand, 30.0);
        assert_eq!(result.slots[0].requested_demand, 40.0);
    }

    #[test]
    fn resource_cost_tracks_loads() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let trace = vec![req(0, 0, 2, 10.0)];
        let result = run(&mut alg, &s, &trace, 4, no_inspection);
        // 100 CU on the core node (cost 1/CU) + link 10 CU (cost 1).
        assert!(result.slots[0].resource_cost > 0.0);
        assert_eq!(result.slots[2].resource_cost, 0.0);
    }

    #[test]
    fn inspection_hook_runs_every_slot() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let mut calls = 0;
        let _ = run(&mut alg, &s, &[], 7, |_, _| calls += 1);
        assert_eq!(calls, 7);
    }

    #[test]
    fn arrivals_beyond_horizon_are_ignored() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let trace = vec![req(0, 50, 3, 10.0)];
        let result = run(&mut alg, &s, &trace, 10, no_inspection);
        assert!(result.requests.is_empty());
    }
}
