//! The streaming, event-driven simulation engine.
//!
//! [`run_stream`] drives an [`OnlineAlgorithm`] over a lazy stream of
//! [`SlotEvents`] (one item per slot): departures are released first,
//! then the slot's arrivals are processed in order (ON-VNE semantics).
//! Instead of materializing the whole trace and a per-request outcome
//! log up front, the engine keeps only the *active* requests — peak
//! memory is `O(active requests)`, independent of the trace length —
//! and reports everything it learns through a [`SimObserver`]:
//!
//! * [`SimObserver::on_arrival`] — one call per request with its
//!   accept/reject decision;
//! * [`SimObserver::on_preemption`] — a previously accepted request was
//!   evicted;
//! * [`SimObserver::on_slot_end`] — per-slot [`SlotMetrics`] plus the
//!   algorithm itself (drill-down inspection), with the option to stop
//!   the simulation early.
//!
//! Ready-made observers live in [`crate::observe`]: a [`Recorder`]
//! collecting the classic [`RunResult`], an `O(classes)` incremental
//! window summary, closure-based inspection, and a tee combinator.
//! [`run`] is the batch convenience wrapper (slice in, [`RunResult`]
//! out) used by tests and small experiments.
//!
//! [`Recorder`]: crate::observe::Recorder

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use vne_model::ids::{ClassId, RequestId};
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::substrate::SubstrateNetwork;
use vne_olive::algorithm::OnlineAlgorithm;

use crate::observe::{Inspect, Recorder, Tee};

/// Final status of a request after the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Accepted and never evicted.
    Accepted,
    /// Rejected on arrival.
    Rejected,
    /// Accepted, then preempted at the given slot.
    Preempted(Slot),
}

impl RequestStatus {
    /// Whether the request counts against the rejection rate (rejected on
    /// arrival or preempted later — both incur the rejection cost).
    pub fn is_denied(self) -> bool {
        !matches!(self, RequestStatus::Accepted)
    }
}

/// Outcome of a single request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The request id.
    pub id: RequestId,
    /// The request class.
    pub class: ClassId,
    /// Arrival slot.
    pub arrival: Slot,
    /// Duration in slots.
    pub duration: Slot,
    /// Demand size.
    pub demand: f64,
    /// Final status.
    pub status: RequestStatus,
}

impl RequestOutcome {
    fn of(request: &Request, status: RequestStatus) -> Self {
        Self {
            id: request.id,
            class: request.class(),
            arrival: request.arrival,
            duration: request.duration,
            demand: request.demand,
            status,
        }
    }
}

/// Per-slot aggregate series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SlotMetrics {
    /// Total demand of all requests that *would* be active (accepted or
    /// not) — the "requested" curve of Fig. 8.
    pub requested_demand: f64,
    /// Total demand of active accepted requests — the "allocated" curve.
    pub allocated_demand: f64,
    /// Resource cost of the current loads for this slot (Eq. 3 term).
    pub resource_cost: f64,
}

/// Complete result of one simulation run (as collected by
/// [`crate::observe::Recorder`]).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm name.
    pub algorithm: String,
    /// One outcome per request, in arrival order.
    pub requests: Vec<RequestOutcome>,
    /// One entry per simulated slot.
    pub slots: Vec<SlotMetrics>,
    /// Wall-clock seconds spent inside the online loop.
    pub online_secs: f64,
}

/// Engine-level counters returned by [`run_stream`].
///
/// `peak_active` is the engine's memory high-water mark in requests:
/// the streaming engine holds state only for active accepted requests,
/// so for a stationary workload this stays flat no matter how many
/// slots the stream yields (see the `long_horizon` integration test).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamStats {
    /// Number of slots actually simulated.
    pub slots_run: Slot,
    /// Total arrivals processed.
    pub arrivals: usize,
    /// Maximum number of simultaneously active (accepted) requests —
    /// the engine's O(active) memory bound.
    pub peak_active: usize,
    /// Wall-clock seconds spent inside the online loop.
    pub online_secs: f64,
    /// Whether an observer stopped the run before the stream ended.
    pub stopped_early: bool,
}

/// Observer verdict after each slot: keep going or stop the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimControl {
    /// Continue with the next slot.
    Continue,
    /// Stop the simulation after this slot (early stop).
    Stop,
}

/// Per-slot callbacks invoked by [`run_stream`].
///
/// All methods have no-op defaults, so an observer implements only what
/// it needs. Observers compose with [`crate::observe::Tee`].
pub trait SimObserver {
    /// A new slot begins (before departures are released).
    fn on_slot_start(&mut self, _t: Slot) {}

    /// An arriving request was decided: `outcome.status` is
    /// [`RequestStatus::Accepted`] or [`RequestStatus::Rejected`].
    /// Called once per request, in processing order.
    fn on_arrival(&mut self, _outcome: &RequestOutcome) {}

    /// A previously accepted request was evicted; `outcome.status` is
    /// [`RequestStatus::Preempted`] and supersedes the `Accepted`
    /// outcome reported for the same id earlier.
    fn on_preemption(&mut self, _outcome: &RequestOutcome) {}

    /// The slot is complete: aggregate metrics plus the algorithm for
    /// drill-down inspection (downcast via
    /// [`OnlineAlgorithm::as_any`]). Return [`SimControl::Stop`] to end
    /// the run early.
    fn on_slot_end(
        &mut self,
        _t: Slot,
        _metrics: &SlotMetrics,
        _algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        SimControl::Continue
    }
}

/// Blanket impl so `&mut observer` can be passed down call chains.
impl<O: SimObserver + ?Sized> SimObserver for &mut O {
    fn on_slot_start(&mut self, t: Slot) {
        (**self).on_slot_start(t);
    }
    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        (**self).on_arrival(outcome);
    }
    fn on_preemption(&mut self, outcome: &RequestOutcome) {
        (**self).on_preemption(outcome);
    }
    fn on_slot_end(
        &mut self,
        t: Slot,
        metrics: &SlotMetrics,
        algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        (**self).on_slot_end(t, metrics, algorithm)
    }
}

/// Runs `algorithm` over a lazy stream of slot events.
///
/// Slots must be yielded in strictly increasing order (enforced by an
/// assertion); quiet slots may be skipped — departures falling into a
/// gap are released at the next yielded slot, and only yielded slots
/// get a [`SimObserver::on_slot_end`] call. Use [`slot_events`] to
/// adapt a pre-collected trace. Engine state is bounded by the number
/// of simultaneously active requests: departures of accepted requests
/// are scheduled in a calendar keyed by departure slot, and the
/// requested-demand curve is maintained incrementally.
///
/// # Panics
///
/// Panics if the stream yields a slot that is not strictly greater
/// than its predecessor.
pub fn run_stream<E, O>(
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
) -> StreamStats
where
    E: IntoIterator<Item = SlotEvents>,
    O: SimObserver + ?Sized,
{
    // Active accepted requests (the O(active) working set).
    let mut alive: HashMap<RequestId, Request> = HashMap::new();
    // Departure calendar: slot -> accepted request ids departing then.
    let mut departures_at: BTreeMap<Slot, Vec<RequestId>> = BTreeMap::new();
    // Requested-demand decrements: slot -> total demand departing then
    // (all arrivals, accepted or not — the "requested" curve of Fig. 8).
    let mut requested_drop: BTreeMap<Slot, f64> = BTreeMap::new();
    let mut requested_active = 0.0f64;
    let mut allocated_active = 0.0f64;
    let mut stats = StreamStats::default();

    // The lowest slot the next event may carry (slots strictly increase).
    let mut next_min_slot: u64 = 0;
    let started = Instant::now();
    for event in events {
        let t = event.slot;
        assert!(
            u64::from(t) >= next_min_slot,
            "slot events must be strictly increasing (got slot {t} after {})",
            next_min_slot - 1
        );
        next_min_slot = u64::from(t) + 1;
        observer.on_slot_start(t);

        // Departures of accepted-and-still-alive requests, up to and
        // including this slot (a sparse stream may skip quiet slots;
        // departures falling into the gap are released now).
        let mut departures: Vec<Request> = Vec::new();
        while let Some(entry) = departures_at.first_entry() {
            if *entry.key() > t {
                break;
            }
            for id in entry.remove() {
                if let Some(r) = alive.remove(&id) {
                    allocated_active -= r.demand;
                    departures.push(r);
                }
            }
        }
        while let Some(entry) = requested_drop.first_entry() {
            if *entry.key() > t {
                break;
            }
            requested_active -= entry.remove();
        }

        let arrivals = event.arrivals;
        for r in &arrivals {
            requested_active += r.demand;
            *requested_drop.entry(r.departure()).or_insert(0.0) += r.demand;
        }
        let outcome = algorithm.process_slot(t, &departures, &arrivals);
        stats.arrivals += arrivals.len();

        for r in arrivals {
            let accepted = outcome.accepted.contains(&r.id);
            let status = if accepted {
                RequestStatus::Accepted
            } else {
                RequestStatus::Rejected
            };
            observer.on_arrival(&RequestOutcome::of(&r, status));
            if accepted {
                allocated_active += r.demand;
                departures_at.entry(r.departure()).or_default().push(r.id);
                alive.insert(r.id, r);
            }
        }
        stats.peak_active = stats.peak_active.max(alive.len());
        for &p in &outcome.preempted {
            if let Some(r) = alive.remove(&p) {
                allocated_active -= r.demand;
                observer.on_preemption(&RequestOutcome::of(&r, RequestStatus::Preempted(t)));
            }
        }

        let metrics = SlotMetrics {
            requested_demand: requested_active,
            allocated_demand: allocated_active,
            resource_cost: algorithm.loads().cost_per_slot(substrate),
        };
        stats.slots_run = t + 1;
        if observer.on_slot_end(t, &metrics, algorithm) == SimControl::Stop {
            stats.stopped_early = true;
            break;
        }
    }
    stats.online_secs = started.elapsed().as_secs_f64();
    stats
}

/// Adapts a pre-collected trace into the slot-event stream [`run_stream`]
/// expects: arrivals bucketed per slot (sorted by id within a slot, the
/// ON-VNE order), one event per slot in `0..slots`, arrivals at or past
/// the horizon dropped.
///
/// This is `O(trace)` memory by construction — it exists for tests and
/// pre-materialized traces; lazy sources ([`vne_workload::tracegen::stream`],
/// [`vne_workload::caida::stream`]) feed the engine directly.
pub fn slot_events(trace: &[Request], slots: Slot) -> impl Iterator<Item = SlotEvents> {
    let mut arrivals_at: Vec<Vec<Request>> = vec![Vec::new(); slots as usize];
    for r in trace {
        if r.arrival < slots {
            arrivals_at[r.arrival as usize].push(r.clone());
        }
    }
    for bucket in &mut arrivals_at {
        bucket.sort_by_key(|r| r.id);
    }
    arrivals_at
        .into_iter()
        .enumerate()
        .map(|(t, arrivals)| SlotEvents {
            slot: t as Slot,
            arrivals,
        })
}

/// Runs `algorithm` over a pre-collected `trace` for `slots` time slots
/// and records the full [`RunResult`] (batch convenience over
/// [`run_stream`]).
///
/// `inspect` is called after each slot with the slot index and the
/// algorithm (used by per-node drill-down figures); pass
/// [`no_inspection`] when not needed.
pub fn run<F>(
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    trace: &[Request],
    slots: Slot,
    mut inspect: F,
) -> RunResult
where
    F: FnMut(Slot, &dyn OnlineAlgorithm),
{
    let mut recorder = Recorder::new();
    let mut observer = Tee(
        &mut recorder,
        Inspect(|t: Slot, _m: &SlotMetrics, alg: &dyn OnlineAlgorithm| inspect(t, alg)),
    );
    let stats = run_stream(
        algorithm,
        substrate,
        slot_events(trace, slots),
        &mut observer,
    );
    recorder.finish(algorithm.name(), &stats)
}

/// A no-op inspection hook for [`run`].
pub fn no_inspection(_t: Slot, _a: &dyn OnlineAlgorithm) {}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_model::app::{shapes, AppSet, AppShape};
    use vne_model::ids::AppId;
    use vne_model::ids::NodeId;
    use vne_model::policy::PlacementPolicy;
    use vne_model::substrate::Tier;
    use vne_olive::olive::Olive;

    fn world() -> (SubstrateNetwork, AppSet) {
        let mut s = SubstrateNetwork::new("line");
        let e = s.add_node("e0", Tier::Edge, 100.0, 50.0).unwrap();
        let c = s.add_node("c1", Tier::Core, 200.0, 1.0).unwrap();
        s.add_link(e, c, 1000.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "chain",
            AppShape::Chain,
            shapes::uniform_chain(1, 10.0, 1.0).unwrap(),
        )
        .unwrap();
        (s, apps)
    }

    fn req(id: u64, t: Slot, dur: Slot, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival: t,
            duration: dur,
            ingress: NodeId(0),
            app: AppId(0),
            demand,
        }
    }

    #[test]
    fn accepts_and_departs() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        // Capacity 300 total; β 10: demand 10 → 100 CU.
        let trace = vec![req(0, 0, 3, 10.0), req(1, 1, 3, 10.0), req(2, 5, 2, 10.0)];
        let result = run(&mut alg, &s, &trace, 10, no_inspection);
        assert_eq!(result.requests.len(), 3);
        assert!(result
            .requests
            .iter()
            .all(|r| r.status == RequestStatus::Accepted));
        // Allocated demand series: 10 at t0, 20 at t1-2, 10 at t3, 0 at 4.
        assert_eq!(result.slots[0].allocated_demand, 10.0);
        assert_eq!(result.slots[1].allocated_demand, 20.0);
        assert_eq!(result.slots[3].allocated_demand, 10.0);
        assert_eq!(result.slots[4].allocated_demand, 0.0);
        assert_eq!(result.slots[5].allocated_demand, 10.0);
        // Requested matches allocated when everything is accepted.
        for sm in &result.slots {
            assert!((sm.requested_demand - sm.allocated_demand).abs() < 1e-9);
        }
        assert!(result.online_secs >= 0.0);
    }

    #[test]
    fn rejections_show_in_outcomes_and_series() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        // 300 CU total ⇒ 3 × demand-10 requests fit; the 4th is rejected.
        let trace: Vec<Request> = (0..4).map(|i| req(i, 0, 5, 10.0)).collect();
        let result = run(&mut alg, &s, &trace, 6, no_inspection);
        let denied = result
            .requests
            .iter()
            .filter(|r| r.status.is_denied())
            .count();
        assert_eq!(denied, 1);
        assert_eq!(result.slots[0].allocated_demand, 30.0);
        assert_eq!(result.slots[0].requested_demand, 40.0);
    }

    #[test]
    fn resource_cost_tracks_loads() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let trace = vec![req(0, 0, 2, 10.0)];
        let result = run(&mut alg, &s, &trace, 4, no_inspection);
        // 100 CU on the core node (cost 1/CU) + link 10 CU (cost 1).
        assert!(result.slots[0].resource_cost > 0.0);
        assert_eq!(result.slots[2].resource_cost, 0.0);
    }

    #[test]
    fn inspection_hook_runs_every_slot() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let mut calls = 0;
        let _ = run(&mut alg, &s, &[], 7, |_, _| calls += 1);
        assert_eq!(calls, 7);
    }

    #[test]
    fn arrivals_beyond_horizon_are_ignored() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let trace = vec![req(0, 50, 3, 10.0)];
        let result = run(&mut alg, &s, &trace, 10, no_inspection);
        assert!(result.requests.is_empty());
    }

    #[test]
    fn stream_stats_track_activity() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let trace = vec![req(0, 0, 3, 10.0), req(1, 1, 3, 10.0), req(2, 5, 2, 10.0)];
        let mut observer = crate::observe::NullObserver;
        let stats = run_stream(&mut alg, &s, slot_events(&trace, 10), &mut observer);
        assert_eq!(stats.slots_run, 10);
        assert_eq!(stats.arrivals, 3);
        // Requests 0 and 1 overlap at slots 1-2.
        assert_eq!(stats.peak_active, 2);
        assert!(!stats.stopped_early);
    }

    struct StopAt(Slot);
    impl SimObserver for StopAt {
        fn on_slot_end(
            &mut self,
            t: Slot,
            _m: &SlotMetrics,
            _a: &dyn OnlineAlgorithm,
        ) -> SimControl {
            if t >= self.0 {
                SimControl::Stop
            } else {
                SimControl::Continue
            }
        }
    }

    #[test]
    fn observer_can_stop_early() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let mut observer = StopAt(3);
        let stats = run_stream(&mut alg, &s, slot_events(&[], 100), &mut observer);
        assert!(stats.stopped_early);
        assert_eq!(stats.slots_run, 4);
    }

    #[test]
    fn sparse_streams_release_gap_departures() {
        // An event-driven source that skips quiet slots entirely: the
        // engine must still release departures falling into the gaps.
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        // Departs at slot 2; the stream then jumps straight to slot 9.
        let events = vec![
            SlotEvents {
                slot: 0,
                arrivals: vec![req(0, 0, 2, 10.0)],
            },
            SlotEvents {
                slot: 9,
                arrivals: vec![req(1, 9, 2, 10.0)],
            },
        ];
        let mut recorder = crate::observe::Recorder::new();
        let stats = run_stream(&mut alg, &s, events, &mut recorder);
        assert_eq!(stats.arrivals, 2);
        assert_eq!(stats.peak_active, 1, "request 0 must depart in the gap");
        let result = recorder.finish("QUICKG", &stats);
        // Only yielded slots produce metrics; by slot 9 request 0 is gone.
        assert_eq!(result.slots.len(), 2);
        assert_eq!(result.slots[1].allocated_demand, 10.0);
        assert_eq!(result.slots[1].requested_demand, 10.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_slots_panic() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let events = vec![SlotEvents::empty(5), SlotEvents::empty(5)];
        let _ = run_stream(&mut alg, &s, events, &mut crate::observe::NullObserver);
    }

    #[test]
    fn dyn_algorithm_runs_through_the_engine() {
        // The registry hands out Box<dyn OnlineAlgorithm>; the engine
        // must drive it without knowing the concrete type.
        let (s, apps) = world();
        let mut boxed: Box<dyn OnlineAlgorithm> =
            Box::new(Olive::quickg(s.clone(), apps, PlacementPolicy::default()));
        let trace = vec![req(0, 0, 3, 10.0)];
        let result = run(boxed.as_mut(), &s, &trace, 5, no_inspection);
        assert_eq!(result.requests.len(), 1);
        assert_eq!(result.algorithm, "QUICKG");
    }
}
