//! The streaming, event-driven simulation engine.
//!
//! [`run_stream`] drives an [`OnlineAlgorithm`] over a lazy stream of
//! [`SlotEvents`] (one item per slot): departures are released first,
//! then the slot's arrivals are processed in order (ON-VNE semantics).
//! Instead of materializing the whole trace and a per-request outcome
//! log up front, the engine keeps only the *active* requests — peak
//! memory is `O(active requests)`, independent of the trace length —
//! and reports everything it learns through a [`SimObserver`]:
//!
//! * [`SimObserver::on_arrival`] — one call per request with its
//!   accept/reject decision;
//! * [`SimObserver::on_preemption`] — a previously accepted request was
//!   evicted;
//! * [`SimObserver::on_slot_end`] — per-slot [`SlotMetrics`] plus the
//!   algorithm itself (drill-down inspection), with the option to stop
//!   the simulation early.
//!
//! Ready-made observers live in [`crate::observe`]: a [`Recorder`]
//! collecting the classic [`RunResult`], an `O(classes)` incremental
//! window summary, closure-based inspection, and a tee combinator.
//! [`run`] is the batch convenience wrapper (slice in, [`RunResult`]
//! out) used by tests and small experiments.
//!
//! [`Recorder`]: crate::observe::Recorder

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Instant;

use vne_model::ids::{ClassId, RequestId};
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::state::{Snapshot, StateBlob, StateError, StateReader, StateWriter};
use vne_model::substrate::SubstrateNetwork;
use vne_olive::algorithm::OnlineAlgorithm;

use crate::observe::{Inspect, Recorder, Tee};

/// Final status of a request after the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Accepted and never evicted.
    Accepted,
    /// Rejected on arrival.
    Rejected,
    /// Accepted, then preempted at the given slot.
    Preempted(Slot),
}

impl RequestStatus {
    /// Whether the request counts against the rejection rate (rejected on
    /// arrival or preempted later — both incur the rejection cost).
    pub fn is_denied(self) -> bool {
        !matches!(self, RequestStatus::Accepted)
    }
}

/// Outcome of a single request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The request id.
    pub id: RequestId,
    /// The request class.
    pub class: ClassId,
    /// Arrival slot.
    pub arrival: Slot,
    /// Duration in slots.
    pub duration: Slot,
    /// Demand size.
    pub demand: f64,
    /// Final status.
    pub status: RequestStatus,
}

impl RequestOutcome {
    fn of(request: &Request, status: RequestStatus) -> Self {
        Self {
            id: request.id,
            class: request.class(),
            arrival: request.arrival,
            duration: request.duration,
            demand: request.demand,
            status,
        }
    }
}

impl vne_model::state::StateEncode for RequestStatus {
    fn encode(&self, w: &mut StateWriter) {
        match self {
            RequestStatus::Accepted => w.write_u8(0),
            RequestStatus::Rejected => w.write_u8(1),
            RequestStatus::Preempted(at) => {
                w.write_u8(2);
                w.write_u32(*at);
            }
        }
    }
}

impl vne_model::state::StateDecode for RequestStatus {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        match r.read_u8()? {
            0 => Ok(RequestStatus::Accepted),
            1 => Ok(RequestStatus::Rejected),
            2 => Ok(RequestStatus::Preempted(r.read_u32()?)),
            tag => Err(StateError::Corrupt(format!(
                "invalid request status tag {tag}"
            ))),
        }
    }
}

impl vne_model::state::StateEncode for RequestOutcome {
    fn encode(&self, w: &mut StateWriter) {
        w.write(&self.id);
        w.write(&self.class);
        w.write_u32(self.arrival);
        w.write_u32(self.duration);
        w.write_f64(self.demand);
        w.write(&self.status);
    }
}

impl vne_model::state::StateDecode for RequestOutcome {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            id: r.read()?,
            class: r.read()?,
            arrival: r.read_u32()?,
            duration: r.read_u32()?,
            demand: r.read_f64()?,
            status: r.read()?,
        })
    }
}

/// Per-slot aggregate series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SlotMetrics {
    /// Total demand of all requests that *would* be active (accepted or
    /// not) — the "requested" curve of Fig. 8.
    pub requested_demand: f64,
    /// Total demand of active accepted requests — the "allocated" curve.
    pub allocated_demand: f64,
    /// Resource cost of the current loads for this slot (Eq. 3 term).
    pub resource_cost: f64,
}

impl vne_model::state::StateEncode for SlotMetrics {
    fn encode(&self, w: &mut StateWriter) {
        w.write_f64(self.requested_demand);
        w.write_f64(self.allocated_demand);
        w.write_f64(self.resource_cost);
    }
}

impl vne_model::state::StateDecode for SlotMetrics {
    fn decode(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            requested_demand: r.read_f64()?,
            allocated_demand: r.read_f64()?,
            resource_cost: r.read_f64()?,
        })
    }
}

/// Complete result of one simulation run (as collected by
/// [`crate::observe::Recorder`]).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm name.
    pub algorithm: String,
    /// One outcome per request, in arrival order.
    pub requests: Vec<RequestOutcome>,
    /// One entry per simulated slot.
    pub slots: Vec<SlotMetrics>,
    /// Wall-clock seconds spent inside the online loop.
    pub online_secs: f64,
}

/// Engine-level counters returned by [`run_stream`].
///
/// `peak_active` is the engine's memory high-water mark in requests:
/// the streaming engine holds state only for active accepted requests,
/// so for a stationary workload this stays flat no matter how many
/// slots the stream yields (see the `long_horizon` integration test).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamStats {
    /// Number of slots actually simulated.
    pub slots_run: Slot,
    /// Total arrivals processed.
    pub arrivals: usize,
    /// Maximum number of simultaneously active (accepted) requests —
    /// the engine's O(active) memory bound.
    pub peak_active: usize,
    /// Wall-clock seconds spent inside the online loop.
    pub online_secs: f64,
    /// Whether an observer stopped the run before the stream ended.
    pub stopped_early: bool,
}

/// Observer verdict after each slot: keep going or stop the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimControl {
    /// Continue with the next slot.
    Continue,
    /// Stop the simulation after this slot (early stop).
    Stop,
}

/// Per-slot callbacks invoked by [`run_stream`].
///
/// All methods have no-op defaults, so an observer implements only what
/// it needs. Observers compose with [`crate::observe::Tee`].
pub trait SimObserver {
    /// A new slot begins (before departures are released).
    fn on_slot_start(&mut self, _t: Slot) {}

    /// An arriving request was decided: `outcome.status` is
    /// [`RequestStatus::Accepted`] or [`RequestStatus::Rejected`].
    /// Called once per request, in processing order.
    fn on_arrival(&mut self, _outcome: &RequestOutcome) {}

    /// A previously accepted request was evicted; `outcome.status` is
    /// [`RequestStatus::Preempted`] and supersedes the `Accepted`
    /// outcome reported for the same id earlier.
    fn on_preemption(&mut self, _outcome: &RequestOutcome) {}

    /// The slot is complete: aggregate metrics plus the algorithm for
    /// drill-down inspection (downcast via
    /// [`OnlineAlgorithm::as_any`]). Return [`SimControl::Stop`] to end
    /// the run early.
    fn on_slot_end(
        &mut self,
        _t: Slot,
        _metrics: &SlotMetrics,
        _algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        SimControl::Continue
    }

    /// The slot is fully committed: invoked after
    /// [`SimObserver::on_slot_end`] with a checkpointable [`EngineView`]
    /// of the engine's internal state — **including when the slot's
    /// `on_slot_end` asked to stop**, so an early-stopped run still
    /// leaves a restorable checkpoint at its final slot (see
    /// [`crate::observe::Checkpointer`]).
    fn on_slot_committed(&mut self, _view: &EngineView<'_>) {}
}

/// Blanket impl so `&mut observer` can be passed down call chains.
impl<O: SimObserver + ?Sized> SimObserver for &mut O {
    fn on_slot_start(&mut self, t: Slot) {
        (**self).on_slot_start(t);
    }
    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        (**self).on_arrival(outcome);
    }
    fn on_preemption(&mut self, outcome: &RequestOutcome) {
        (**self).on_preemption(outcome);
    }
    fn on_slot_end(
        &mut self,
        t: Slot,
        metrics: &SlotMetrics,
        algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        (**self).on_slot_end(t, metrics, algorithm)
    }
    fn on_slot_committed(&mut self, view: &EngineView<'_>) {
        (**self).on_slot_committed(view);
    }
}

/// The engine's mutable state between slots: the `O(active)` working
/// set ([`run_stream`] keeps nothing else). Factored out of the run
/// loop so checkpoints can serialize it and [`run_stream_from`] can
/// rebuild it.
#[derive(Debug, Clone, Default)]
pub struct EngineState {
    /// Active accepted requests (the O(active) working set).
    alive: HashMap<RequestId, Request>,
    /// Departure calendar: slot -> accepted request ids departing then
    /// (in acceptance order — the order departures are released in).
    departures_at: BTreeMap<Slot, Vec<RequestId>>,
    /// Requested-demand decrements: slot -> total demand departing then
    /// (all arrivals, accepted or not — the "requested" curve of Fig. 8).
    requested_drop: BTreeMap<Slot, f64>,
    requested_active: f64,
    allocated_active: f64,
    stats: StreamStats,
    /// The lowest slot the next event may carry (slots strictly
    /// increase); after a resume this is `checkpoint slot + 1`.
    next_min_slot: u64,
}

impl EngineState {
    /// The state of a run that has not processed any slot.
    pub fn fresh() -> Self {
        Self::default()
    }

    /// The engine counters accumulated so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Number of currently active (accepted) requests.
    pub fn active_count(&self) -> usize {
        self.alive.len()
    }

    /// The first slot the next event may carry.
    pub fn next_slot(&self) -> u64 {
        self.next_min_slot
    }
}

/// Checkpointing: everything [`run_stream`] keeps between slots. The
/// `alive` hash map is canonicalized by request id; the departure
/// calendar's per-slot vectors keep their order (it is the release
/// order, and release order feeds the algorithm's departure slice).
impl Snapshot for EngineState {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        let mut alive: Vec<&Request> = self.alive.values().collect();
        alive.sort_by_key(|r| r.id);
        w.write_seq(alive.into_iter());
        w.write(&self.departures_at);
        w.write(&self.requested_drop);
        w.write_f64(self.requested_active);
        w.write_f64(self.allocated_active);
        w.write_u32(self.stats.slots_run);
        w.write_usize(self.stats.arrivals);
        w.write_usize(self.stats.peak_active);
        w.write_f64(self.stats.online_secs);
        w.write_bool(self.stats.stopped_early);
        w.write_u64(self.next_min_slot);
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let alive_list: Vec<Request> = r.read_seq()?;
        let departures_at: BTreeMap<Slot, Vec<RequestId>> = r.read()?;
        let requested_drop: BTreeMap<Slot, f64> = r.read()?;
        let requested_active = r.read_f64()?;
        let allocated_active = r.read_f64()?;
        let stats = StreamStats {
            slots_run: r.read_u32()?,
            arrivals: r.read_usize()?,
            peak_active: r.read_usize()?,
            online_secs: r.read_f64()?,
            stopped_early: r.read_bool()?,
        };
        let next_min_slot = r.read_u64()?;
        r.finish()?;
        self.alive = alive_list.into_iter().map(|r| (r.id, r)).collect();
        self.departures_at = departures_at;
        self.requested_drop = requested_drop;
        self.requested_active = requested_active;
        self.allocated_active = allocated_active;
        self.stats = stats;
        self.next_min_slot = next_min_slot;
        Ok(())
    }
}

/// A borrowed, checkpointable view of the engine handed to
/// [`SimObserver::on_slot_committed`] after every slot.
#[derive(Clone, Copy)]
pub struct EngineView<'a> {
    slot: Slot,
    state: &'a EngineState,
    algorithm: &'a dyn OnlineAlgorithm,
}

impl fmt::Debug for EngineView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineView")
            .field("slot", &self.slot)
            .field("algorithm", &self.algorithm.name())
            .field("active", &self.state.active_count())
            .finish()
    }
}

impl<'a> EngineView<'a> {
    /// The slot that just committed.
    pub fn slot(&self) -> Slot {
        self.slot
    }

    /// The engine state after the slot.
    pub fn state(&self) -> &'a EngineState {
        self.state
    }

    /// The running algorithm (drill-down via [`OnlineAlgorithm::as_any`]).
    pub fn algorithm(&self) -> &'a dyn OnlineAlgorithm {
        self.algorithm
    }

    /// Serializes a full [`EngineCheckpoint`] at this slot. The caller
    /// supplies the serialized state of whatever observers must survive
    /// the resume (e.g. a [`crate::observe::WindowSummary`] snapshot) —
    /// the engine cannot see them, only their owner can.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::Unsupported`] when the running algorithm
    /// does not implement [`OnlineAlgorithm::snapshot_state`].
    pub fn checkpoint(&self, observer_state: StateBlob) -> Result<EngineCheckpoint, StateError> {
        let algorithm_state = self.algorithm.snapshot_state().ok_or_else(|| {
            StateError::Unsupported(format!("algorithm {}", self.algorithm.name()))
        })?;
        Ok(EngineCheckpoint {
            slot: self.slot,
            algorithm: self.algorithm.name().to_string(),
            engine: self.state.snapshot(),
            algorithm_state,
            observer_state,
        })
    }
}

/// A complete, serializable snapshot of a streaming run after one slot:
/// enough to finish the run later ([`run_stream_from`]) or to branch a
/// what-if fork from the middle of a stream
/// ([`crate::scenario::Scenario::fork_at`]), with results byte-identical
/// to the uninterrupted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineCheckpoint {
    /// The last slot the checkpointed run completed; the resume
    /// consumes events from `slot + 1` on.
    pub slot: Slot,
    /// Name of the algorithm that produced `algorithm_state` (validated
    /// on resume).
    pub algorithm: String,
    /// The [`EngineState`] snapshot.
    pub engine: StateBlob,
    /// The algorithm's [`OnlineAlgorithm::snapshot_state`] blob.
    pub algorithm_state: StateBlob,
    /// The resumable observer state (owner-defined; often a
    /// [`crate::observe::WindowSummary`] snapshot).
    pub observer_state: StateBlob,
}

impl EngineCheckpoint {
    /// Magic + version prefix of the serialized form.
    pub const MAGIC: [u8; 8] = *b"VNECKPT1";

    /// Serializes the checkpoint for storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        for b in Self::MAGIC {
            w.write_u8(b);
        }
        w.write_u32(self.slot);
        w.write_str(&self.algorithm);
        w.write_blob(&self.engine);
        w.write_blob(&self.algorithm_state);
        w.write_blob(&self.observer_state);
        w.finish().into_bytes()
    }

    /// Parses a checkpoint serialized by [`EngineCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on bad magic or malformed content.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::from_bytes(bytes);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.read_u8()?;
        }
        if magic != Self::MAGIC {
            return Err(StateError::Corrupt(format!(
                "bad checkpoint magic {magic:02x?}"
            )));
        }
        let checkpoint = Self {
            slot: r.read_u32()?,
            algorithm: r.read_str()?,
            engine: r.read_blob()?,
            algorithm_state: r.read_blob()?,
            observer_state: r.read_blob()?,
        };
        r.finish()?;
        Ok(checkpoint)
    }
}

/// Runs `algorithm` over a lazy stream of slot events.
///
/// Slots must be yielded in strictly increasing order (enforced by an
/// assertion); quiet slots may be skipped — departures falling into a
/// gap are released at the next yielded slot, and only yielded slots
/// get a [`SimObserver::on_slot_end`] call. Use [`slot_events`] to
/// adapt a pre-collected trace. Engine state is bounded by the number
/// of simultaneously active requests: departures of accepted requests
/// are scheduled in a calendar keyed by departure slot, and the
/// requested-demand curve is maintained incrementally.
///
/// # Panics
///
/// Panics if the stream yields a slot that is not strictly greater
/// than its predecessor.
pub fn run_stream<E, O>(
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
) -> StreamStats
where
    E: IntoIterator<Item = SlotEvents>,
    O: SimObserver + ?Sized,
{
    let mut state = EngineState::fresh();
    drive(&mut state, algorithm, substrate, events, observer)
}

/// Resumes a checkpointed run: restores the algorithm, the observer and
/// the engine state from `checkpoint`, drops the events the checkpoint
/// already consumed (slots `<= checkpoint.slot`; lazy sources can
/// fast-forward cheaper via their `skip_to`), and finishes the run.
///
/// `algorithm` and `observer` must be freshly constructed with the same
/// configuration as the checkpointed run (the deterministic scenario
/// pipeline does this per seed); their mutable state is replaced from
/// the checkpoint. The finished run is **byte-identical** to the
/// uninterrupted one — the guarantee pinned by the resume-determinism
/// test battery.
///
/// # Errors
///
/// Returns a [`StateError`] when the algorithm's name does not match
/// the checkpoint or any blob fails to restore.
///
/// # Panics
///
/// Panics like [`run_stream`] if the remaining stream yields
/// non-increasing slots.
pub fn run_stream_from<E, O>(
    checkpoint: &EngineCheckpoint,
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
) -> Result<StreamStats, StateError>
where
    E: IntoIterator<Item = SlotEvents>,
    O: SimObserver + Snapshot + ?Sized,
{
    if algorithm.name() != checkpoint.algorithm {
        return Err(StateError::Mismatch {
            expected: format!("algorithm {}", checkpoint.algorithm),
            found: format!("algorithm {}", algorithm.name()),
        });
    }
    algorithm.restore_state(&checkpoint.algorithm_state)?;
    observer.restore(&checkpoint.observer_state)?;
    let mut state = EngineState::fresh();
    state.restore(&checkpoint.engine)?;
    // The resumed segment gets its own early-stop verdict.
    state.stats.stopped_early = false;
    let consumed = state.next_min_slot;
    let remaining = events
        .into_iter()
        .skip_while(move |ev| u64::from(ev.slot) < consumed);
    Ok(drive(&mut state, algorithm, substrate, remaining, observer))
}

/// The shared engine loop behind [`run_stream`] and [`run_stream_from`].
fn drive<E, O>(
    state: &mut EngineState,
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    events: E,
    observer: &mut O,
) -> StreamStats
where
    E: IntoIterator<Item = SlotEvents>,
    O: SimObserver + ?Sized,
{
    // Online seconds accumulate across resumed segments.
    let base_secs = state.stats.online_secs;
    let started = Instant::now();
    for event in events {
        let t = event.slot;
        assert!(
            u64::from(t) >= state.next_min_slot,
            "slot events must be strictly increasing (got slot {t} after {})",
            state.next_min_slot - 1
        );
        state.next_min_slot = u64::from(t) + 1;
        observer.on_slot_start(t);

        // Departures of accepted-and-still-alive requests, up to and
        // including this slot (a sparse stream may skip quiet slots;
        // departures falling into the gap are released now).
        let mut departures: Vec<Request> = Vec::new();
        while let Some(entry) = state.departures_at.first_entry() {
            if *entry.key() > t {
                break;
            }
            for id in entry.remove() {
                if let Some(r) = state.alive.remove(&id) {
                    state.allocated_active -= r.demand;
                    departures.push(r);
                }
            }
        }
        while let Some(entry) = state.requested_drop.first_entry() {
            if *entry.key() > t {
                break;
            }
            state.requested_active -= entry.remove();
        }

        let arrivals = event.arrivals;
        for r in &arrivals {
            state.requested_active += r.demand;
            *state.requested_drop.entry(r.departure()).or_insert(0.0) += r.demand;
        }
        let outcome = algorithm.process_slot(t, &departures, &arrivals);
        state.stats.arrivals += arrivals.len();

        for r in arrivals {
            let accepted = outcome.accepted.contains(&r.id);
            let status = if accepted {
                RequestStatus::Accepted
            } else {
                RequestStatus::Rejected
            };
            observer.on_arrival(&RequestOutcome::of(&r, status));
            if accepted {
                state.allocated_active += r.demand;
                state
                    .departures_at
                    .entry(r.departure())
                    .or_default()
                    .push(r.id);
                state.alive.insert(r.id, r);
            }
        }
        state.stats.peak_active = state.stats.peak_active.max(state.alive.len());
        for &p in &outcome.preempted {
            if let Some(r) = state.alive.remove(&p) {
                state.allocated_active -= r.demand;
                observer.on_preemption(&RequestOutcome::of(&r, RequestStatus::Preempted(t)));
            }
        }

        let metrics = SlotMetrics {
            requested_demand: state.requested_active,
            allocated_demand: state.allocated_active,
            resource_cost: algorithm.loads().cost_per_slot(substrate),
        };
        state.stats.slots_run = t + 1;
        let control = observer.on_slot_end(t, &metrics, algorithm);
        // The commit hook fires even when this slot's on_slot_end asked
        // to stop: a budgeted run must leave a checkpoint at its final
        // slot (the StopAfter-on-checkpoint-slot regression).
        state.stats.online_secs = base_secs + started.elapsed().as_secs_f64();
        observer.on_slot_committed(&EngineView {
            slot: t,
            state: &*state,
            algorithm: &*algorithm,
        });
        if control == SimControl::Stop {
            state.stats.stopped_early = true;
            break;
        }
    }
    state.stats.online_secs = base_secs + started.elapsed().as_secs_f64();
    state.stats
}

/// Adapts a pre-collected trace into the slot-event stream [`run_stream`]
/// expects: arrivals bucketed per slot (sorted by id within a slot, the
/// ON-VNE order), one event per slot in `0..slots`, arrivals at or past
/// the horizon dropped.
///
/// This is `O(trace)` memory by construction — it exists for tests and
/// pre-materialized traces; lazy sources ([`vne_workload::tracegen::stream`],
/// [`vne_workload::caida::stream`]) feed the engine directly.
pub fn slot_events(trace: &[Request], slots: Slot) -> impl Iterator<Item = SlotEvents> {
    let mut arrivals_at: Vec<Vec<Request>> = vec![Vec::new(); slots as usize];
    for r in trace {
        if r.arrival < slots {
            arrivals_at[r.arrival as usize].push(r.clone());
        }
    }
    for bucket in &mut arrivals_at {
        bucket.sort_by_key(|r| r.id);
    }
    arrivals_at
        .into_iter()
        .enumerate()
        .map(|(t, arrivals)| SlotEvents {
            slot: t as Slot,
            arrivals,
        })
}

/// Runs `algorithm` over a pre-collected `trace` for `slots` time slots
/// and records the full [`RunResult`] (batch convenience over
/// [`run_stream`]).
///
/// `inspect` is called after each slot with the slot index and the
/// algorithm (used by per-node drill-down figures); pass
/// [`no_inspection`] when not needed.
pub fn run<F>(
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    trace: &[Request],
    slots: Slot,
    mut inspect: F,
) -> RunResult
where
    F: FnMut(Slot, &dyn OnlineAlgorithm),
{
    let mut recorder = Recorder::new();
    let mut observer = Tee(
        &mut recorder,
        Inspect(|t: Slot, _m: &SlotMetrics, alg: &dyn OnlineAlgorithm| inspect(t, alg)),
    );
    let stats = run_stream(
        algorithm,
        substrate,
        slot_events(trace, slots),
        &mut observer,
    );
    recorder.finish(algorithm.name(), &stats)
}

/// A no-op inspection hook for [`run`].
pub fn no_inspection(_t: Slot, _a: &dyn OnlineAlgorithm) {}

#[cfg(test)]
mod tests {
    use super::*;
    use vne_model::app::{shapes, AppSet, AppShape};
    use vne_model::ids::AppId;
    use vne_model::ids::NodeId;
    use vne_model::policy::PlacementPolicy;
    use vne_model::substrate::Tier;
    use vne_olive::olive::Olive;

    fn world() -> (SubstrateNetwork, AppSet) {
        let mut s = SubstrateNetwork::new("line");
        let e = s.add_node("e0", Tier::Edge, 100.0, 50.0).unwrap();
        let c = s.add_node("c1", Tier::Core, 200.0, 1.0).unwrap();
        s.add_link(e, c, 1000.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "chain",
            AppShape::Chain,
            shapes::uniform_chain(1, 10.0, 1.0).unwrap(),
        )
        .unwrap();
        (s, apps)
    }

    fn req(id: u64, t: Slot, dur: Slot, demand: f64) -> Request {
        Request {
            id: RequestId(id),
            arrival: t,
            duration: dur,
            ingress: NodeId(0),
            app: AppId(0),
            demand,
        }
    }

    #[test]
    fn accepts_and_departs() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        // Capacity 300 total; β 10: demand 10 → 100 CU.
        let trace = vec![req(0, 0, 3, 10.0), req(1, 1, 3, 10.0), req(2, 5, 2, 10.0)];
        let result = run(&mut alg, &s, &trace, 10, no_inspection);
        assert_eq!(result.requests.len(), 3);
        assert!(result
            .requests
            .iter()
            .all(|r| r.status == RequestStatus::Accepted));
        // Allocated demand series: 10 at t0, 20 at t1-2, 10 at t3, 0 at 4.
        assert_eq!(result.slots[0].allocated_demand, 10.0);
        assert_eq!(result.slots[1].allocated_demand, 20.0);
        assert_eq!(result.slots[3].allocated_demand, 10.0);
        assert_eq!(result.slots[4].allocated_demand, 0.0);
        assert_eq!(result.slots[5].allocated_demand, 10.0);
        // Requested matches allocated when everything is accepted.
        for sm in &result.slots {
            assert!((sm.requested_demand - sm.allocated_demand).abs() < 1e-9);
        }
        assert!(result.online_secs >= 0.0);
    }

    #[test]
    fn rejections_show_in_outcomes_and_series() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        // 300 CU total ⇒ 3 × demand-10 requests fit; the 4th is rejected.
        let trace: Vec<Request> = (0..4).map(|i| req(i, 0, 5, 10.0)).collect();
        let result = run(&mut alg, &s, &trace, 6, no_inspection);
        let denied = result
            .requests
            .iter()
            .filter(|r| r.status.is_denied())
            .count();
        assert_eq!(denied, 1);
        assert_eq!(result.slots[0].allocated_demand, 30.0);
        assert_eq!(result.slots[0].requested_demand, 40.0);
    }

    #[test]
    fn resource_cost_tracks_loads() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let trace = vec![req(0, 0, 2, 10.0)];
        let result = run(&mut alg, &s, &trace, 4, no_inspection);
        // 100 CU on the core node (cost 1/CU) + link 10 CU (cost 1).
        assert!(result.slots[0].resource_cost > 0.0);
        assert_eq!(result.slots[2].resource_cost, 0.0);
    }

    #[test]
    fn inspection_hook_runs_every_slot() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let mut calls = 0;
        let _ = run(&mut alg, &s, &[], 7, |_, _| calls += 1);
        assert_eq!(calls, 7);
    }

    #[test]
    fn arrivals_beyond_horizon_are_ignored() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let trace = vec![req(0, 50, 3, 10.0)];
        let result = run(&mut alg, &s, &trace, 10, no_inspection);
        assert!(result.requests.is_empty());
    }

    #[test]
    fn stream_stats_track_activity() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let trace = vec![req(0, 0, 3, 10.0), req(1, 1, 3, 10.0), req(2, 5, 2, 10.0)];
        let mut observer = crate::observe::NullObserver;
        let stats = run_stream(&mut alg, &s, slot_events(&trace, 10), &mut observer);
        assert_eq!(stats.slots_run, 10);
        assert_eq!(stats.arrivals, 3);
        // Requests 0 and 1 overlap at slots 1-2.
        assert_eq!(stats.peak_active, 2);
        assert!(!stats.stopped_early);
    }

    struct StopAt(Slot);
    impl SimObserver for StopAt {
        fn on_slot_end(
            &mut self,
            t: Slot,
            _m: &SlotMetrics,
            _a: &dyn OnlineAlgorithm,
        ) -> SimControl {
            if t >= self.0 {
                SimControl::Stop
            } else {
                SimControl::Continue
            }
        }
    }

    #[test]
    fn observer_can_stop_early() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let mut observer = StopAt(3);
        let stats = run_stream(&mut alg, &s, slot_events(&[], 100), &mut observer);
        assert!(stats.stopped_early);
        assert_eq!(stats.slots_run, 4);
    }

    #[test]
    fn sparse_streams_release_gap_departures() {
        // An event-driven source that skips quiet slots entirely: the
        // engine must still release departures falling into the gaps.
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        // Departs at slot 2; the stream then jumps straight to slot 9.
        let events = vec![
            SlotEvents {
                slot: 0,
                arrivals: vec![req(0, 0, 2, 10.0)],
            },
            SlotEvents {
                slot: 9,
                arrivals: vec![req(1, 9, 2, 10.0)],
            },
        ];
        let mut recorder = crate::observe::Recorder::new();
        let stats = run_stream(&mut alg, &s, events, &mut recorder);
        assert_eq!(stats.arrivals, 2);
        assert_eq!(stats.peak_active, 1, "request 0 must depart in the gap");
        let result = recorder.finish("QUICKG", &stats);
        // Only yielded slots produce metrics; by slot 9 request 0 is gone.
        assert_eq!(result.slots.len(), 2);
        assert_eq!(result.slots[1].allocated_demand, 10.0);
        assert_eq!(result.slots[1].requested_demand, 10.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_slots_panic() {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let events = vec![SlotEvents::empty(5), SlotEvents::empty(5)];
        let _ = run_stream(&mut alg, &s, events, &mut crate::observe::NullObserver);
    }

    #[test]
    fn dyn_algorithm_runs_through_the_engine() {
        // The registry hands out Box<dyn OnlineAlgorithm>; the engine
        // must drive it without knowing the concrete type.
        let (s, apps) = world();
        let mut boxed: Box<dyn OnlineAlgorithm> =
            Box::new(Olive::quickg(s.clone(), apps, PlacementPolicy::default()));
        let trace = vec![req(0, 0, 3, 10.0)];
        let result = run(boxed.as_mut(), &s, &trace, 5, no_inspection);
        assert_eq!(result.requests.len(), 1);
        assert_eq!(result.algorithm, "QUICKG");
    }
}
