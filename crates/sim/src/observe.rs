//! Ready-made [`SimObserver`]s for the streaming engine.
//!
//! * [`NullObserver`] — ignores everything (pure throughput runs);
//! * [`Recorder`] — collects the classic [`RunResult`] (per-request
//!   outcome log + per-slot series), `O(trace)` memory by design;
//! * [`WindowSummary`] — computes the measurement-window [`Summary`]
//!   incrementally in `O(classes + nodes)` memory, the pairing for
//!   long-horizon streams where a full outcome log would defeat the
//!   engine's `O(active)` bound;
//! * [`Inspect`] — adapts a per-slot closure (drill-down figures);
//! * [`StopAfter`] — ends the run after a fixed slot budget (the
//!   simplest user of [`SimControl::Stop`]);
//! * [`Checkpointer`] — wraps a snapshot-capable observer and
//!   serializes a full [`EngineCheckpoint`] every N slots, making
//!   long-horizon runs interruptible and forkable;
//! * [`Tee`] — composes two observers.
//!
//! The recording observers ([`Recorder`], [`WindowSummary`],
//! [`StopAfter`], [`NullObserver`], and [`Tee`]s of them) implement
//! [`Snapshot`], so their partial statistics ride inside checkpoints
//! and resume bit-exactly.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use vne_model::cost::RejectionPenalty;
use vne_model::ids::{AppId, NodeId, RequestId};
use vne_model::request::Slot;
use vne_model::state::{Snapshot, StateBlob, StateError, StateReader, StateWriter};
use vne_olive::algorithm::OnlineAlgorithm;

use crate::engine::{
    ChurnStats, EngineCheckpoint, EngineView, PipelineSafe, RequestOutcome, RunResult, SimControl,
    SimObserver, SlotMetrics, StreamStats,
};
use crate::metrics::{balance_from_counts, NeumaierSum, Summary};

/// A callback invoked with every checkpoint a [`Checkpointer`] captures.
type CheckpointSinkFn = Box<dyn FnMut(&EngineCheckpoint) + Send>;

/// An observer that ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

impl PipelineSafe for NullObserver {}

impl Snapshot for NullObserver {
    fn snapshot(&self) -> StateBlob {
        StateBlob::default()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        if blob.is_empty() {
            Ok(())
        } else {
            Err(StateError::TrailingBytes {
                remaining: blob.len(),
            })
        }
    }
}

/// Collects the full per-request outcome log and per-slot series.
///
/// Memory is `O(trace length)` — that is the point of a recorder. Use
/// [`WindowSummary`] when only the window summary is needed.
///
/// The recorded [`RunResult::slots`] vector is indexed by position, so
/// consumers like [`crate::metrics::summarize`] equate index and slot
/// number: feed the recorder a *dense* stream (one event per slot from
/// 0, as produced by [`crate::engine::slot_events`] and the scenario
/// trace streams). With a sparse stream the per-slot series would be
/// compacted and window filters would look at the wrong entries; use
/// [`WindowSummary`] (which reads the real slot number) there instead.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    requests: Vec<RequestOutcome>,
    index: HashMap<RequestId, usize>,
    slots: Vec<SlotMetrics>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the recorder into a [`RunResult`].
    pub fn finish(self, algorithm: &str, stats: &StreamStats) -> RunResult {
        RunResult {
            algorithm: algorithm.to_string(),
            requests: self.requests,
            slots: self.slots,
            online_secs: stats.online_secs,
        }
    }
}

impl SimObserver for Recorder {
    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        self.index.insert(outcome.id, self.requests.len());
        self.requests.push(outcome.clone());
    }

    fn on_preemption(&mut self, outcome: &RequestOutcome) {
        if let Some(&i) = self.index.get(&outcome.id) {
            self.requests[i] = outcome.clone();
        }
    }

    fn on_slot_end(
        &mut self,
        _t: Slot,
        metrics: &SlotMetrics,
        _algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        self.slots.push(*metrics);
        SimControl::Continue
    }
}

/// The recorder never looks at the algorithm: safe on the pipelined
/// observer stage.
impl PipelineSafe for Recorder {}

/// Checkpointing: the outcome log and the per-slot series (the id
/// index is rebuilt from the log). `O(trace)` blobs by nature — pair a
/// checkpointed long-horizon run with [`WindowSummary`] instead.
impl Snapshot for Recorder {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write(&self.requests);
        w.write(&self.slots);
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let requests: Vec<RequestOutcome> = r.read()?;
        let slots: Vec<SlotMetrics> = r.read()?;
        r.finish()?;
        self.index = requests
            .iter()
            .enumerate()
            .map(|(i, o)| (o.id, i))
            .collect();
        self.requests = requests;
        self.slots = slots;
        Ok(())
    }
}

/// Computes the measurement-window [`Summary`] incrementally.
///
/// State is `O(request classes + nodes)` — counts, running costs and
/// the per-`(node, app)` rejection tallies for the balance index — so
/// a multi-seed sweep over arbitrarily long streams never materializes
/// an outcome log. Every field matches [`crate::metrics::summarize`]
/// bit for bit, *including* the rejection cost under preemption: both
/// paths fold rejected-on-arrival costs in arrival order and preemption
/// costs in `(eviction slot, request id)` order through a compensated
/// [`NeumaierSum`] (the per-slot preemption buffer below pins the
/// within-slot order to request ids).
#[derive(Debug, Clone)]
pub struct WindowSummary {
    window: (Slot, Slot),
    penalty: RejectionPenalty,
    arrivals: usize,
    rejected: usize,
    preempted: usize,
    rejected_cost: NeumaierSum,
    preempted_cost: NeumaierSum,
    /// This slot's preemption costs, folded in id order at slot end.
    pending_preemptions: Vec<(RequestId, f64)>,
    resource_cost: f64,
    n_v: BTreeMap<NodeId, f64>,
    x_va: BTreeMap<(NodeId, AppId), f64>,
    apps: BTreeSet<AppId>,
    /// Cumulative churn tallies over window slots.
    churn: ChurnStats,
}

impl WindowSummary {
    /// Creates a summary observer for a `[from, to)` window of arrival
    /// slots.
    pub fn new(window: (Slot, Slot), penalty: RejectionPenalty) -> Self {
        Self {
            window,
            penalty,
            arrivals: 0,
            rejected: 0,
            preempted: 0,
            rejected_cost: NeumaierSum::new(),
            preempted_cost: NeumaierSum::new(),
            pending_preemptions: Vec::new(),
            resource_cost: 0.0,
            n_v: BTreeMap::new(),
            x_va: BTreeMap::new(),
            apps: BTreeSet::new(),
            churn: ChurnStats::default(),
        }
    }

    fn in_window(&self, arrival: Slot) -> bool {
        arrival >= self.window.0 && arrival < self.window.1
    }

    fn denial_cost(&self, outcome: &RequestOutcome) -> f64 {
        self.penalty.psi(outcome.class.app) * outcome.demand * f64::from(outcome.duration)
    }

    /// The preempted-cost sum with this slot's still-buffered costs
    /// folded in request-id order (the pinned within-slot order shared
    /// with the batch path). Non-destructive — [`WindowSummary::finish`]
    /// uses it mid-slot; the per-slot flush sorts the buffer in place.
    fn flushed_preempted_cost(&self) -> NeumaierSum {
        let mut pending = self.pending_preemptions.clone();
        pending.sort_by_key(|&(id, _)| id);
        let mut sum = self.preempted_cost;
        for (_, cost) in pending {
            sum.add(cost);
        }
        sum
    }

    /// Finalizes the summary (balance index, rates, runtime).
    pub fn finish(&self, stats: &StreamStats) -> Summary {
        let denied = self.rejected + self.preempted;
        let rejection_cost = self.rejected_cost.value() + self.flushed_preempted_cost().value();
        Summary {
            arrivals: self.arrivals,
            rejected: self.rejected,
            preempted: self.preempted,
            rejection_rate: if self.arrivals == 0 {
                0.0
            } else {
                denied as f64 / self.arrivals as f64
            },
            resource_cost: self.resource_cost,
            rejection_cost,
            total_cost: self.resource_cost + rejection_cost,
            balance_index: balance_from_counts(&self.n_v, &self.x_va, &self.apps),
            online_secs: stats.online_secs,
            churn: self.churn,
        }
    }
}

impl SimObserver for WindowSummary {
    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        if !self.in_window(outcome.arrival) {
            return;
        }
        self.arrivals += 1;
        self.apps.insert(outcome.class.app);
        *self.n_v.entry(outcome.class.ingress).or_insert(0.0) += 1.0;
        if outcome.status.is_denied() {
            self.rejected += 1;
            let cost = self.denial_cost(outcome);
            self.rejected_cost.add(cost);
            *self
                .x_va
                .entry((outcome.class.ingress, outcome.class.app))
                .or_insert(0.0) += 1.0;
        }
    }

    fn on_churn(&mut self, t: Slot, stats: &ChurnStats) {
        // Churn is attributed to the slot it hits (the affected
        // requests' arrival slots are already folded into the denial
        // tallies via the preemption path).
        if self.in_window(t) {
            self.churn.absorb(stats);
        }
    }

    fn on_preemption(&mut self, outcome: &RequestOutcome) {
        if !self.in_window(outcome.arrival) {
            return;
        }
        self.preempted += 1;
        let cost = self.denial_cost(outcome);
        self.pending_preemptions.push((outcome.id, cost));
        *self
            .x_va
            .entry((outcome.class.ingress, outcome.class.app))
            .or_insert(0.0) += 1.0;
    }

    fn on_slot_end(
        &mut self,
        t: Slot,
        metrics: &SlotMetrics,
        _algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        if !self.pending_preemptions.is_empty() {
            self.pending_preemptions.sort_by_key(|&(id, _)| id);
            for &(_, cost) in &self.pending_preemptions {
                self.preempted_cost.add(cost);
            }
            self.pending_preemptions.clear();
        }
        if self.in_window(t) {
            // audit:allow(D3, "pinned parity with the batch Summary fold; NeumaierSum would re-pin goldens")
            self.resource_cost += metrics.resource_cost;
        }
        SimControl::Continue
    }
}

/// The summary folds only outcome values and metrics: safe on the
/// pipelined observer stage.
impl PipelineSafe for WindowSummary {}

/// Checkpointing: all counters, both compensated cost accumulators
/// (sum + compensation, bit-exact), the per-slot preemption buffer and
/// the balance tallies. The measurement window is validated so a blob
/// cannot restore into a summary over a different window; the penalty
/// is a construction input.
impl Snapshot for WindowSummary {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_u32(self.window.0);
        w.write_u32(self.window.1);
        w.write_usize(self.arrivals);
        w.write_usize(self.rejected);
        w.write_usize(self.preempted);
        for sum in [&self.rejected_cost, &self.preempted_cost] {
            let (s, c) = sum.parts();
            w.write_f64(s);
            w.write_f64(c);
        }
        w.write(&self.pending_preemptions);
        w.write_f64(self.resource_cost);
        w.write(&self.n_v);
        w.write(&self.x_va);
        w.write_usize(self.apps.len());
        for app in &self.apps {
            w.write(app);
        }
        w.write_usize(self.churn.events);
        w.write_usize(self.churn.stranded);
        w.write_usize(self.churn.evicted);
        w.write_usize(self.churn.reembedded);
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let window = (r.read_u32()?, r.read_u32()?);
        if window != self.window {
            return Err(StateError::Mismatch {
                expected: format!("measurement window {:?}", self.window),
                found: format!("window {window:?}"),
            });
        }
        let arrivals = r.read_usize()?;
        let rejected = r.read_usize()?;
        let preempted = r.read_usize()?;
        let rejected_cost = NeumaierSum::from_parts(r.read_f64()?, r.read_f64()?);
        let preempted_cost = NeumaierSum::from_parts(r.read_f64()?, r.read_f64()?);
        let pending_preemptions: Vec<(RequestId, f64)> = r.read()?;
        let resource_cost = r.read_f64()?;
        let n_v: BTreeMap<NodeId, f64> = r.read()?;
        let x_va: BTreeMap<(NodeId, AppId), f64> = r.read()?;
        let app_count = r.read_usize()?;
        let mut apps = BTreeSet::new();
        for _ in 0..app_count {
            apps.insert(r.read::<AppId>()?);
        }
        let churn = ChurnStats {
            events: r.read_usize()?,
            stranded: r.read_usize()?,
            evicted: r.read_usize()?,
            reembedded: r.read_usize()?,
        };
        r.finish()?;
        self.arrivals = arrivals;
        self.rejected = rejected;
        self.preempted = preempted;
        self.rejected_cost = rejected_cost;
        self.preempted_cost = preempted_cost;
        self.pending_preemptions = pending_preemptions;
        self.resource_cost = resource_cost;
        self.n_v = n_v;
        self.x_va = x_va;
        self.apps = apps;
        self.churn = churn;
        Ok(())
    }
}

/// Stops the run after observing a fixed number of slot-end events —
/// the smallest real user of [`SimControl::Stop`]: cap an open-ended
/// stream at a slot budget and keep the partial statistics collected so
/// far (compose with [`Tee`] to pair it with a recording observer).
///
/// Deliberately not `Copy`: the counter is the observer's state, and a
/// silent by-value copy into [`Tee`] would leave the caller reading a
/// stale [`StopAfter::slots_seen`]. Pass `&mut` (the blanket
/// `SimObserver for &mut O` impl covers that).
#[derive(Debug, Clone)]
pub struct StopAfter {
    limit: Slot,
    seen: Slot,
}

impl StopAfter {
    /// Stops after `limit` slots have completed.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0` (the run would stop before producing
    /// anything).
    pub fn new(limit: Slot) -> Self {
        assert!(limit > 0, "slot budget must be positive");
        Self { limit, seen: 0 }
    }

    /// Slots observed so far.
    pub fn slots_seen(&self) -> Slot {
        self.seen
    }
}

impl SimObserver for StopAfter {
    fn on_slot_end(
        &mut self,
        _t: Slot,
        _metrics: &SlotMetrics,
        _algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        self.seen += 1;
        if self.seen >= self.limit {
            SimControl::Stop
        } else {
            SimControl::Continue
        }
    }
}

/// The budget counts slots, nothing more: safe on the pipelined
/// observer stage.
impl PipelineSafe for StopAfter {}

/// Checkpointing: both the budget and the progress counter, so a
/// resumed budgeted run keeps (and re-hits) its original budget. Give
/// the resumed run a *fresh* [`StopAfter`] outside the checkpointed
/// observer when the budget should restart instead.
impl Snapshot for StopAfter {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_u32(self.limit);
        w.write_u32(self.seen);
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let limit = r.read_u32()?;
        let seen = r.read_u32()?;
        r.finish()?;
        if limit == 0 {
            return Err(StateError::Corrupt("zero slot budget".into()));
        }
        self.limit = limit;
        self.seen = seen;
        Ok(())
    }
}

/// Adapts a per-slot closure into a [`SimObserver`] (drill-down
/// inspection; never stops the run).
#[derive(Debug, Clone)]
pub struct Inspect<F: FnMut(Slot, &SlotMetrics, &dyn OnlineAlgorithm)>(pub F);

impl<F: FnMut(Slot, &SlotMetrics, &dyn OnlineAlgorithm)> SimObserver for Inspect<F> {
    fn on_slot_end(
        &mut self,
        t: Slot,
        metrics: &SlotMetrics,
        algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        (self.0)(t, metrics, algorithm);
        SimControl::Continue
    }
}

/// Runs two observers side by side; the run stops as soon as either
/// asks to stop.
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: SimObserver, B: SimObserver> SimObserver for Tee<A, B> {
    fn on_slot_start(&mut self, t: Slot) {
        self.0.on_slot_start(t);
        self.1.on_slot_start(t);
    }

    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        self.0.on_arrival(outcome);
        self.1.on_arrival(outcome);
    }

    fn on_churn(&mut self, t: Slot, stats: &ChurnStats) {
        self.0.on_churn(t, stats);
        self.1.on_churn(t, stats);
    }

    fn on_preemption(&mut self, outcome: &RequestOutcome) {
        self.0.on_preemption(outcome);
        self.1.on_preemption(outcome);
    }

    fn on_slot_end(
        &mut self,
        t: Slot,
        metrics: &SlotMetrics,
        algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        let a = self.0.on_slot_end(t, metrics, algorithm);
        let b = self.1.on_slot_end(t, metrics, algorithm);
        if a == SimControl::Stop || b == SimControl::Stop {
            SimControl::Stop
        } else {
            SimControl::Continue
        }
    }

    fn on_slot_committed(&mut self, view: &EngineView<'_>) {
        self.0.on_slot_committed(view);
        self.1.on_slot_committed(view);
    }
}

/// A `Tee` of pipeline-safe observers is pipeline-safe.
impl<A: SimObserver + PipelineSafe, B: SimObserver + PipelineSafe> PipelineSafe for Tee<A, B> {}

/// Checkpointing: both sides' blobs, nested. A `Tee` of snapshot-capable
/// observers is itself snapshot-capable, so composed observer stacks
/// ride inside one checkpoint.
impl<A: Snapshot, B: Snapshot> Snapshot for Tee<A, B> {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_blob(&self.0.snapshot());
        w.write_blob(&self.1.snapshot());
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        let a = r.read_blob()?;
        let b = r.read_blob()?;
        r.finish()?;
        self.0.restore(&a)?;
        self.1.restore(&b)
    }
}

/// Serializes a full [`EngineCheckpoint`] every `every` slots, wrapping
/// the observer whose state must survive a resume (typically a
/// [`WindowSummary`]; any [`Snapshot`]-capable observer or [`Tee`] of
/// them works). All events are forwarded to the wrapped observer; at
/// each checkpoint slot the engine state, the algorithm state and the
/// inner observer's state are captured together, atomically with the
/// slot boundary.
///
/// The latest checkpoint replaces the previous one
/// ([`Checkpointer::latest`]); attach a sink
/// ([`Checkpointer::with_sink`]) to persist every capture (e.g. write
/// it to disk — what `vne-bench --checkpoint-every` does). A capture
/// failure (an algorithm without snapshot support) is recorded in
/// [`Checkpointer::last_error`] instead of killing the run.
///
/// Early-stop interaction: the engine emits the commit hook even for
/// the slot whose `on_slot_end` stopped the run, so a [`StopAfter`]
/// firing exactly on a checkpoint slot still leaves that slot's
/// checkpoint behind — pinned by a regression test.
pub struct Checkpointer<O> {
    every: Slot,
    inner: O,
    latest: Option<EngineCheckpoint>,
    taken: usize,
    error: Option<StateError>,
    sink: Option<CheckpointSinkFn>,
}

impl<O> Checkpointer<O> {
    /// Checkpoints after every `every`-th slot (slots `every-1`,
    /// `2·every-1`, … of a dense stream), wrapping `inner`.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn every(every: Slot, inner: O) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        Self {
            every,
            inner,
            latest: None,
            taken: 0,
            error: None,
            sink: None,
        }
    }

    /// Attaches a sink invoked with every captured checkpoint (builder
    /// style).
    pub fn with_sink(mut self, sink: impl FnMut(&EngineCheckpoint) + Send + 'static) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// The most recent checkpoint, if any was captured.
    pub fn latest(&self) -> Option<&EngineCheckpoint> {
        self.latest.as_ref()
    }

    /// Consumes the checkpointer into its most recent checkpoint.
    pub fn into_latest(self) -> Option<EngineCheckpoint> {
        self.latest
    }

    /// Number of checkpoints captured.
    pub fn checkpoints_taken(&self) -> usize {
        self.taken
    }

    /// The error of the most recent failed capture, if any.
    pub fn last_error(&self) -> Option<&StateError> {
        self.error.as_ref()
    }

    /// The wrapped observer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Mutable access to the wrapped observer, for owners that fold
    /// their own facts into it between slots (the `vne-serve` actor
    /// keeps its durable serving counters inside the wrapped tee so
    /// they ride in every checkpoint).
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// Consumes the checkpointer into the wrapped observer.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: fmt::Debug> fmt::Debug for Checkpointer<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checkpointer")
            .field("every", &self.every)
            .field("inner", &self.inner)
            .field("taken", &self.taken)
            .field("latest_slot", &self.latest.as_ref().map(|c| c.slot))
            .field("error", &self.error)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl<O: SimObserver + Snapshot> SimObserver for Checkpointer<O> {
    fn on_slot_start(&mut self, t: Slot) {
        self.inner.on_slot_start(t);
    }

    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        self.inner.on_arrival(outcome);
    }

    fn on_churn(&mut self, t: Slot, stats: &ChurnStats) {
        self.inner.on_churn(t, stats);
    }

    fn on_preemption(&mut self, outcome: &RequestOutcome) {
        self.inner.on_preemption(outcome);
    }

    fn on_slot_end(
        &mut self,
        t: Slot,
        metrics: &SlotMetrics,
        algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        self.inner.on_slot_end(t, metrics, algorithm)
    }

    fn on_slot_committed(&mut self, view: &EngineView<'_>) {
        self.inner.on_slot_committed(view);
        if (u64::from(view.slot()) + 1) % u64::from(self.every) != 0 {
            return;
        }
        match view.checkpoint(self.inner.snapshot()) {
            Ok(checkpoint) => {
                self.taken += 1;
                if let Some(sink) = &mut self.sink {
                    sink(&checkpoint);
                }
                self.latest = Some(checkpoint);
            }
            Err(e) => self.error = Some(e),
        }
    }
}

/// The checkpointer only uses [`EngineView::checkpoint`], which works
/// from the pipelined stage's owned captures — safe there, provided the
/// run's [`crate::engine::PipelineConfig::capture_every`] matches the
/// checkpoint cadence (the scenario runners wire this up).
impl<O: SimObserver + Snapshot + PipelineSafe> PipelineSafe for Checkpointer<O> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RequestStatus;
    use vne_model::app::{shapes, AppSet, AppShape};
    use vne_model::ids::ClassId;

    fn outcome(id: u64, arrival: Slot, status: RequestStatus) -> RequestOutcome {
        RequestOutcome {
            id: RequestId(id),
            class: ClassId::new(AppId(0), NodeId(0)),
            arrival,
            duration: 10,
            demand: 2.0,
            status,
        }
    }

    fn penalty() -> RejectionPenalty {
        let mut apps = AppSet::new();
        apps.push(
            "a",
            AppShape::Chain,
            shapes::uniform_chain(1, 1.0, 1.0).unwrap(),
        )
        .unwrap();
        RejectionPenalty::uniform(&apps, 3.0)
    }

    #[test]
    fn recorder_applies_preemption_updates() {
        let mut rec = Recorder::new();
        rec.on_arrival(&outcome(1, 2, RequestStatus::Accepted));
        rec.on_arrival(&outcome(2, 2, RequestStatus::Rejected));
        rec.on_preemption(&outcome(1, 2, RequestStatus::Preempted(5)));
        let result = rec.finish("X", &StreamStats::default());
        assert_eq!(result.requests.len(), 2);
        assert_eq!(result.requests[0].status, RequestStatus::Preempted(5));
        assert_eq!(result.requests[1].status, RequestStatus::Rejected);
        assert_eq!(result.algorithm, "X");
    }

    #[test]
    fn window_summary_counts_only_window_arrivals() {
        let mut ws = WindowSummary::new((2, 10), penalty());
        ws.on_arrival(&outcome(0, 0, RequestStatus::Rejected)); // before window
        ws.on_arrival(&outcome(1, 2, RequestStatus::Accepted));
        ws.on_arrival(&outcome(2, 3, RequestStatus::Rejected));
        ws.on_preemption(&outcome(1, 2, RequestStatus::Preempted(7)));
        let s = ws.finish(&StreamStats::default());
        assert_eq!(s.arrivals, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.preempted, 1);
        assert_eq!(s.rejection_rate, 1.0);
        // 2 denied × ψ3 × d2 × T10 = 120.
        assert_eq!(s.rejection_cost, 120.0);
    }

    #[test]
    fn window_summary_pins_preemption_cost_order() {
        // Two preemptions in one slot, reported in reverse id order:
        // the pinned (slot, id) fold must match the batch path, which
        // sorts by id within the slot.
        let mut a = WindowSummary::new((0, 10), penalty());
        let mut b = WindowSummary::new((0, 10), penalty());
        let first = outcome(1, 2, RequestStatus::Preempted(5));
        let second = RequestOutcome {
            demand: 7.0,
            ..outcome(2, 3, RequestStatus::Preempted(5))
        };
        a.on_arrival(&outcome(1, 2, RequestStatus::Accepted));
        a.on_arrival(&outcome(2, 3, RequestStatus::Accepted));
        b.on_arrival(&outcome(1, 2, RequestStatus::Accepted));
        b.on_arrival(&outcome(2, 3, RequestStatus::Accepted));
        a.on_preemption(&first);
        a.on_preemption(&second);
        b.on_preemption(&second);
        b.on_preemption(&first);
        let sa = a.finish(&StreamStats::default());
        let sb = b.finish(&StreamStats::default());
        assert_eq!(sa.rejection_cost.to_bits(), sb.rejection_cost.to_bits());
        assert_eq!(sa.preempted, 2);
    }

    #[test]
    fn stop_after_halts_the_engine_with_partial_stats() {
        let mut s = vne_model::substrate::SubstrateNetwork::new("t");
        let e = s
            .add_node("e", vne_model::substrate::Tier::Edge, 100.0, 1.0)
            .unwrap();
        let c = s
            .add_node("c", vne_model::substrate::Tier::Core, 100.0, 1.0)
            .unwrap();
        s.add_link(e, c, 100.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "a",
            AppShape::Chain,
            shapes::uniform_chain(1, 1.0, 1.0).unwrap(),
        )
        .unwrap();
        let mut alg = vne_olive::olive::Olive::quickg(
            s.clone(),
            apps.clone(),
            vne_model::policy::PlacementPolicy::default(),
        );
        let mut stop = StopAfter::new(7);
        let mut summary = WindowSummary::new((0, 100), RejectionPenalty::uniform(&apps, 1.0));
        let mut observer = Tee(&mut summary, &mut stop);
        let stats = crate::engine::run_stream(
            &mut alg,
            &s,
            crate::engine::slot_events(&[], 100),
            &mut observer,
        );
        assert!(stats.stopped_early, "the budget must stop the run");
        assert_eq!(stats.slots_run, 7);
        assert_eq!(stop.slots_seen(), 7);
        // Partial statistics are still reported.
        let partial = summary.finish(&stats);
        assert_eq!(partial.arrivals, 0);
        assert_eq!(partial.rejection_rate, 0.0);
    }

    #[test]
    fn tee_stops_when_either_stops() {
        struct Stopper;
        impl SimObserver for Stopper {
            fn on_slot_end(
                &mut self,
                _t: Slot,
                _m: &SlotMetrics,
                _a: &dyn OnlineAlgorithm,
            ) -> SimControl {
                SimControl::Stop
            }
        }
        let mut tee = Tee(NullObserver, Stopper);
        let m = SlotMetrics::default();
        // A dummy algorithm is needed only for the signature; build the
        // cheapest possible one.
        let mut s = vne_model::substrate::SubstrateNetwork::new("t");
        let e = s
            .add_node("e", vne_model::substrate::Tier::Edge, 1.0, 1.0)
            .unwrap();
        let c = s
            .add_node("c", vne_model::substrate::Tier::Core, 1.0, 1.0)
            .unwrap();
        s.add_link(e, c, 1.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "a",
            AppShape::Chain,
            shapes::uniform_chain(1, 1.0, 1.0).unwrap(),
        )
        .unwrap();
        let alg =
            vne_olive::olive::Olive::quickg(s, apps, vne_model::policy::PlacementPolicy::default());
        assert_eq!(tee.on_slot_end(0, &m, &alg), SimControl::Stop);
    }
}
