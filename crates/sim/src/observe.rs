//! Ready-made [`SimObserver`]s for the streaming engine.
//!
//! * [`NullObserver`] — ignores everything (pure throughput runs);
//! * [`Recorder`] — collects the classic [`RunResult`] (per-request
//!   outcome log + per-slot series), `O(trace)` memory by design;
//! * [`WindowSummary`] — computes the measurement-window [`Summary`]
//!   incrementally in `O(classes + nodes)` memory, the pairing for
//!   long-horizon streams where a full outcome log would defeat the
//!   engine's `O(active)` bound;
//! * [`Inspect`] — adapts a per-slot closure (drill-down figures);
//! * [`Tee`] — composes two observers.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use vne_model::cost::RejectionPenalty;
use vne_model::ids::{AppId, NodeId, RequestId};
use vne_model::request::Slot;
use vne_olive::algorithm::OnlineAlgorithm;

use crate::engine::{RequestOutcome, RunResult, SimControl, SimObserver, SlotMetrics, StreamStats};
use crate::metrics::{balance_from_counts, Summary};

/// An observer that ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

/// Collects the full per-request outcome log and per-slot series.
///
/// Memory is `O(trace length)` — that is the point of a recorder. Use
/// [`WindowSummary`] when only the window summary is needed.
///
/// The recorded [`RunResult::slots`] vector is indexed by position, so
/// consumers like [`crate::metrics::summarize`] equate index and slot
/// number: feed the recorder a *dense* stream (one event per slot from
/// 0, as produced by [`crate::engine::slot_events`] and the scenario
/// trace streams). With a sparse stream the per-slot series would be
/// compacted and window filters would look at the wrong entries; use
/// [`WindowSummary`] (which reads the real slot number) there instead.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    requests: Vec<RequestOutcome>,
    index: HashMap<RequestId, usize>,
    slots: Vec<SlotMetrics>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the recorder into a [`RunResult`].
    pub fn finish(self, algorithm: &str, stats: &StreamStats) -> RunResult {
        RunResult {
            algorithm: algorithm.to_string(),
            requests: self.requests,
            slots: self.slots,
            online_secs: stats.online_secs,
        }
    }
}

impl SimObserver for Recorder {
    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        self.index.insert(outcome.id, self.requests.len());
        self.requests.push(outcome.clone());
    }

    fn on_preemption(&mut self, outcome: &RequestOutcome) {
        if let Some(&i) = self.index.get(&outcome.id) {
            self.requests[i] = outcome.clone();
        }
    }

    fn on_slot_end(
        &mut self,
        _t: Slot,
        metrics: &SlotMetrics,
        _algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        self.slots.push(*metrics);
        SimControl::Continue
    }
}

/// Computes the measurement-window [`Summary`] incrementally.
///
/// State is `O(request classes + nodes)` — counts, running costs and
/// the per-`(node, app)` rejection tallies for the balance index — so
/// a multi-seed sweep over arbitrarily long streams never materializes
/// an outcome log. Counts, rates, the resource cost and the balance
/// index match [`crate::metrics::summarize`] bit for bit; the rejection
/// cost accumulates preemption penalties at eviction time rather than
/// in arrival order, which can differ from the batch sum in the last
/// ulp when preemptions occur.
#[derive(Debug, Clone)]
pub struct WindowSummary {
    window: (Slot, Slot),
    penalty: RejectionPenalty,
    arrivals: usize,
    rejected: usize,
    preempted: usize,
    rejection_cost: f64,
    resource_cost: f64,
    n_v: BTreeMap<NodeId, f64>,
    x_va: BTreeMap<(NodeId, AppId), f64>,
    apps: BTreeSet<AppId>,
}

impl WindowSummary {
    /// Creates a summary observer for a `[from, to)` window of arrival
    /// slots.
    pub fn new(window: (Slot, Slot), penalty: RejectionPenalty) -> Self {
        Self {
            window,
            penalty,
            arrivals: 0,
            rejected: 0,
            preempted: 0,
            rejection_cost: 0.0,
            resource_cost: 0.0,
            n_v: BTreeMap::new(),
            x_va: BTreeMap::new(),
            apps: BTreeSet::new(),
        }
    }

    fn in_window(&self, arrival: Slot) -> bool {
        arrival >= self.window.0 && arrival < self.window.1
    }

    fn denial_cost(&self, outcome: &RequestOutcome) -> f64 {
        self.penalty.psi(outcome.class.app) * outcome.demand * f64::from(outcome.duration)
    }

    /// Finalizes the summary (balance index, rates, runtime).
    pub fn finish(&self, stats: &StreamStats) -> Summary {
        let denied = self.rejected + self.preempted;
        Summary {
            arrivals: self.arrivals,
            rejected: self.rejected,
            preempted: self.preempted,
            rejection_rate: if self.arrivals == 0 {
                0.0
            } else {
                denied as f64 / self.arrivals as f64
            },
            resource_cost: self.resource_cost,
            rejection_cost: self.rejection_cost,
            total_cost: self.resource_cost + self.rejection_cost,
            balance_index: balance_from_counts(&self.n_v, &self.x_va, &self.apps),
            online_secs: stats.online_secs,
        }
    }
}

impl SimObserver for WindowSummary {
    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        if !self.in_window(outcome.arrival) {
            return;
        }
        self.arrivals += 1;
        self.apps.insert(outcome.class.app);
        *self.n_v.entry(outcome.class.ingress).or_insert(0.0) += 1.0;
        if outcome.status.is_denied() {
            self.rejected += 1;
            self.rejection_cost += self.denial_cost(outcome);
            *self
                .x_va
                .entry((outcome.class.ingress, outcome.class.app))
                .or_insert(0.0) += 1.0;
        }
    }

    fn on_preemption(&mut self, outcome: &RequestOutcome) {
        if !self.in_window(outcome.arrival) {
            return;
        }
        self.preempted += 1;
        self.rejection_cost += self.denial_cost(outcome);
        *self
            .x_va
            .entry((outcome.class.ingress, outcome.class.app))
            .or_insert(0.0) += 1.0;
    }

    fn on_slot_end(
        &mut self,
        t: Slot,
        metrics: &SlotMetrics,
        _algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        if self.in_window(t) {
            self.resource_cost += metrics.resource_cost;
        }
        SimControl::Continue
    }
}

/// Adapts a per-slot closure into a [`SimObserver`] (drill-down
/// inspection; never stops the run).
#[derive(Debug, Clone)]
pub struct Inspect<F: FnMut(Slot, &SlotMetrics, &dyn OnlineAlgorithm)>(pub F);

impl<F: FnMut(Slot, &SlotMetrics, &dyn OnlineAlgorithm)> SimObserver for Inspect<F> {
    fn on_slot_end(
        &mut self,
        t: Slot,
        metrics: &SlotMetrics,
        algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        (self.0)(t, metrics, algorithm);
        SimControl::Continue
    }
}

/// Runs two observers side by side; the run stops as soon as either
/// asks to stop.
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: SimObserver, B: SimObserver> SimObserver for Tee<A, B> {
    fn on_slot_start(&mut self, t: Slot) {
        self.0.on_slot_start(t);
        self.1.on_slot_start(t);
    }

    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        self.0.on_arrival(outcome);
        self.1.on_arrival(outcome);
    }

    fn on_preemption(&mut self, outcome: &RequestOutcome) {
        self.0.on_preemption(outcome);
        self.1.on_preemption(outcome);
    }

    fn on_slot_end(
        &mut self,
        t: Slot,
        metrics: &SlotMetrics,
        algorithm: &dyn OnlineAlgorithm,
    ) -> SimControl {
        let a = self.0.on_slot_end(t, metrics, algorithm);
        let b = self.1.on_slot_end(t, metrics, algorithm);
        if a == SimControl::Stop || b == SimControl::Stop {
            SimControl::Stop
        } else {
            SimControl::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RequestStatus;
    use vne_model::app::{shapes, AppSet, AppShape};
    use vne_model::ids::ClassId;

    fn outcome(id: u64, arrival: Slot, status: RequestStatus) -> RequestOutcome {
        RequestOutcome {
            id: RequestId(id),
            class: ClassId::new(AppId(0), NodeId(0)),
            arrival,
            duration: 10,
            demand: 2.0,
            status,
        }
    }

    fn penalty() -> RejectionPenalty {
        let mut apps = AppSet::new();
        apps.push(
            "a",
            AppShape::Chain,
            shapes::uniform_chain(1, 1.0, 1.0).unwrap(),
        )
        .unwrap();
        RejectionPenalty::uniform(&apps, 3.0)
    }

    #[test]
    fn recorder_applies_preemption_updates() {
        let mut rec = Recorder::new();
        rec.on_arrival(&outcome(1, 2, RequestStatus::Accepted));
        rec.on_arrival(&outcome(2, 2, RequestStatus::Rejected));
        rec.on_preemption(&outcome(1, 2, RequestStatus::Preempted(5)));
        let result = rec.finish("X", &StreamStats::default());
        assert_eq!(result.requests.len(), 2);
        assert_eq!(result.requests[0].status, RequestStatus::Preempted(5));
        assert_eq!(result.requests[1].status, RequestStatus::Rejected);
        assert_eq!(result.algorithm, "X");
    }

    #[test]
    fn window_summary_counts_only_window_arrivals() {
        let mut ws = WindowSummary::new((2, 10), penalty());
        ws.on_arrival(&outcome(0, 0, RequestStatus::Rejected)); // before window
        ws.on_arrival(&outcome(1, 2, RequestStatus::Accepted));
        ws.on_arrival(&outcome(2, 3, RequestStatus::Rejected));
        ws.on_preemption(&outcome(1, 2, RequestStatus::Preempted(7)));
        let s = ws.finish(&StreamStats::default());
        assert_eq!(s.arrivals, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.preempted, 1);
        assert_eq!(s.rejection_rate, 1.0);
        // 2 denied × ψ3 × d2 × T10 = 120.
        assert_eq!(s.rejection_cost, 120.0);
    }

    #[test]
    fn tee_stops_when_either_stops() {
        struct Stopper;
        impl SimObserver for Stopper {
            fn on_slot_end(
                &mut self,
                _t: Slot,
                _m: &SlotMetrics,
                _a: &dyn OnlineAlgorithm,
            ) -> SimControl {
                SimControl::Stop
            }
        }
        let mut tee = Tee(NullObserver, Stopper);
        let m = SlotMetrics::default();
        // A dummy algorithm is needed only for the signature; build the
        // cheapest possible one.
        let mut s = vne_model::substrate::SubstrateNetwork::new("t");
        let e = s
            .add_node("e", vne_model::substrate::Tier::Edge, 1.0, 1.0)
            .unwrap();
        let c = s
            .add_node("c", vne_model::substrate::Tier::Core, 1.0, 1.0)
            .unwrap();
        s.add_link(e, c, 1.0, 1.0).unwrap();
        let mut apps = AppSet::new();
        apps.push(
            "a",
            AppShape::Chain,
            shapes::uniform_chain(1, 1.0, 1.0).unwrap(),
        )
        .unwrap();
        let alg =
            vne_olive::olive::Olive::quickg(s, apps, vne_model::policy::PlacementPolicy::default());
        assert_eq!(tee.on_slot_end(0, &m, &alg), SimControl::Stop);
    }
}
