//! Crash-safe checkpoint files: the atomic write protocol and the
//! refusal of truncated blobs. The scenario a crash mid-write would
//! cause — a prefix of the new checkpoint at the latest path — must be
//! impossible: either the previous complete file survives, or the new
//! complete file is in place.

use std::fs;
use std::path::PathBuf;

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_sim::engine::run_stream;
use vne_sim::observe::{Checkpointer, WindowSummary};
use vne_sim::persist::{read_checkpoint_file, write_checkpoint_file, PersistError};
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};

fn tiny_scenario() -> Scenario {
    let mut s = SubstrateNetwork::new("tiny");
    let e0 = s.add_node("e0", Tier::Edge, 300.0, 50.0).unwrap();
    let t = s.add_node("t", Tier::Transport, 900.0, 10.0).unwrap();
    let c = s.add_node("c", Tier::Core, 2700.0, 1.0).unwrap();
    s.add_link(e0, t, 1500.0, 1.0).unwrap();
    s.add_link(t, c, 4500.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    let mut config = ScenarioConfig::small(1.0).with_seed(3);
    config.history_slots = 40;
    config.test_slots = 12;
    config.measure_window = (2, 10);
    Scenario::new(s, apps, config)
}

fn real_checkpoint() -> vne_sim::engine::EngineCheckpoint {
    let scenario = tiny_scenario();
    let spec = vne_sim::registry::AlgorithmSpec::from(Algorithm::Fullg);
    let ctx = vne_sim::registry::BuildContext::new(&scenario);
    let mut alg = scenario.registry().build(&spec, &ctx).unwrap().algorithm;
    let mut ckpt = Checkpointer::every(
        4,
        WindowSummary::new(scenario.config.measure_window, scenario.penalty()),
    );
    run_stream(
        &mut *alg,
        &scenario.substrate,
        scenario.online_events(),
        &mut ckpt,
    );
    ckpt.into_latest().expect("checkpoint captured")
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vne-persist-it-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{tag}.ckpt"))
}

#[test]
fn checkpoint_file_roundtrips() {
    let checkpoint = real_checkpoint();
    let path = temp_path("roundtrip");
    write_checkpoint_file(&path, &checkpoint).unwrap();
    let loaded = read_checkpoint_file(&path).unwrap();
    assert_eq!(loaded, checkpoint);
    fs::remove_file(&path).ok();
}

#[test]
fn truncated_blob_is_refused_and_previous_file_survives() {
    let checkpoint = real_checkpoint();
    let path = temp_path("truncated");

    // A good checkpoint is in place.
    write_checkpoint_file(&path, &checkpoint).unwrap();
    let good_bytes = fs::read(&path).unwrap();

    // Simulate the crash window the atomic protocol closes: a torn
    // write that only managed a prefix, parked at the staging path.
    let torn = &good_bytes[..good_bytes.len() / 2];
    let staging = path.with_file_name("truncated.ckpt.tmp");
    fs::write(&staging, torn).unwrap();

    // The destination is untouched — the rename never happened.
    assert_eq!(fs::read(&path).unwrap(), good_bytes, "latest file intact");
    let reloaded = read_checkpoint_file(&path).unwrap();
    assert_eq!(reloaded, checkpoint);

    // And if a truncated blob *did* land somewhere, loading it is a
    // clear refusal naming the file, not garbage state.
    let err = read_checkpoint_file(&staging).unwrap_err();
    match &err {
        PersistError::Decode { path: p, .. } => {
            assert!(p.ends_with("truncated.ckpt.tmp"), "error names the file");
        }
        other => panic!("expected Decode refusal, got {other}"),
    }
    let message = err.to_string();
    assert!(
        message.contains("refusing to restore"),
        "clear refusal, got: {message}"
    );

    // A truncated *latest* file (crash with a non-atomic writer) is
    // also refused rather than restored.
    fs::write(&path, torn).unwrap();
    assert!(matches!(
        read_checkpoint_file(&path),
        Err(PersistError::Decode { .. })
    ));

    fs::remove_file(&path).ok();
    fs::remove_file(&staging).ok();
}

#[test]
fn atomic_replace_keeps_old_or_new_never_a_mix() {
    let checkpoint = real_checkpoint();
    let path = temp_path("replace");
    write_checkpoint_file(&path, &checkpoint).unwrap();

    // Replace with a different checkpoint (different slot) and verify
    // the file is exactly the new bytes.
    let mut newer = checkpoint.clone();
    newer.slot += 1;
    write_checkpoint_file(&path, &newer).unwrap();
    let loaded = read_checkpoint_file(&path).unwrap();
    assert_eq!(loaded, newer);
    assert!(
        !path.with_file_name("replace.ckpt.tmp").exists(),
        "no staging residue after a successful write"
    );
    fs::remove_file(&path).ok();
}
