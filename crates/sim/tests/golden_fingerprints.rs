//! Golden window-summary fingerprints: pins the current simulation
//! outputs of all four builtin algorithms at two utilization levels
//! (seed-locked), the way `plan_identity` pins plans. A future engine,
//! observer or algorithm refactor that silently drifts any count or any
//! float bit of the measurement-window summary fails here first.
//!
//! The fingerprint ([`vne_sim::metrics::Summary::fingerprint`]) covers
//! every deterministic field; the wall-clock `online_secs` is excluded.
//! If a change *intentionally* alters results (e.g. re-pinning the
//! rejection-cost fold order), re-capture with:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test -p vne-sim --test golden_fingerprints -- --nocapture
//! ```

use vne_model::request::Slot;
use vne_olive::bound::offline_revenue_bound;
use vne_sim::engine::{RequestOutcome, SimControl, SimObserver, SlotMetrics};
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};
use vne_topology::zoo::golden_diamond;
use vne_workload::adversary::{AdversaryProfile, ChurnProfile};

/// The tiny 4-node golden world ([`golden_diamond`]), tuned so the
/// utilization axis genuinely bites: unlike the parity suite's world
/// (whose 2700-CU core swallows any edge-calibrated load and whose
/// 10-unit VNFs pin the calibrated demand to the generator's 0.5
/// truncation floor), capacities there are uniform and the arrival rate
/// here is low, so per-request demand scales with utilization and the
/// 140% level actually rejects.
fn golden_scenario(utilization: f64, seed: u64) -> Scenario {
    let (s, apps) = golden_diamond().unwrap();
    let mut config = ScenarioConfig::small(utilization).with_seed(seed);
    config.history_slots = 60;
    config.test_slots = 25;
    config.measure_window = (2, 22);
    config.aggregation.bootstrap_replicates = 10;
    config.trace.mean_rate_per_node = 2.0;
    Scenario::new(s, apps, config)
}

/// (utilization, algorithm, expected fingerprint), captured from the
/// checkpoint-subsystem PR's engine. Seed locked to 11 (a seed the
/// parity suite shows exercises preemption at 140%).
const GOLDEN: [(f64, Algorithm, u64); 8] = [
    (1.0, Algorithm::Olive, 0x22d8dd37202cc5f5),
    (1.0, Algorithm::Quickg, 0x8ba69911ae50e631),
    (1.0, Algorithm::Fullg, 0xdd17af8730852be5),
    (1.0, Algorithm::SlotOff, 0x742c347011584341),
    (1.4, Algorithm::Olive, 0xe81588dccfc6ca9d),
    (1.4, Algorithm::Quickg, 0xeca9e1ad9bae17a5),
    (1.4, Algorithm::Fullg, 0x697b0fdad64bc7c5),
    (1.4, Algorithm::SlotOff, 0x4453efb519c7f990),
];

/// Scenario-suite goldens: one adversarial and one churn cell per the
/// matrix in `fig_adversarial`, pinning the whole stressor path —
/// generator, churn schedule, re-embed policy, churn counters in the
/// fingerprint — the same way the benign table above pins the engine.
/// Re-capture with `GOLDEN_PRINT=1` after intentional changes.
const SCENARIO_GOLDEN: [(Algorithm, u64); 2] = [
    // adversarial revenue_burst at u=1.0: 240 arrivals, 222 rejected.
    (Algorithm::Olive, 0xa3d3048b0c31b0ec),
    // churn node_maintenance at u=1.4: 5 churn events, 13 stranded,
    // 1 evicted, 12 re-embedded — the counters feed the fingerprint.
    (Algorithm::Quickg, 0xed5bd96dc0e0353b),
];

#[test]
fn scenario_suite_cells_match_golden_fingerprints() {
    let print = std::env::var("GOLDEN_PRINT").is_ok();
    let mut adversarial = golden_scenario(1.0, 11);
    adversarial.config.adversary = Some(AdversaryProfile::RevenueBurst);
    let mut churned = golden_scenario(1.4, 11);
    churned.config.churn = Some(ChurnProfile::NodeMaintenance { period: 8, len: 3 });
    for ((alg, expected), scenario) in SCENARIO_GOLDEN.into_iter().zip([adversarial, churned]) {
        let summary = scenario.run_summary(alg).unwrap();
        let got = summary.fingerprint();
        if print {
            println!(
                "    (Algorithm::{alg:?}, {got:#018x}), // arrivals {} rejected {} churn {:?}",
                summary.arrivals, summary.rejected, summary.churn
            );
            continue;
        }
        assert_eq!(
            got, expected,
            "scenario-suite summary drifted for {alg}: {got:#018x} != {expected:#018x} \
             (arrivals {}, rejected {}, churn {:?})",
            summary.arrivals, summary.rejected, summary.churn
        );
    }
}

/// Sums the revenue (`ψ·demand·duration`) of accepted window arrivals,
/// refunded on preemption — the online side of the LP-bound inequality.
struct RevenueProbe {
    window: (Slot, Slot),
    penalty: vne_model::cost::RejectionPenalty,
    revenue: f64,
}

impl SimObserver for RevenueProbe {
    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        if (self.window.0..self.window.1).contains(&outcome.arrival) && !outcome.status.is_denied()
        {
            self.revenue +=
                self.penalty.psi(outcome.class.app) * outcome.demand * f64::from(outcome.duration);
        }
    }

    fn on_preemption(&mut self, outcome: &RequestOutcome) {
        if (self.window.0..self.window.1).contains(&outcome.arrival) {
            self.revenue -=
                self.penalty.psi(outcome.class.app) * outcome.demand * f64::from(outcome.duration);
        }
    }

    fn on_slot_end(
        &mut self,
        _t: Slot,
        _metrics: &SlotMetrics,
        _algorithm: &dyn vne_olive::algorithm::OnlineAlgorithm,
    ) -> SimControl {
        SimControl::Continue
    }
}

/// LP-bound sanity on the exactly-solvable golden world: the offline
/// fractional optimum upper-bounds the revenue of every real online
/// run, on the benign trace and on every adversarial/churn stressor.
#[test]
fn offline_bound_dominates_every_online_run() {
    let stressors: [(Option<AdversaryProfile>, Option<ChurnProfile>); 3] = [
        (None, None),
        (Some(AdversaryProfile::RevenueBurst), None),
        (
            None,
            Some(ChurnProfile::NodeMaintenance { period: 8, len: 3 }),
        ),
    ];
    for (adversary, churn) in stressors {
        let mut scenario = golden_scenario(1.4, 11);
        scenario.config.adversary = adversary;
        scenario.config.churn = churn;
        let bound = offline_revenue_bound(
            &scenario.substrate,
            &scenario.apps,
            &scenario.penalty(),
            scenario.online_events().flat_map(|ev| ev.arrivals),
            scenario.config.measure_window,
        );
        assert!(bound.revenue_bound > 0.0);
        assert!(bound.revenue_bound <= bound.total_revenue + 1e-9);
        for alg in Algorithm::ALL {
            let mut probe = RevenueProbe {
                window: scenario.config.measure_window,
                penalty: scenario.penalty(),
                revenue: 0.0,
            };
            scenario.run_observed(alg, &mut probe);
            assert!(
                probe.revenue <= bound.revenue_bound + 1e-6,
                "{alg} (adversary {adversary:?}, churn {churn:?}): online revenue {} \
                 exceeds the offline LP bound {}",
                probe.revenue,
                bound.revenue_bound
            );
        }
    }
}

#[test]
fn window_summaries_match_golden_fingerprints() {
    let print = std::env::var("GOLDEN_PRINT").is_ok();
    for (utilization, alg, expected) in GOLDEN {
        let scenario = golden_scenario(utilization, 11);
        let summary = scenario.run_summary(alg).unwrap();
        let got = summary.fingerprint();
        if print {
            println!(
                "    ({utilization:.1}, Algorithm::{alg:?}, {got:#018x}), // arrivals {} rejected {} cost {}",
                summary.arrivals, summary.rejected, summary.total_cost
            );
            continue;
        }
        assert_eq!(
            got, expected,
            "summary drifted for {alg} at u={utilization}: {got:#018x} != {expected:#018x} \
             (arrivals {}, rejected {}, preempted {}, total cost {})",
            summary.arrivals, summary.rejected, summary.preempted, summary.total_cost
        );
    }
}
