//! Golden window-summary fingerprints: pins the current simulation
//! outputs of all four builtin algorithms at two utilization levels
//! (seed-locked), the way `plan_identity` pins plans. A future engine,
//! observer or algorithm refactor that silently drifts any count or any
//! float bit of the measurement-window summary fails here first.
//!
//! The fingerprint ([`vne_sim::metrics::Summary::fingerprint`]) covers
//! every deterministic field; the wall-clock `online_secs` is excluded.
//! If a change *intentionally* alters results (e.g. re-pinning the
//! rejection-cost fold order), re-capture with:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test -p vne-sim --test golden_fingerprints -- --nocapture
//! ```

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};

/// A tiny 4-node world tuned so the utilization axis genuinely bites:
/// unlike the parity suite's world (whose 2700-CU core swallows any
/// edge-calibrated load and whose 10-unit VNFs pin the calibrated
/// demand to the generator's 0.5 truncation floor), capacities here are
/// uniform and the arrival rate is low, so per-request demand scales
/// with utilization and the 140% level actually rejects.
fn golden_scenario(utilization: f64, seed: u64) -> Scenario {
    let mut s = SubstrateNetwork::new("golden");
    let e0 = s.add_node("e0", Tier::Edge, 300.0, 50.0).unwrap();
    let e1 = s.add_node("e1", Tier::Edge, 300.0, 50.0).unwrap();
    let t = s.add_node("t", Tier::Transport, 300.0, 10.0).unwrap();
    let c = s.add_node("c", Tier::Core, 300.0, 1.0).unwrap();
    s.add_link(e0, t, 1500.0, 1.0).unwrap();
    s.add_link(e1, t, 1500.0, 1.0).unwrap();
    s.add_link(t, c, 4500.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    apps.push(
        "tree",
        AppShape::Tree,
        shapes::two_branch_tree(3, 6.0, 2.0).unwrap(),
    )
    .unwrap();
    let mut config = ScenarioConfig::small(utilization).with_seed(seed);
    config.history_slots = 60;
    config.test_slots = 25;
    config.measure_window = (2, 22);
    config.aggregation.bootstrap_replicates = 10;
    config.trace.mean_rate_per_node = 2.0;
    Scenario::new(s, apps, config)
}

/// (utilization, algorithm, expected fingerprint), captured from the
/// checkpoint-subsystem PR's engine. Seed locked to 11 (a seed the
/// parity suite shows exercises preemption at 140%).
const GOLDEN: [(f64, Algorithm, u64); 8] = [
    (1.0, Algorithm::Olive, 0x22d8dd37202cc5f5),
    (1.0, Algorithm::Quickg, 0x8ba69911ae50e631),
    (1.0, Algorithm::Fullg, 0xdd17af8730852be5),
    (1.0, Algorithm::SlotOff, 0x742c347011584341),
    (1.4, Algorithm::Olive, 0xe81588dccfc6ca9d),
    (1.4, Algorithm::Quickg, 0xeca9e1ad9bae17a5),
    (1.4, Algorithm::Fullg, 0x697b0fdad64bc7c5),
    (1.4, Algorithm::SlotOff, 0x4453efb519c7f990),
];

#[test]
fn window_summaries_match_golden_fingerprints() {
    let print = std::env::var("GOLDEN_PRINT").is_ok();
    for (utilization, alg, expected) in GOLDEN {
        let scenario = golden_scenario(utilization, 11);
        let summary = scenario.run_summary(alg).unwrap();
        let got = summary.fingerprint();
        if print {
            println!(
                "    ({utilization:.1}, Algorithm::{alg:?}, {got:#018x}), // arrivals {} rejected {} cost {}",
                summary.arrivals, summary.rejected, summary.total_cost
            );
            continue;
        }
        assert_eq!(
            got, expected,
            "summary drifted for {alg} at u={utilization}: {got:#018x} != {expected:#018x} \
             (arrivals {}, rejected {}, preempted {}, total cost {})",
            summary.arrivals, summary.rejected, summary.preempted, summary.total_cost
        );
    }
}
