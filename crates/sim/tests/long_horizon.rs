//! The acceptance property of the streaming engine: peak memory is
//! bounded by the number of *active* requests, independent of the trace
//! length.
//!
//! A 30 000-slot stream (two orders of magnitude beyond the paper's
//! 600-slot online phase) is driven end to end with the incremental
//! window-summary observer. Nothing on this path materializes the
//! trace: the generator is lazy (`O(edge nodes)` state), the engine
//! holds only active requests, and the observer keeps `O(classes)`
//! counters. `StreamStats::peak_active` — the engine's high-water mark
//! — must stay at the stationary active-set size (arrival rate ×
//! duration), orders of magnitude below the total number of requests.

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::policy::PlacementPolicy;
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_olive::olive::Olive;
use vne_sim::engine::run_stream;
use vne_sim::observe::WindowSummary;
use vne_sim::runner::default_apps;
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};
use vne_workload::estimator::EstimatorKind;
use vne_workload::rng::SeededRng;
use vne_workload::tracegen::{self, ArrivalKind, TraceConfig};

fn small_world() -> (SubstrateNetwork, AppSet) {
    let mut s = SubstrateNetwork::new("long");
    let e = s.add_node("e0", Tier::Edge, 10_000.0, 50.0).unwrap();
    let c = s.add_node("c0", Tier::Core, 50_000.0, 1.0).unwrap();
    s.add_link(e, c, 100_000.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    for name in ["chain2", "chain3", "chain4"] {
        let len = name.as_bytes()[5] - b'0';
        apps.push(
            name,
            AppShape::Chain,
            shapes::uniform_chain(usize::from(len), 10.0, 1.0).unwrap(),
        )
        .unwrap();
    }
    (s, apps)
}

#[test]
fn peak_engine_state_is_independent_of_horizon() {
    // A small world with ample capacity so requests cycle through.
    let mut s = SubstrateNetwork::new("long");
    let e = s.add_node("e0", Tier::Edge, 10_000.0, 50.0).unwrap();
    let c = s.add_node("c0", Tier::Core, 50_000.0, 1.0).unwrap();
    s.add_link(e, c, 100_000.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(1, 10.0, 1.0).unwrap(),
    )
    .unwrap();

    let slots = 30_000;
    let config = TraceConfig {
        slots,
        mean_rate_per_node: 2.0,
        demand_mean: 1.0,
        demand_std: 0.2,
        duration_mean: 5.0,
        arrivals: ArrivalKind::Poisson,
        ..TraceConfig::default()
    };

    let mut alg = Olive::quickg(s.clone(), apps.clone(), PlacementPolicy::default());
    let events = tracegen::stream(&s, &apps, &config, SeededRng::new(42));
    let mut observer = WindowSummary::new(
        (0, slots),
        vne_model::cost::RejectionPenalty::uniform(&apps, 1.0),
    );
    let stats = run_stream(&mut alg, &s, events, &mut observer);
    let summary = observer.finish(&stats);

    assert_eq!(stats.slots_run, slots);
    // ~2 arrivals/slot over 30k slots.
    assert!(stats.arrivals > 40_000, "arrivals {}", stats.arrivals);
    assert_eq!(summary.arrivals, stats.arrivals);
    // Stationary active set: rate 2 × mean duration 5 = ~10 requests.
    // The engine's high-water mark must sit near that, not near the
    // 40k+ total — i.e. memory is O(active), not O(trace).
    assert!(
        stats.peak_active < 100,
        "peak_active {} should be orders of magnitude below {} arrivals",
        stats.peak_active,
        stats.arrivals
    );
}

#[test]
fn sketch_estimator_plans_a_30k_slot_history() {
    // The offline counterpart of the engine's O(active) bound: the
    // planning phase folds a 30 000-slot history (5.5× the paper's
    // 5400) through the sketch estimator. Nothing materializes the
    // trace — the generator is lazy and the estimator keeps one P²
    // sketch per class plus the active-request calendar — and the
    // resulting plan must still be a working OLIVE input.
    let (s, apps) = small_world();
    let mut config = ScenarioConfig::small(1.0).with_seed(7);
    config.history_slots = 30_000;
    config.test_slots = 60;
    config.measure_window = (5, 55);
    config.estimator = EstimatorKind::Sketch;
    config.trace.mean_rate_per_node = 2.0;
    config.trace.duration_mean = 5.0;
    config.trace.arrivals = ArrivalKind::Poisson;
    let scenario = Scenario::builder(s).apps(apps).config(config).build();

    let (plan, secs) = scenario.build_plan();
    assert!(!plan.is_empty(), "sketch plan must cover observed classes");
    assert!(plan.iter().all(|c| c.expected_demand > 0.0));
    assert!(secs > 0.0);

    // The plan drives a full online run end to end.
    let outcome = scenario.run(Algorithm::Olive);
    assert!(outcome.summary.arrivals > 0);
    assert!((0.0..=1.0).contains(&outcome.summary.rejection_rate));
}

#[test]
fn scenario_summary_path_streams_a_long_online_phase() {
    // The same property through the Scenario API: a 5000-slot online
    // phase (8× the paper's) summarized without an outcome log.
    let substrate = vne_topology::zoo::citta_studi().unwrap();
    let mut config = ScenarioConfig::small(0.8).with_seed(3);
    config.history_slots = 100;
    config.test_slots = 5_000;
    config.measure_window = (100, 4_900);
    config.aggregation.bootstrap_replicates = 10;
    let scenario = Scenario::new(substrate, default_apps(3), config);
    let summary = scenario.run_summary(Algorithm::Quickg).unwrap();
    assert!(summary.arrivals > 10_000, "arrivals {}", summary.arrivals);
    assert!((0.0..=1.0).contains(&summary.rejection_rate));
}
