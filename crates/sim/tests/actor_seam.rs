//! Parity for the public single-slot seam ([`EngineState::step`]):
//! driving the engine slot by slot from outside — the way the
//! `vne-serve` actor does — must be byte-identical to one
//! [`run_stream`] over the same events, for every builtin algorithm.
//! Also pins the [`EngineState::view`] commit hook: a
//! [`Checkpointer`] fed through the external driver captures the same
//! checkpoint bytes as one riding inside `run_stream`.

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::request::SlotEvents;
use vne_model::state::Snapshot;
use vne_model::state::StateBlob;
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_sim::engine::{run_stream, EngineState, ReembedAll, SimControl, SimObserver};
use vne_sim::observe::{Checkpointer, WindowSummary};
use vne_sim::registry::{AlgorithmSpec, BuildContext};
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};

/// The tiny 4-node world of the streaming-parity suite, fast enough for
/// the exact baselines in debug builds.
fn tiny_scenario(utilization: f64, seed: u64) -> Scenario {
    let mut s = SubstrateNetwork::new("tiny");
    let e0 = s.add_node("e0", Tier::Edge, 300.0, 50.0).unwrap();
    let e1 = s.add_node("e1", Tier::Edge, 300.0, 50.0).unwrap();
    let t = s.add_node("t", Tier::Transport, 900.0, 10.0).unwrap();
    let c = s.add_node("c", Tier::Core, 2700.0, 1.0).unwrap();
    s.add_link(e0, t, 1500.0, 1.0).unwrap();
    s.add_link(e1, t, 1500.0, 1.0).unwrap();
    s.add_link(t, c, 4500.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    apps.push(
        "tree",
        AppShape::Tree,
        shapes::two_branch_tree(3, 6.0, 2.0).unwrap(),
    )
    .unwrap();
    let mut config = ScenarioConfig::small(utilization).with_seed(seed);
    config.history_slots = 60;
    config.test_slots = 25;
    config.measure_window = (2, 22);
    Scenario::new(s, apps, config)
}

fn check_step_parity(scenario: &Scenario, alg: Algorithm) {
    let events: Vec<SlotEvents> = scenario.online_events().collect();
    let spec = AlgorithmSpec::from(alg);
    let ctx = BuildContext::new(scenario);
    let penalty = scenario.penalty();
    let window = scenario.config.measure_window;

    // Reference: one run_stream over the whole stream.
    let mut reference_alg = scenario.registry().build(&spec, &ctx).unwrap().algorithm;
    let mut reference_summary = WindowSummary::new(window, penalty.clone());
    let reference_stats = run_stream(
        &mut *reference_alg,
        &scenario.substrate,
        events.clone(),
        &mut reference_summary,
    );

    // Actor-style: N external step() calls over the same slots, with
    // the commit hook driven from EngineState::view.
    let mut actor_alg = scenario.registry().build(&spec, &ctx).unwrap().algorithm;
    let mut actor_summary = WindowSummary::new(window, penalty);
    let mut state = EngineState::fresh();
    for event in events.clone() {
        let (_step, control) = state.step(
            &mut *actor_alg,
            &scenario.substrate,
            event,
            &mut actor_summary,
            &mut ReembedAll,
        );
        assert_eq!(control, SimControl::Continue, "{alg}: unexpected stop");
    }
    let actor_stats = state.stats();

    assert_eq!(
        reference_stats.slots_run, actor_stats.slots_run,
        "{alg}: slots_run"
    );
    assert_eq!(
        reference_stats.arrivals, actor_stats.arrivals,
        "{alg}: arrivals"
    );
    assert_eq!(
        reference_stats.peak_active, actor_stats.peak_active,
        "{alg}: peak_active"
    );
    let reference = reference_summary.finish(&reference_stats);
    let actor = actor_summary.finish(&actor_stats);
    assert_eq!(
        reference.fingerprint(),
        actor.fingerprint(),
        "{alg}: summary fingerprint"
    );
    // The observer state itself must match bit for bit, not only the
    // finished summary.
    assert_eq!(
        reference_summary.snapshot(),
        actor_summary.snapshot(),
        "{alg}: WindowSummary blobs"
    );
}

#[test]
fn external_steps_match_run_stream_for_all_algorithms() {
    let scenario = tiny_scenario(1.1, 11);
    for alg in Algorithm::ALL {
        check_step_parity(&scenario, alg);
    }
}

/// A Checkpointer driven through the external seam (step + view commit)
/// captures the same checkpoint bytes as one riding inside run_stream.
#[test]
fn external_commit_hook_feeds_checkpointer_identically() {
    let scenario = tiny_scenario(1.0, 5);
    let spec = AlgorithmSpec::from(Algorithm::Fullg);
    let ctx = BuildContext::new(&scenario);
    let events: Vec<SlotEvents> = scenario.online_events().collect();
    let penalty = scenario.penalty();
    let window = scenario.config.measure_window;

    let mut reference_alg = scenario.registry().build(&spec, &ctx).unwrap().algorithm;
    let mut reference_ckpt = Checkpointer::every(10, WindowSummary::new(window, penalty.clone()));
    run_stream(
        &mut *reference_alg,
        &scenario.substrate,
        events.clone(),
        &mut reference_ckpt,
    );

    let mut actor_alg = scenario.registry().build(&spec, &ctx).unwrap().algorithm;
    let mut actor_ckpt = Checkpointer::every(10, WindowSummary::new(window, penalty));
    let mut state = EngineState::fresh();
    for event in events {
        state.step(
            &mut *actor_alg,
            &scenario.substrate,
            event,
            &mut actor_ckpt,
            &mut ReembedAll,
        );
        actor_ckpt.on_slot_committed(&state.view(&*actor_alg));
    }

    let reference = reference_ckpt.into_latest().expect("reference checkpoint");
    let actor = actor_ckpt.into_latest().expect("actor checkpoint");
    assert_eq!(reference.slot, actor.slot);
    assert_eq!(reference.algorithm, actor.algorithm);
    assert_eq!(
        reference.algorithm_state, actor.algorithm_state,
        "algorithm blobs"
    );
    assert_eq!(
        reference.observer_state, actor.observer_state,
        "observer blobs"
    );
    // The engine blob embeds the wall-clock online_secs counter; it is
    // the only permitted difference between the two drivers.
    assert_eq!(
        normalized_engine(&reference.engine),
        normalized_engine(&actor.engine),
        "engine blobs (wall-clock normalized)"
    );
}

/// Re-snapshots an engine blob with its wall-clock counter zeroed.
fn normalized_engine(blob: &StateBlob) -> StateBlob {
    let mut state = EngineState::fresh();
    state.restore(blob).expect("engine blob restores");
    state.set_online_secs(0.0);
    state.snapshot()
}
