//! Pipelined-engine parity: the tentpole guarantee of the parallel slot
//! pipeline. [`run_stream_pipelined`] overlaps event production, the
//! algorithm step and the observer fan-out on three stages, but every
//! value an observer sees is computed by the same code as the serial
//! loop — so window summaries, early-stopped runs and captured
//! checkpoints must be **byte-identical** to [`run_stream`], for every
//! builtin algorithm, both estimators driving OLIVE's plan, and
//! proptest-randomized stop/checkpoint slots.
//!
//! Also pins the [`SweepContext`] memo: cached application draws and
//! offline plans must equal fresh derivations exactly.

use std::sync::Arc;

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::request::Slot;
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_sim::engine::{
    run_stream, run_stream_from, run_stream_from_pipelined, run_stream_from_pipelined_with,
    run_stream_from_with, run_stream_pipelined, run_stream_pipelined_with, run_stream_with,
    PipelineConfig, ReembedKind,
};
use vne_sim::metrics::Summary;
use vne_sim::observe::{Checkpointer, StopAfter, Tee, WindowSummary};
use vne_sim::registry::{AlgorithmRegistry, BuildContext};
use vne_sim::runner::{default_apps, run_seeds_in, run_seeds_with, SweepContext};
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};
use vne_workload::adversary::{ChurnProfile, ChurnSchedule};
use vne_workload::estimator::EstimatorKind;

use proptest::prelude::*;

/// `PROPTEST_CASES`-scalable case count (the scheduled CI property job
/// raises it; the local default stays small because each case drives
/// full simulations for all four algorithms).
fn cases(default: u32) -> ProptestConfig {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(default);
    ProptestConfig::with_cases(cases)
}

/// The tiny 4-node world of the checkpoint suite: small enough that the
/// exact baselines stay fast in debug builds, loaded enough that OLIVE
/// preempts at 140%.
fn tiny_scenario(utilization: f64, seed: u64) -> Scenario {
    let mut s = SubstrateNetwork::new("tiny");
    let e0 = s.add_node("e0", Tier::Edge, 300.0, 50.0).unwrap();
    let e1 = s.add_node("e1", Tier::Edge, 300.0, 50.0).unwrap();
    let t = s.add_node("t", Tier::Transport, 900.0, 10.0).unwrap();
    let c = s.add_node("c", Tier::Core, 2700.0, 1.0).unwrap();
    s.add_link(e0, t, 1500.0, 1.0).unwrap();
    s.add_link(e1, t, 1500.0, 1.0).unwrap();
    s.add_link(t, c, 4500.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    apps.push(
        "tree",
        AppShape::Tree,
        shapes::two_branch_tree(3, 6.0, 2.0).unwrap(),
    )
    .unwrap();
    let mut config = ScenarioConfig::small(utilization).with_seed(seed);
    config.history_slots = 60;
    config.test_slots = 25;
    config.measure_window = (2, 22);
    config.aggregation.bootstrap_replicates = 10;
    Scenario::new(s, apps, config)
}

fn assert_bitwise_equal(label: &str, serial: &Summary, pipelined: &Summary) {
    assert_eq!(serial.arrivals, pipelined.arrivals, "{label}: arrivals");
    assert_eq!(serial.rejected, pipelined.rejected, "{label}: rejected");
    assert_eq!(serial.preempted, pipelined.preempted, "{label}: preempted");
    for (name, a, b) in [
        (
            "rejection_rate",
            serial.rejection_rate,
            pipelined.rejection_rate,
        ),
        (
            "resource_cost",
            serial.resource_cost,
            pipelined.resource_cost,
        ),
        (
            "rejection_cost",
            serial.rejection_cost,
            pipelined.rejection_cost,
        ),
        ("total_cost", serial.total_cost, pipelined.total_cost),
        (
            "balance_index",
            serial.balance_index,
            pipelined.balance_index,
        ),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: {name}");
    }
    assert_eq!(
        serial.fingerprint(),
        pipelined.fingerprint(),
        "{label}: fingerprint"
    );
}

/// Serial vs pipelined for one algorithm of one scenario, with a random
/// stop slot and a random checkpoint cadence: the plain summaries, the
/// early-stopped partial summaries and stats, the captured checkpoint
/// slots, and the summaries of runs resumed from the pipelined
/// checkpoint must all agree bitwise.
fn check_parity(scenario: &Scenario, alg: Algorithm, stop_at: Slot, every: Slot) {
    let registry = AlgorithmRegistry::builtins();
    let mk = || {
        registry
            .build(&alg.into(), &BuildContext::new(scenario))
            .unwrap()
    };
    let window = || WindowSummary::new(scenario.config.measure_window, scenario.penalty());

    // Plain full-horizon run.
    let mut serial_alg = mk();
    let mut serial_window = window();
    let serial_stats = run_stream(
        serial_alg.algorithm.as_mut(),
        &scenario.substrate,
        scenario.online_events(),
        &mut serial_window,
    );
    let serial = serial_window.finish(&serial_stats);

    let mut piped_alg = mk();
    let mut piped_window = window();
    let piped_stats = run_stream_pipelined(
        piped_alg.algorithm.as_mut(),
        &scenario.substrate,
        scenario.online_events(),
        &mut piped_window,
        &PipelineConfig::default(),
    );
    let piped = piped_window.finish(&piped_stats);
    assert_eq!(serial_stats.slots_run, piped_stats.slots_run);
    assert_eq!(serial_stats.arrivals, piped_stats.arrivals);
    assert_eq!(serial_stats.peak_active, piped_stats.peak_active);
    assert_eq!(serial_stats.stopped_early, piped_stats.stopped_early);
    assert_bitwise_equal(alg.label(), &serial, &piped);

    // Early-stopped + checkpointed run: StopAfter fires at `stop_at`
    // slots, the checkpointer captures every `every` slots.
    let run_stopped = |pipelined: bool| {
        let mut built = mk();
        let mut w = window();
        let mut checkpointer = Checkpointer::every(every, &mut w);
        let mut stop = StopAfter::new(stop_at);
        let stats = {
            let mut observer = Tee(&mut checkpointer, &mut stop);
            if pipelined {
                run_stream_pipelined(
                    built.algorithm.as_mut(),
                    &scenario.substrate,
                    scenario.online_events(),
                    &mut observer,
                    &PipelineConfig::capturing(every),
                )
            } else {
                run_stream(
                    built.algorithm.as_mut(),
                    &scenario.substrate,
                    scenario.online_events(),
                    &mut observer,
                )
            }
        };
        assert!(
            checkpointer.last_error().is_none(),
            "{alg}: {:?}",
            checkpointer.last_error()
        );
        let taken = checkpointer.checkpoints_taken();
        let latest = checkpointer.into_latest();
        (w.finish(&stats), stats, latest, taken)
    };
    let (serial_part, serial_pstats, serial_ckpt, serial_taken) = run_stopped(false);
    let (piped_part, piped_pstats, piped_ckpt, piped_taken) = run_stopped(true);
    assert_eq!(serial_pstats.slots_run, piped_pstats.slots_run);
    assert_eq!(serial_pstats.arrivals, piped_pstats.arrivals);
    assert_eq!(serial_pstats.stopped_early, piped_pstats.stopped_early);
    assert_eq!(serial_taken, piped_taken, "{alg}: checkpoints taken");
    assert_bitwise_equal(alg.label(), &serial_part, &piped_part);
    assert_eq!(
        serial_ckpt.as_ref().map(|c| c.slot),
        piped_ckpt.as_ref().map(|c| c.slot),
        "{alg}: latest checkpoint slot"
    );

    // A checkpoint captured by the pipelined run resumes — serially and
    // pipelined — to the exact full-horizon summary.
    if let Some(checkpoint) = piped_ckpt {
        let mut resume_alg = mk();
        let mut resume_window = window();
        let stats = run_stream_from(
            &checkpoint,
            resume_alg.algorithm.as_mut(),
            &scenario.substrate,
            scenario.online_events(),
            &mut resume_window,
        )
        .unwrap();
        assert_bitwise_equal(alg.label(), &serial, &resume_window.finish(&stats));

        let mut resume_alg = mk();
        let mut resume_window = window();
        let stats = run_stream_from_pipelined(
            &checkpoint,
            resume_alg.algorithm.as_mut(),
            &scenario.substrate,
            scenario.online_events(),
            &mut resume_window,
            &PipelineConfig::default(),
        )
        .unwrap();
        assert_bitwise_equal(alg.label(), &serial, &resume_window.finish(&stats));
    }
}

/// Churn-window parity: capture a checkpoint exactly at slot `at`
/// (inside a churn window) with the *pipelined* engine, then resume it
/// both serially and pipelined — all three results must equal the
/// serial straight-through reference bitwise, churn counters included.
fn check_churn_window_parity(scenario: &Scenario, alg: Algorithm, at: Slot) {
    let registry = AlgorithmRegistry::builtins();
    let mk = || {
        registry
            .build(&alg.into(), &BuildContext::new(scenario))
            .unwrap()
    };
    let window = || WindowSummary::new(scenario.config.measure_window, scenario.penalty());
    let policy = || scenario.config.reembed.policy();

    // Serial straight-through reference.
    let mut serial_alg = mk();
    let mut serial_window = window();
    let serial_stats = run_stream_with(
        serial_alg.algorithm.as_mut(),
        &scenario.substrate,
        scenario.online_events(),
        &mut serial_window,
        policy().as_mut(),
    );
    let serial = serial_window.finish(&serial_stats);

    // One checkpoint exactly at `at`, captured by the pipelined engine.
    let mut built = mk();
    let mut w = window();
    let mut checkpointer = Checkpointer::every(at + 1, &mut w);
    let mut stop = StopAfter::new(at + 1);
    {
        let mut observer = Tee(&mut checkpointer, &mut stop);
        run_stream_pipelined_with(
            built.algorithm.as_mut(),
            &scenario.substrate,
            scenario.online_events(),
            &mut observer,
            &PipelineConfig::capturing(at + 1),
            policy().as_mut(),
        );
    }
    assert!(
        checkpointer.last_error().is_none(),
        "{alg}: {:?}",
        checkpointer.last_error()
    );
    let checkpoint = checkpointer
        .into_latest()
        .expect("checkpoint inside the churn window");
    assert_eq!(checkpoint.slot, at, "{alg}: checkpoint slot");

    // Resume serially and pipelined; both must match the reference.
    for pipelined in [false, true] {
        let mut resume_alg = mk();
        let mut resume_window = window();
        let stats = if pipelined {
            run_stream_from_pipelined_with(
                &checkpoint,
                resume_alg.algorithm.as_mut(),
                &scenario.substrate,
                scenario.online_events(),
                &mut resume_window,
                &PipelineConfig::default(),
                policy().as_mut(),
            )
            .unwrap()
        } else {
            run_stream_from_with(
                &checkpoint,
                resume_alg.algorithm.as_mut(),
                &scenario.substrate,
                scenario.online_events(),
                &mut resume_window,
                policy().as_mut(),
            )
            .unwrap()
        };
        let resumed = resume_window.finish(&stats);
        assert_bitwise_equal(alg.label(), &serial, &resumed);
        assert_eq!(
            serial.churn, resumed.churn,
            "{alg}: churn counters (pipelined resume = {pipelined})"
        );
    }
}

proptest! {
    #![proptest_config(cases(4))]

    /// The pipelined twin of the checkpoint suite's churn battery:
    /// proptest-random checkpoint slots land *inside* outage /
    /// maintenance / drain windows, and the resumed window summaries
    /// stay byte-identical through both engines under both re-embed
    /// policies.
    #[test]
    fn churn_window_checkpoints_pipeline_parity(
        seed in 1u64..500,
        profile_idx in 0usize..3,
        window_idx in 0u32..3,
        offset in 0u32..4,
        evict in any::<bool>(),
    ) {
        let churn = [
            ChurnProfile::LinkOutages { period: 10, len: 4, count: 2 },
            ChurnProfile::NodeMaintenance { period: 10, len: 4 },
            ChurnProfile::CapacityDrain { period: 10, len: 4, factor: 0.3 },
        ][profile_idx];
        let mut scenario = tiny_scenario(1.2, seed);
        scenario.config.churn = Some(churn);
        scenario.config.reembed = if evict {
            ReembedKind::Evict
        } else {
            ReembedKind::Reembed
        };
        let at = window_idx * 10 + offset;
        let schedule = ChurnSchedule::new(churn, &scenario.substrate);
        prop_assert!(schedule.in_window(at), "slot {at} must be inside a churn window");
        for alg in [Algorithm::Olive, Algorithm::SlotOff] {
            check_churn_window_parity(&scenario, alg, at);
        }
    }
}

proptest! {
    #![proptest_config(cases(6))]

    /// The tentpole property: serial and pipelined engines agree
    /// bitwise — all four builtin algorithms, both estimators driving
    /// OLIVE's plan, random utilization (preemption at the high
    /// levels), random stop slots and checkpoint cadences.
    #[test]
    fn pipelined_runs_are_byte_identical(
        seed in 1u64..1000,
        util_idx in 0usize..5,
        stop_frac in 0.1f64..1.0,
        every in 1u32..12,
    ) {
        let utilization = [0.6, 0.8, 1.0, 1.2, 1.4][util_idx];
        let scenario = tiny_scenario(utilization, seed);
        let slots = scenario.config.test_slots;
        let stop_at = ((stop_frac * f64::from(slots)) as Slot).clamp(1, slots);
        for alg in Algorithm::ALL {
            check_parity(&scenario, alg, stop_at, every);
        }
        // OLIVE again with the sketch estimator planning the run.
        let mut sketch = tiny_scenario(utilization, seed);
        sketch.config.estimator = EstimatorKind::Sketch;
        check_parity(&sketch, Algorithm::Olive, stop_at, every);
    }
}

#[test]
fn scenario_dispatch_matches_explicit_serial_run() {
    // Whatever mode `Scenario::run_summary` dispatches to on this host
    // (the VNE_PIPELINE toggle / core-count default), the result equals
    // an explicit serial engine run.
    let scenario = tiny_scenario(1.2, 11);
    let auto = scenario.run_summary(Algorithm::Olive).unwrap();
    let registry = AlgorithmRegistry::builtins();
    let mut built = registry
        .build(&Algorithm::Olive.into(), &BuildContext::new(&scenario))
        .unwrap();
    let mut window = WindowSummary::new(scenario.config.measure_window, scenario.penalty());
    let stats = run_stream(
        built.algorithm.as_mut(),
        &scenario.substrate,
        scenario.online_events(),
        &mut window,
    );
    assert_bitwise_equal("OLIVE", &window.finish(&stats), &auto);
}

#[test]
fn sweep_context_caches_equal_fresh_derivations() {
    // Cached application draws are the exact draw, cached plans the
    // exact plan — and a context-backed multi-seed run is byte-identical
    // to the context-free path.
    let ctx = Arc::new(SweepContext::new());
    let fresh_apps = default_apps(7);
    let first = ctx.apps(7, default_apps);
    let cached = ctx.apps(7, default_apps);
    assert_eq!(format!("{first:?}"), format!("{fresh_apps:?}"));
    assert_eq!(format!("{cached:?}"), format!("{fresh_apps:?}"));
    assert_eq!(ctx.apps_cached(), 1, "second call must hit the memo");
    // Sharing one context across *different* generators is a contract
    // violation; debug builds trip on the mismatched draw (the check is
    // compiled out in release, where the cache simply serves the memo).
    if cfg!(debug_assertions) {
        let misuse = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.apps(7, |seed| default_apps(seed + 1))
        }));
        assert!(
            misuse.is_err(),
            "mixed-generator sharing must panic in debug builds"
        );
    }

    let scenario = tiny_scenario(1.0, 9);
    let (fresh_plan, _) = scenario.build_plan();
    let key = scenario
        .plan_cache_key()
        .expect("exact estimator has a key");
    let (first_plan, _) = ctx.plan_for(key, || scenario.build_plan());
    let (cached_plan, _) = ctx.plan_for(key, || panic!("must hit the cache"));
    assert_eq!(first_plan, fresh_plan);
    assert_eq!(cached_plan, fresh_plan);
    assert_eq!(ctx.plans_cached(), 1);

    // Different plan inputs get different keys (no false sharing).
    let mut distorted = tiny_scenario(1.0, 9);
    distorted.config.plan_utilization = Some(0.6);
    assert_ne!(distorted.plan_cache_key(), Some(key));
    let mut other_seed = tiny_scenario(1.0, 10);
    other_seed.config = other_seed.config.with_seed(10);
    assert_ne!(other_seed.plan_cache_key(), Some(key));
    // OLIVE ablation switches do NOT change the plan inputs: variants
    // share one derivation.
    let mut ablated = tiny_scenario(1.0, 9);
    ablated.config.olive.borrowing = false;
    assert_eq!(ablated.plan_cache_key(), Some(key));
    // Custom estimators cannot be fingerprinted and bypass the cache.
    let mut custom = tiny_scenario(1.0, 9);
    custom.config.estimator = EstimatorKind::custom(|slots, config| {
        Box::new(vne_workload::estimator::ExactEstimator::new(slots, *config))
    });
    assert_eq!(custom.plan_cache_key(), None);

    // End to end: a shared-context sweep equals the context-free sweep.
    let substrate = scenario.substrate.clone();
    let configure = |seed: u64| {
        let mut c = ScenarioConfig::small(1.2).with_seed(seed);
        c.history_slots = 60;
        c.test_slots = 25;
        c.measure_window = (2, 22);
        c.aggregation.bootstrap_replicates = 10;
        c
    };
    let registry = AlgorithmRegistry::builtins();
    let seeds = [1u64, 2];
    let (plain, _) = run_seeds_in(
        &registry,
        &substrate,
        &Algorithm::Olive.into(),
        &seeds,
        default_apps,
        configure,
    );
    let shared = Arc::new(SweepContext::new());
    let (with_ctx, _) = run_seeds_with(
        &shared,
        &registry,
        &substrate,
        &Algorithm::Olive.into(),
        &seeds,
        default_apps,
        configure,
    );
    // Second pass over the same context: everything is a cache hit.
    let (second_pass, _) = run_seeds_with(
        &shared,
        &registry,
        &substrate,
        &Algorithm::Olive.into(),
        &seeds,
        default_apps,
        configure,
    );
    assert_eq!(shared.plans_cached(), seeds.len());
    assert_eq!(shared.apps_cached(), seeds.len());
    for ((a, b), c) in plain.iter().zip(&with_ctx).zip(&second_pass) {
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), c.fingerprint());
    }
}
