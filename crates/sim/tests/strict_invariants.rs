//! The runtime invariant auditor over the engine: a clean run audits
//! clean after every slot, and hand-corrupted engine state is caught
//! by [`audit_engine`]. Under `--features strict-invariants` the
//! per-slot hook inside the engine enforces the same audit, so the
//! corrupted step panics instead of silently continuing.

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::ids::{AppId, NodeId, RequestId};
use vne_model::policy::PlacementPolicy;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_olive::fullg::FullG;
use vne_sim::engine::{audit_engine, EngineState, ReembedAll};
use vne_sim::NullObserver;

fn world() -> (SubstrateNetwork, AppSet) {
    let mut s = SubstrateNetwork::new("audit");
    let e0 = s.add_node("e0", Tier::Edge, 300.0, 50.0).unwrap();
    let e1 = s.add_node("e1", Tier::Edge, 300.0, 50.0).unwrap();
    let t = s.add_node("t", Tier::Transport, 900.0, 10.0).unwrap();
    s.add_link(e0, t, 1500.0, 1.0).unwrap();
    s.add_link(e1, t, 1500.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    (s, apps)
}

fn request(id: u64, arrival: Slot, duration: Slot, demand: f64) -> Request {
    Request {
        id: RequestId(id),
        arrival,
        duration,
        ingress: NodeId::from_index(0),
        app: AppId(0),
        demand,
    }
}

/// Steps `state` through `slots` slots with one small arrival each,
/// returning the algorithm for auditing.
fn run_slots(state: &mut EngineState, slots: Slot) -> (FullG, SubstrateNetwork) {
    let (s, apps) = world();
    let mut alg = FullG::new(s.clone(), apps, PlacementPolicy::default());
    for t in 0..slots {
        let event = SlotEvents {
            slot: t,
            arrivals: vec![request(t.into(), t, 3, 1.0)],
            churn: vec![],
        };
        state.step(&mut alg, &s, event, &mut NullObserver, &mut ReembedAll);
    }
    (alg, s)
}

#[test]
fn clean_run_audits_clean() {
    let mut state = EngineState::fresh();
    let (alg, _s) = run_slots(&mut state, 6);
    assert!(state.active_count() > 0, "some requests should be alive");
    let violations = audit_engine(&state, &alg);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn corrupted_allocated_counter_is_caught() {
    let mut state = EngineState::fresh();
    let (alg, _s) = run_slots(&mut state, 4);
    state.debug_set_allocated_active(12345.0);
    let violations = audit_engine(&state, &alg);
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "engine-allocated-counter"),
        "{violations:?}"
    );
}

#[test]
fn missing_departure_schedule_is_caught() {
    let mut state = EngineState::fresh();
    let (alg, _s) = run_slots(&mut state, 4);
    assert!(state.active_count() > 0);
    state.debug_clear_departures();
    let violations = audit_engine(&state, &alg);
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "engine-departure-calendar"),
        "{violations:?}"
    );
}

/// With the feature on, the per-slot hook turns the same corruption
/// into a panic at the next step.
#[cfg(feature = "strict-invariants")]
#[test]
#[should_panic(expected = "strict-invariants")]
fn hook_panics_on_corrupted_counter() {
    let (s, apps) = world();
    let mut alg = FullG::new(s.clone(), apps, PlacementPolicy::default());
    let mut state = EngineState::fresh();
    let event = SlotEvents {
        slot: 0,
        arrivals: vec![request(0, 0, 5, 1.0)],
        churn: vec![],
    };
    state.step(&mut alg, &s, event, &mut NullObserver, &mut ReembedAll);
    state.debug_set_allocated_active(9999.0);
    let event = SlotEvents {
        slot: 1,
        arrivals: vec![],
        churn: vec![],
    };
    state.step(&mut alg, &s, event, &mut NullObserver, &mut ReembedAll);
}
