//! Snapshot codec round-trip battery for the simulator's encodable
//! types — the `vne-audit` D5 (`snapshot-pairing`) coverage for
//! `RequestStatus`, `RequestOutcome` and `SlotMetrics`.

use vne_model::ids::{AppId, ClassId, NodeId, RequestId};
use vne_model::state::{StateDecode, StateEncode, StateReader, StateWriter};
use vne_sim::engine::{RequestOutcome, RequestStatus, SlotMetrics};

fn roundtrip<T>(value: &T)
where
    T: StateEncode + StateDecode + PartialEq + std::fmt::Debug,
{
    let mut w = StateWriter::new();
    w.write(value);
    let blob = w.finish();
    let mut r = StateReader::new(&blob);
    let decoded: T = r.read().expect("decode");
    r.finish().expect("no trailing bytes");
    assert_eq!(&decoded, value);
}

#[test]
fn request_status_roundtrip() {
    for status in [
        RequestStatus::Accepted,
        RequestStatus::Rejected,
        RequestStatus::Preempted(17),
    ] {
        roundtrip(&status);
    }
}

#[test]
fn request_outcome_roundtrip() {
    let outcome = RequestOutcome {
        id: RequestId::from_index(99),
        class: ClassId::new(AppId::from_index(1), NodeId::from_index(3)),
        arrival: 5,
        duration: 12,
        demand: 2.25,
        status: RequestStatus::Preempted(9),
    };
    roundtrip(&outcome);
}

#[test]
fn slot_metrics_roundtrip() {
    let metrics = SlotMetrics {
        requested_demand: 10.5,
        allocated_demand: 8.25,
        resource_cost: 123.0625,
    };
    roundtrip(&metrics);
    roundtrip(&SlotMetrics::default());
}

#[test]
fn corrupt_status_tag_is_rejected() {
    let mut w = StateWriter::new();
    w.write_u8(250);
    let blob = w.finish();
    let mut r = StateReader::new(&blob);
    assert!(RequestStatus::decode(&mut r).is_err());
}
