//! Parity: the streaming engine must reproduce the old batch engine's
//! results exactly.
//!
//! `batch_run` below is a faithful copy of the pre-streaming engine
//! (pre-bucketed arrivals, precomputed requested series, in-place
//! outcome updates) kept as the oracle. The property: for any seed and
//! utilization, each of the four paper algorithms produces the same
//! per-request statuses and a byte-identical window [`Summary`]
//! (modulo the wall-clock `online_secs` field) on both paths.

use std::collections::HashSet;

use proptest::prelude::*;
use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::ids::RequestId;
use vne_model::request::{Request, Slot};
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_olive::algorithm::OnlineAlgorithm;
use vne_sim::engine::{RequestOutcome, RequestStatus, RunResult, SlotMetrics};
use vne_sim::metrics::{summarize, Summary};
use vne_sim::registry::{AlgorithmRegistry, BuildContext};
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};

/// The pre-streaming batch engine, verbatim: the parity oracle.
fn batch_run(
    algorithm: &mut dyn OnlineAlgorithm,
    substrate: &SubstrateNetwork,
    trace: &[Request],
    slots: Slot,
) -> RunResult {
    let mut arrivals_at: Vec<Vec<Request>> = vec![Vec::new(); slots as usize];
    for r in trace {
        if r.arrival < slots {
            arrivals_at[r.arrival as usize].push(r.clone());
        }
    }
    for bucket in &mut arrivals_at {
        bucket.sort_by_key(|r| r.id);
    }

    let mut departures_at: Vec<Vec<Request>> = vec![Vec::new(); slots as usize + 1];
    let mut alive: HashSet<RequestId> = HashSet::new();
    let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(trace.len());
    let mut outcome_index: std::collections::HashMap<RequestId, usize> =
        std::collections::HashMap::with_capacity(trace.len());
    let mut slot_metrics = vec![SlotMetrics::default(); slots as usize];

    let mut requested = vec![0.0f64; slots as usize];
    for r in trace {
        let end = r.departure().min(slots);
        for t in r.arrival..end {
            requested[t as usize] += r.demand;
        }
    }

    let mut allocated_active = 0.0f64;
    for t in 0..slots {
        let departures: Vec<Request> = departures_at[t as usize]
            .drain(..)
            .filter(|r| alive.remove(&r.id))
            .collect();
        for d in &departures {
            allocated_active -= d.demand;
        }
        let arrivals = std::mem::take(&mut arrivals_at[t as usize]);
        let outcome = algorithm.process_slot(t, &departures, &arrivals);

        for r in &arrivals {
            let accepted = outcome.accepted.contains(&r.id);
            let status = if accepted {
                RequestStatus::Accepted
            } else {
                RequestStatus::Rejected
            };
            outcome_index.insert(r.id, outcomes.len());
            outcomes.push(RequestOutcome {
                id: r.id,
                class: r.class(),
                arrival: r.arrival,
                duration: r.duration,
                demand: r.demand,
                status,
            });
            if accepted {
                alive.insert(r.id);
                allocated_active += r.demand;
                let dep = r.departure();
                if dep <= slots {
                    departures_at[dep as usize].push(r.clone());
                }
            }
        }
        for &p in &outcome.preempted {
            if alive.remove(&p) {
                if let Some(&idx) = outcome_index.get(&p) {
                    allocated_active -= outcomes[idx].demand;
                    outcomes[idx].status = RequestStatus::Preempted(t);
                }
            }
        }

        slot_metrics[t as usize] = SlotMetrics {
            requested_demand: requested[t as usize],
            allocated_demand: allocated_active,
            resource_cost: algorithm.loads().cost_per_slot(substrate),
        };
    }

    RunResult {
        algorithm: algorithm.name().to_string(),
        requests: outcomes,
        slots: slot_metrics,
        online_secs: 0.0,
    }
}

/// A deliberately tiny 4-node world (like `tests/algorithms.rs`) so the
/// exact baselines (FULLG's per-request ILPs, SLOTOFF's per-slot
/// re-plans) stay fast in debug builds.
fn tiny_scenario(utilization: f64, seed: u64) -> Scenario {
    let mut s = SubstrateNetwork::new("tiny");
    let e0 = s.add_node("e0", Tier::Edge, 300.0, 50.0).unwrap();
    let e1 = s.add_node("e1", Tier::Edge, 300.0, 50.0).unwrap();
    let t = s.add_node("t", Tier::Transport, 900.0, 10.0).unwrap();
    let c = s.add_node("c", Tier::Core, 2700.0, 1.0).unwrap();
    s.add_link(e0, t, 1500.0, 1.0).unwrap();
    s.add_link(e1, t, 1500.0, 1.0).unwrap();
    s.add_link(t, c, 4500.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    apps.push(
        "tree",
        AppShape::Tree,
        shapes::two_branch_tree(3, 6.0, 2.0).unwrap(),
    )
    .unwrap();
    let mut config = ScenarioConfig::small(utilization).with_seed(seed);
    config.history_slots = 60;
    config.test_slots = 25;
    config.measure_window = (2, 22);
    config.aggregation.bootstrap_replicates = 10;
    Scenario::new(s, apps, config)
}

fn assert_summary_parity(alg: Algorithm, streaming: &Summary, batch: &Summary) {
    // Byte-identical except the wall-clock field.
    assert_eq!(streaming.arrivals, batch.arrivals, "{alg}: arrivals");
    assert_eq!(streaming.rejected, batch.rejected, "{alg}: rejected");
    assert_eq!(streaming.preempted, batch.preempted, "{alg}: preempted");
    assert_eq!(
        streaming.rejection_rate.to_bits(),
        batch.rejection_rate.to_bits(),
        "{alg}: rejection_rate"
    );
    assert_eq!(
        streaming.resource_cost.to_bits(),
        batch.resource_cost.to_bits(),
        "{alg}: resource_cost"
    );
    assert_eq!(
        streaming.rejection_cost.to_bits(),
        batch.rejection_cost.to_bits(),
        "{alg}: rejection_cost"
    );
    assert_eq!(
        streaming.total_cost.to_bits(),
        batch.total_cost.to_bits(),
        "{alg}: total_cost"
    );
    assert_eq!(
        streaming.balance_index.to_bits(),
        batch.balance_index.to_bits(),
        "{alg}: balance_index"
    );
}

fn check_parity(utilization: f64, seed: u64) {
    let scenario = tiny_scenario(utilization, seed);
    let registry = AlgorithmRegistry::builtins();
    for alg in Algorithm::ALL {
        // Streaming path: the production Scenario::run.
        let streaming = scenario.run(alg);
        // Batch path: a fresh instance of the same algorithm (the plan
        // build is deterministic per seed) driven by the oracle.
        let mut built = registry
            .build(&alg.into(), &BuildContext::new(&scenario))
            .unwrap();
        let batch = batch_run(
            built.algorithm.as_mut(),
            &scenario.substrate,
            &scenario.online_trace(),
            scenario.config.test_slots,
        );
        let batch_summary = summarize(&batch, &scenario.penalty(), scenario.config.measure_window);

        // Identical per-request decisions, in the same order.
        assert_eq!(
            streaming.result.requests.len(),
            batch.requests.len(),
            "{alg}: outcome count"
        );
        for (s, b) in streaming.result.requests.iter().zip(&batch.requests) {
            assert_eq!(s.id, b.id, "{alg}: outcome order");
            assert_eq!(s.status, b.status, "{alg}: status of {:?}", s.id);
        }
        assert_summary_parity(alg, &streaming.summary, &batch_summary);
        // Per-slot series agree too (requested/allocated are kept
        // incrementally by the streaming engine, so allow ulp slack
        // there; resource cost is computed identically).
        assert_eq!(streaming.result.slots.len(), batch.slots.len());
        for (s, b) in streaming.result.slots.iter().zip(&batch.slots) {
            assert_eq!(
                s.resource_cost.to_bits(),
                b.resource_cost.to_bits(),
                "{alg}: resource cost series"
            );
            assert!((s.requested_demand - b.requested_demand).abs() < 1e-6);
            assert!((s.allocated_demand - b.allocated_demand).abs() < 1e-6);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Streaming == batch for every paper algorithm, across random
    /// seeds and utilization levels.
    #[test]
    fn streaming_engine_matches_batch_engine(
        seed in 1u64..1000,
        util_idx in 0usize..5,
    ) {
        let utilization = [0.6, 0.8, 1.0, 1.2, 1.4][util_idx];
        check_parity(utilization, seed);
    }
}

/// A fixed-seed spot check at a load level where OLIVE demonstrably
/// preempts, so the preemption bookkeeping path is exercised — and
/// compared — deterministically.
#[test]
fn parity_at_high_load_fixed_seed() {
    check_parity(1.4, 11);
    let preempted = tiny_scenario(1.4, 11)
        .run(Algorithm::Olive)
        .summary
        .preempted;
    assert!(preempted > 0, "seed 11 must exercise preemption");
}
