//! Resume determinism: the headline guarantee of the checkpoint/resume
//! subsystem. A run checkpointed at slot `k` and resumed must produce a
//! [`Summary`] **byte-identical** to the uninterrupted run — for every
//! builtin algorithm, with preemption exercised, under
//! proptest-randomized `k` — plus the snapshot → restore → snapshot
//! round-trip (blob-equality) property for every [`Snapshot`] impl the
//! checkpoint path composes.
//!
//! The property blocks read `PROPTEST_CASES` (the scheduled CI property
//! job runs them at 1024 cases; the local default stays small because a
//! single case drives full simulations).

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::cost::RejectionPenalty;
use vne_model::request::Slot;
use vne_model::state::{Snapshot, StateError};
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_sim::engine::{run_stream, run_stream_from, EngineCheckpoint, EngineState, ReembedKind};
use vne_sim::metrics::Summary;
use vne_sim::observe::{Checkpointer, NullObserver, Recorder, StopAfter, Tee, WindowSummary};
use vne_sim::registry::{AlgorithmRegistry, BuildContext, BuiltAlgorithm};
use vne_sim::scenario::{Algorithm, ResumeError, Scenario, ScenarioConfig};
use vne_workload::adversary::{AdversaryProfile, ChurnProfile, ChurnSchedule};
use vne_workload::caida::CaidaConfig;
use vne_workload::estimator::EstimatorKind;

use proptest::prelude::*;

/// `PROPTEST_CASES`-scalable case count with a local default small
/// enough for the full-simulation cases below.
fn cases(default: u32) -> ProptestConfig {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(default);
    ProptestConfig::with_cases(cases)
}

/// The tiny 4-node world of the streaming-parity suite: small enough
/// that the exact baselines (FULLG's ILPs, SLOTOFF's per-slot LPs) stay
/// fast in debug builds, loaded enough that OLIVE preempts at 140%.
fn tiny_scenario(utilization: f64, seed: u64) -> Scenario {
    let mut s = SubstrateNetwork::new("tiny");
    let e0 = s.add_node("e0", Tier::Edge, 300.0, 50.0).unwrap();
    let e1 = s.add_node("e1", Tier::Edge, 300.0, 50.0).unwrap();
    let t = s.add_node("t", Tier::Transport, 900.0, 10.0).unwrap();
    let c = s.add_node("c", Tier::Core, 2700.0, 1.0).unwrap();
    s.add_link(e0, t, 1500.0, 1.0).unwrap();
    s.add_link(e1, t, 1500.0, 1.0).unwrap();
    s.add_link(t, c, 4500.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    apps.push(
        "tree",
        AppShape::Tree,
        shapes::two_branch_tree(3, 6.0, 2.0).unwrap(),
    )
    .unwrap();
    let mut config = ScenarioConfig::small(utilization).with_seed(seed);
    config.history_slots = 60;
    config.test_slots = 25;
    config.measure_window = (2, 22);
    config.aggregation.bootstrap_replicates = 10;
    Scenario::new(s, apps, config)
}

fn assert_bitwise_equal(alg: &str, straight: &Summary, resumed: &Summary) {
    assert_eq!(straight.arrivals, resumed.arrivals, "{alg}: arrivals");
    assert_eq!(straight.rejected, resumed.rejected, "{alg}: rejected");
    assert_eq!(straight.preempted, resumed.preempted, "{alg}: preempted");
    for (name, a, b) in [
        (
            "rejection_rate",
            straight.rejection_rate,
            resumed.rejection_rate,
        ),
        (
            "resource_cost",
            straight.resource_cost,
            resumed.resource_cost,
        ),
        (
            "rejection_cost",
            straight.rejection_cost,
            resumed.rejection_cost,
        ),
        ("total_cost", straight.total_cost, resumed.total_cost),
        (
            "balance_index",
            straight.balance_index,
            resumed.balance_index,
        ),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{alg}: {name}");
    }
    assert_eq!(
        straight.fingerprint(),
        resumed.fingerprint(),
        "{alg}: fingerprint"
    );
}

/// The core check: straight-through vs fork-at-`k`-then-resume for one
/// algorithm, including the snapshot → restore → snapshot blob-equality
/// round-trip of every blob the checkpoint carries.
fn check_resume(scenario: &Scenario, alg: Algorithm, at: Slot) {
    let straight = scenario.run_summary(alg).unwrap();
    let fork = scenario.fork_at(alg, at).unwrap();
    let checkpoint = fork.checkpoint();
    assert_eq!(checkpoint.slot, at, "{alg}: checkpoint slot");
    assert_eq!(checkpoint.algorithm, alg.label(), "{alg}: checkpoint name");

    // Round-trip property, algorithm blob: restore into a freshly built
    // instance, snapshot again, blobs must be equal.
    let registry = AlgorithmRegistry::builtins();
    let mut rebuilt = registry
        .build(&alg.into(), &BuildContext::new(scenario))
        .unwrap();
    rebuilt
        .algorithm
        .restore_state(&checkpoint.algorithm_state)
        .unwrap();
    assert_eq!(
        rebuilt.algorithm.snapshot_state().unwrap(),
        checkpoint.algorithm_state,
        "{alg}: algorithm snapshot round-trip"
    );

    // Round-trip property, engine blob.
    let mut engine = EngineState::fresh();
    engine.restore(&checkpoint.engine).unwrap();
    assert_eq!(
        engine.snapshot(),
        checkpoint.engine,
        "{alg}: engine snapshot round-trip"
    );
    assert_eq!(engine.next_slot(), u64::from(at) + 1);

    // Round-trip property, observer blob (a WindowSummary).
    let mut window = WindowSummary::new(scenario.config.measure_window, scenario.penalty());
    window.restore(&checkpoint.observer_state).unwrap();
    assert_eq!(
        window.snapshot(),
        checkpoint.observer_state,
        "{alg}: observer snapshot round-trip"
    );

    // The headline: the resumed run is byte-identical.
    let resumed = fork.resume().unwrap();
    assert_bitwise_equal(alg.label(), &straight, &resumed);
}

proptest! {
    #![proptest_config(cases(8))]

    /// Checkpoint at a random slot, resume, and require byte-identical
    /// summaries — all four builtin algorithms, both estimators driving
    /// OLIVE's plan, preemption included at the high-load levels.
    #[test]
    fn resumed_runs_are_byte_identical(
        seed in 1u64..1000,
        util_idx in 0usize..5,
        frac in 0.05f64..0.95,
    ) {
        let utilization = [0.6, 0.8, 1.0, 1.2, 1.4][util_idx];
        let scenario = tiny_scenario(utilization, seed);
        let at = ((frac * f64::from(scenario.config.test_slots - 1)) as Slot)
            .min(scenario.config.test_slots - 1);
        for alg in Algorithm::ALL {
            check_resume(&scenario, alg, at);
        }
        // OLIVE again with the sketch estimator planning the run.
        let mut sketch = tiny_scenario(utilization, seed);
        sketch.config.estimator = EstimatorKind::Sketch;
        check_resume(&sketch, Algorithm::Olive, at);
    }
}

proptest! {
    #![proptest_config(cases(8))]

    /// The checkpoint file format round-trips losslessly for arbitrary
    /// fork points and algorithms.
    #[test]
    fn checkpoint_bytes_roundtrip(
        seed in 1u64..1000,
        alg_idx in 0usize..4,
        at in 0u32..25,
    ) {
        let scenario = tiny_scenario(1.0, seed);
        let alg = Algorithm::ALL[alg_idx];
        let checkpoint = scenario.fork_at(alg, at).unwrap().into_checkpoint();
        let bytes = checkpoint.to_bytes();
        let parsed = EngineCheckpoint::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&parsed, &checkpoint);
        // Resuming through the parsed copy still works.
        let resumed = scenario.resume_summary(&parsed).unwrap();
        let straight = scenario.run_summary(alg).unwrap();
        prop_assert_eq!(resumed.fingerprint(), straight.fingerprint());
    }
}

proptest! {
    #![proptest_config(cases(4))]

    /// Resume under churn: the checkpoint slot is forced *inside* an
    /// outage / maintenance / drain window, where the engine's churn
    /// state, the algorithm's effective capacities and any stranded
    /// bookkeeping are all live — and the resumed [`Summary`] (churn
    /// counters included) must stay byte-identical for every builtin
    /// algorithm under both re-embed policies. The pipelined twin of
    /// this property lives in the `pipeline_parity` suite.
    #[test]
    fn churn_window_checkpoints_resume_byte_identically(
        seed in 1u64..500,
        profile_idx in 0usize..3,
        window_idx in 0u32..3,
        offset in 0u32..4,
        evict in any::<bool>(),
    ) {
        let churn = [
            ChurnProfile::LinkOutages { period: 10, len: 4, count: 2 },
            ChurnProfile::NodeMaintenance { period: 10, len: 4 },
            ChurnProfile::CapacityDrain { period: 10, len: 4, factor: 0.3 },
        ][profile_idx];
        let mut scenario = tiny_scenario(1.2, seed);
        scenario.config.churn = Some(churn);
        scenario.config.reembed = if evict {
            ReembedKind::Evict
        } else {
            ReembedKind::Reembed
        };
        // The schedule opens windows [10w, 10w + 4); land inside one.
        let at = window_idx * 10 + offset;
        let schedule = ChurnSchedule::new(churn, &scenario.substrate);
        prop_assert!(schedule.in_window(at), "slot {at} must be inside a churn window");
        for alg in Algorithm::ALL {
            let straight = scenario.run_summary(alg).unwrap();
            let fork = scenario.fork_at(alg, at).unwrap();
            let resumed = fork.resume().unwrap();
            assert_bitwise_equal(alg.label(), &straight, &resumed);
            prop_assert_eq!(straight.churn, resumed.churn, "{} churn counters", alg.label());
        }
    }
}

proptest! {
    #![proptest_config(cases(4))]

    /// Adversarial generators feed the resume path too: every profile's
    /// `skip_to` (or stateless modulation over the base stream's) must
    /// reproduce the exact suffix from an arbitrary fork slot.
    #[test]
    fn adversarial_runs_resume_byte_identically(
        seed in 1u64..500,
        profile_idx in 0usize..5,
        at in 0u32..24,
    ) {
        let mut scenario = tiny_scenario(1.0, seed);
        scenario.config.adversary = Some(AdversaryProfile::ALL[profile_idx]);
        check_resume(&scenario, Algorithm::Quickg, at);
    }
}

/// The off-by-one regression between `on_slot_end` and the stop
/// control: an [`StopAfter`] firing *exactly* on a checkpoint slot must
/// still leave that slot's checkpoint behind (the engine emits the
/// commit hook before honoring the stop), and the checkpoint must be
/// restorable to a byte-identical finish.
#[test]
fn stop_after_on_checkpoint_slot_leaves_restorable_checkpoint() {
    let scenario = tiny_scenario(1.2, 11);
    let registry = AlgorithmRegistry::builtins();
    let mut built = registry
        .build(&Algorithm::Quickg.into(), &BuildContext::new(&scenario))
        .unwrap();
    let mut window = WindowSummary::new(scenario.config.measure_window, scenario.penalty());
    // Budget 10 slots; checkpoint every 10 slots: both fire at slot 9.
    let mut checkpointer = Checkpointer::every(10, &mut window);
    let mut stop = StopAfter::new(10);
    let stats = {
        let mut observer = Tee(&mut checkpointer, &mut stop);
        run_stream(
            built.algorithm.as_mut(),
            &scenario.substrate,
            scenario.online_events(),
            &mut observer,
        )
    };
    assert!(stats.stopped_early, "the budget must stop the run");
    assert_eq!(stats.slots_run, 10);
    assert_eq!(
        checkpointer.checkpoints_taken(),
        1,
        "the stop slot's checkpoint must be captured"
    );
    let checkpoint = checkpointer.into_latest().expect("checkpoint at slot 9");
    assert_eq!(checkpoint.slot, 9);

    // And it resumes to the same place an uninterrupted run reaches.
    let resumed = scenario.resume_summary(&checkpoint).unwrap();
    let straight = scenario.run_summary(Algorithm::Quickg).unwrap();
    assert_bitwise_equal("QUICKG", &straight, &resumed);
}

#[test]
fn forks_branch_repeatedly_from_one_checkpoint() {
    // The what-if use case: one frozen prefix, many resumed tails.
    let scenario = tiny_scenario(1.4, 11);
    let fork = scenario.fork_at(Algorithm::Olive, 12).unwrap();
    let first = fork.resume().unwrap();
    let second = fork.resume().unwrap();
    assert_eq!(first.fingerprint(), second.fingerprint());
    let straight = scenario.run_summary(Algorithm::Olive).unwrap();
    assert!(straight.preempted > 0, "seed 11 must exercise preemption");
    assert_bitwise_equal("OLIVE", &straight, &first);
}

#[test]
fn caida_scenario_resumes_byte_identically() {
    // The CAIDA stream's skip_to feeds the resume path too.
    let mut scenario = tiny_scenario(1.0, 15);
    scenario.config.caida = Some(CaidaConfig {
        total_rate: 20.0,
        sources: 50,
        ..CaidaConfig::default()
    });
    check_resume(&scenario, Algorithm::Quickg, 7);
}

#[test]
fn resume_rejects_a_mismatched_algorithm() {
    let scenario = tiny_scenario(1.0, 3);
    let mut checkpoint = scenario
        .fork_at(Algorithm::Quickg, 5)
        .unwrap()
        .into_checkpoint();
    checkpoint.algorithm = "FULLG".to_string();
    // FULLG resolves, but its state blob is QUICKG's — the restore must
    // fail loudly, not silently mix states.
    match scenario.resume_summary(&checkpoint) {
        Err(ResumeError::State(_)) => {}
        other => panic!("expected a state error, got {other:?}"),
    }
    checkpoint.algorithm = "NOSUCH".to_string();
    assert!(matches!(
        scenario.resume_summary(&checkpoint),
        Err(ResumeError::UnknownAlgorithm(_))
    ));
}

#[test]
fn fork_outside_the_online_phase_errors() {
    let scenario = tiny_scenario(1.0, 3);
    let at = scenario.config.test_slots;
    assert!(matches!(
        scenario.fork_at(Algorithm::Quickg, at),
        Err(ResumeError::State(StateError::Corrupt(_)))
    ));
}

#[test]
fn checkpointer_records_error_for_snapshotless_algorithms() {
    // Algorithms that don't opt into snapshots don't kill the run; the
    // checkpointer records the failure instead.
    struct Opaque(vne_model::load::LoadLedger);
    impl vne_olive::algorithm::OnlineAlgorithm for Opaque {
        fn name(&self) -> &str {
            "OPAQUE"
        }
        fn process_slot(
            &mut self,
            _t: Slot,
            _departures: &[vne_model::request::Request],
            arrivals: &[vne_model::request::Request],
        ) -> vne_olive::algorithm::SlotOutcome {
            vne_olive::algorithm::SlotOutcome {
                rejected: arrivals.iter().map(|r| r.id).collect(),
                ..Default::default()
            }
        }
        fn loads(&self) -> &vne_model::load::LoadLedger {
            &self.0
        }
    }
    let base = tiny_scenario(1.0, 5);
    let scenario = Scenario::builder(base.substrate.clone())
        .apps(base.apps.clone())
        .config(base.config.clone())
        .algorithm("opaque", |ctx| {
            BuiltAlgorithm::plain(Opaque(vne_model::load::LoadLedger::new(ctx.substrate())))
        })
        .build();
    match scenario.fork_at("OPAQUE", 5) {
        Err(ResumeError::State(StateError::Unsupported(what))) => {
            assert!(what.contains("OPAQUE"), "{what}");
        }
        other => panic!("expected unsupported-state error, got {other:?}"),
    }
    // The periodic-checkpoint runner surfaces the same failure instead
    // of returning Ok with zero checkpoints.
    match scenario.run_summary_checkpointed("OPAQUE", 5, None) {
        Err(ResumeError::State(StateError::Unsupported(what))) => {
            assert!(what.contains("OPAQUE"), "{what}");
        }
        other => panic!("expected unsupported-state error, got {other:?}"),
    }
}

#[test]
fn run_summary_checkpointed_streams_periodic_checkpoints() {
    use std::sync::{Arc, Mutex};
    let scenario = tiny_scenario(1.0, 7);
    let seen: Arc<Mutex<Vec<Slot>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = Arc::clone(&seen);
    let (summary, latest) = scenario
        .run_summary_checkpointed(
            Algorithm::Quickg,
            8,
            Some(Box::new(move |cp: &EngineCheckpoint| {
                sink_seen.lock().unwrap().push(cp.slot);
            })),
        )
        .unwrap();
    // 25 slots, every 8: checkpoints at slots 7, 15 and 23.
    assert_eq!(*seen.lock().unwrap(), vec![7, 15, 23]);
    let latest = latest.expect("at least one checkpoint");
    assert_eq!(latest.slot, 23);
    let resumed = scenario.resume_summary(&latest).unwrap();
    assert_eq!(resumed.fingerprint(), summary.fingerprint());
}

#[test]
fn corrupt_checkpoint_bytes_are_rejected() {
    let scenario = tiny_scenario(1.0, 9);
    let checkpoint = scenario
        .fork_at(Algorithm::Quickg, 3)
        .unwrap()
        .into_checkpoint();
    let bytes = checkpoint.to_bytes();
    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        EngineCheckpoint::from_bytes(&bad),
        Err(StateError::Corrupt(_))
    ));
    // Truncation.
    assert!(EngineCheckpoint::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    // Trailing garbage.
    let mut long = bytes.clone();
    long.push(0);
    assert!(matches!(
        EngineCheckpoint::from_bytes(&long),
        Err(StateError::TrailingBytes { .. })
    ));
}

#[test]
fn simple_observer_snapshots_roundtrip() {
    // The small observers compose into checkpoints too: NullObserver,
    // StopAfter, Recorder, and Tees of them round-trip blob-equal.
    let mut null = NullObserver;
    let blob = null.snapshot();
    assert!(blob.is_empty());
    null.restore(&blob).unwrap();

    let stop = StopAfter::new(9);
    let stop_blob = stop.snapshot();
    let mut stop2 = StopAfter::new(1);
    stop2.restore(&stop_blob).unwrap();
    assert_eq!(stop2.snapshot(), stop_blob);
    assert_eq!(stop2.slots_seen(), stop.slots_seen());

    // A recorder filled by a real (tiny) run.
    let scenario = tiny_scenario(1.0, 13);
    let registry = AlgorithmRegistry::builtins();
    let mut built = registry
        .build(&Algorithm::Quickg.into(), &BuildContext::new(&scenario))
        .unwrap();
    let mut recorder = Recorder::new();
    let stats = run_stream(
        built.algorithm.as_mut(),
        &scenario.substrate,
        scenario.online_events(),
        &mut recorder,
    );
    let rec_blob = recorder.snapshot();
    let mut recorder2 = Recorder::new();
    recorder2.restore(&rec_blob).unwrap();
    assert_eq!(recorder2.snapshot(), rec_blob);
    let a = recorder.finish("QUICKG", &stats);
    let b = recorder2.finish("QUICKG", &stats);
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.slots, b.slots);

    // Tee composition.
    let tee = Tee(NullObserver, StopAfter::new(4));
    let tee_blob = tee.snapshot();
    let mut tee2 = Tee(NullObserver, StopAfter::new(1));
    tee2.restore(&tee_blob).unwrap();
    assert_eq!(tee2.snapshot(), tee_blob);
}

#[test]
fn engine_resume_matches_midstream_state() {
    // Drive the engine manually, checkpoint mid-stream via the observer
    // API, and resume through run_stream_from with a NullObserver — the
    // low-level API without the Scenario conveniences.
    let scenario = tiny_scenario(1.0, 21);
    let registry = AlgorithmRegistry::builtins();
    let mk = || {
        registry
            .build(&Algorithm::Quickg.into(), &BuildContext::new(&scenario))
            .unwrap()
    };

    let mut straight_alg = mk();
    let mut straight_window =
        WindowSummary::new(scenario.config.measure_window, scenario.penalty());
    let straight_stats = run_stream(
        straight_alg.algorithm.as_mut(),
        &scenario.substrate,
        scenario.online_events(),
        &mut straight_window,
    );
    let straight = straight_window.finish(&straight_stats);

    let mut prefix_alg = mk();
    let mut window = WindowSummary::new(scenario.config.measure_window, scenario.penalty());
    let mut checkpointer = Checkpointer::every(6, &mut window);
    let mut stop = StopAfter::new(6);
    {
        let mut observer = Tee(&mut checkpointer, &mut stop);
        run_stream(
            prefix_alg.algorithm.as_mut(),
            &scenario.substrate,
            scenario.online_events(),
            &mut observer,
        );
    }
    let checkpoint = checkpointer.into_latest().unwrap();

    let mut resume_alg = mk();
    let mut resume_window = WindowSummary::new(scenario.config.measure_window, scenario.penalty());
    let stats = run_stream_from(
        &checkpoint,
        resume_alg.algorithm.as_mut(),
        &scenario.substrate,
        scenario.online_events(),
        &mut resume_window,
    )
    .unwrap();
    assert_eq!(stats.slots_run, straight_stats.slots_run);
    assert_eq!(stats.arrivals, straight_stats.arrivals);
    assert!(!stats.stopped_early);
    let resumed = resume_window.finish(&stats);
    assert_bitwise_equal("QUICKG", &straight, &resumed);

    // Resuming with the wrong observer window is rejected.
    let mut wrong_window =
        WindowSummary::new((0, 1), RejectionPenalty::uniform(&scenario.apps, 1.0));
    let mut wrong_alg = mk();
    assert!(matches!(
        run_stream_from(
            &checkpoint,
            wrong_alg.algorithm.as_mut(),
            &scenario.substrate,
            scenario.online_events(),
            &mut wrong_window,
        ),
        Err(StateError::Mismatch { .. })
    ));
}
