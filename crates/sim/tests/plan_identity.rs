//! Byte-identity of the exact-estimator planning path.
//!
//! `Scenario::build_plan` was refactored from "collect the history,
//! aggregate it" to "stream the history through a `DemandEstimator`".
//! The exact estimator must reproduce the pre-refactor plans bit for
//! bit: the fingerprints below were captured from the batch
//! implementation (PR 2) and pin every float of the plan — expected
//! demands, rejected fractions, column shares and budgets.

use vne_sim::runner::default_apps;
use vne_sim::scenario::{Scenario, ScenarioConfig};
use vne_workload::caida::CaidaConfig;

/// FNV-1a over every structural and floating-point field of the plan.
fn plan_fingerprint(plan: &vne_olive::plan::Plan) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(&plan.objective.to_bits().to_le_bytes());
    for class_plan in plan.iter() {
        eat(&class_plan.class.app.index().to_le_bytes());
        eat(&u64::from(class_plan.class.ingress.0).to_le_bytes());
        eat(&class_plan.expected_demand.to_bits().to_le_bytes());
        eat(&class_plan.rejected_fraction.to_bits().to_le_bytes());
        for col in &class_plan.columns {
            eat(&col.share.to_bits().to_le_bytes());
            eat(&col.budget.to_bits().to_le_bytes());
            eat(&col.unit_cost.to_bits().to_le_bytes());
        }
    }
    h
}

fn scenario(seed: u64, mutate: impl FnOnce(&mut ScenarioConfig)) -> Scenario {
    let substrate = vne_topology::zoo::citta_studi().unwrap();
    let mut config = ScenarioConfig::small(1.0).with_seed(seed);
    mutate(&mut config);
    Scenario::new(substrate, default_apps(seed), config)
}

type ConfigMutation = fn(&mut ScenarioConfig);

#[test]
fn exact_plans_match_prerefactor_fingerprints() {
    let cases: [(u64, ConfigMutation, u64); 4] = [
        (11, |_| {}, 0x6ddb1278c8af18ef),
        (12, |c| c.plan_utilization = Some(0.6), 0xda707c05c9f4bf2d),
        // Re-pinned when the Fig. 14 ingress shift moved to a dedicated
        // derived RNG stream (it used to continue the trace RNG, which
        // forced the planning path to collect the whole history; the
        // dedicated stream makes `history_events` lazy). The shifted
        // ingress assignments are a different — equally random —
        // permutation, so the planned classes differ.
        (13, |c| c.shift_plan_ingress = true, 0xbc37f6fa37a94a60),
        (
            14,
            |c| {
                c.caida = Some(CaidaConfig {
                    total_rate: 100.0,
                    sources: 300,
                    ..CaidaConfig::default()
                })
            },
            0xbf5122186097e021,
        ),
    ];
    for (seed, mutate, expected) in cases {
        let sc = scenario(seed, mutate);
        let (plan, _) = sc.build_plan();
        let got = plan_fingerprint(&plan);
        assert_eq!(
            got, expected,
            "plan drifted for seed {seed}: 0x{got:016x} != 0x{expected:016x}"
        );
    }
}
