//! Property-based tests for the simulation engine and metrics.

use proptest::prelude::*;
use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::cost::RejectionPenalty;
use vne_model::ids::{AppId, NodeId, RequestId};
use vne_model::policy::PlacementPolicy;
use vne_model::request::Request;
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_olive::algorithm::OnlineAlgorithm;
use vne_olive::olive::Olive;
use vne_sim::engine::{no_inspection, run, RequestStatus};
use vne_sim::metrics::{balance_index, summarize};

fn world() -> (SubstrateNetwork, AppSet) {
    let mut s = SubstrateNetwork::new("w");
    let e0 = s.add_node("e0", Tier::Edge, 300.0, 50.0).unwrap();
    let e1 = s.add_node("e1", Tier::Edge, 300.0, 50.0).unwrap();
    let t = s.add_node("t", Tier::Transport, 900.0, 10.0).unwrap();
    let c = s.add_node("c", Tier::Core, 2700.0, 1.0).unwrap();
    s.add_link(e0, t, 1500.0, 1.0).unwrap();
    s.add_link(e1, t, 1500.0, 1.0).unwrap();
    s.add_link(t, c, 4500.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    apps.push(
        "a",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    apps.push(
        "b",
        AppShape::Tree,
        shapes::two_branch_tree(3, 6.0, 2.0).unwrap(),
    )
    .unwrap();
    (s, apps)
}

fn arb_trace() -> impl Strategy<Value = Vec<Request>> {
    proptest::collection::vec(
        (0u8..40, 1u8..10, any::<bool>(), 0.5f64..15.0, any::<bool>()),
        0..80,
    )
    .prop_map(|raw| {
        let mut requests: Vec<Request> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (t, dur, node, demand, app))| Request {
                id: RequestId(i as u64),
                arrival: u32::from(t),
                duration: u32::from(dur),
                ingress: NodeId(u32::from(node)),
                app: AppId(u32::from(app)),
                demand,
            })
            .collect();
        requests.sort_by_key(|r| (r.arrival, r.id));
        requests
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request gets exactly one outcome; accepted + denied =
    /// arrivals; the allocated series never exceeds the requested series.
    #[test]
    fn engine_conservation_laws(trace in arb_trace()) {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let result = run(&mut alg, &s, &trace, 50, no_inspection);
        prop_assert_eq!(result.requests.len(), trace.len());
        let mut ids: Vec<_> = result.requests.iter().map(|r| r.id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), trace.len());
        for slot in &result.slots {
            prop_assert!(slot.allocated_demand <= slot.requested_demand + 1e-9);
            prop_assert!(slot.allocated_demand >= -1e-9);
            prop_assert!(slot.resource_cost >= 0.0);
        }
    }

    /// The balance index is always within (0, 1].
    #[test]
    fn balance_index_bounds(trace in arb_trace()) {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let result = run(&mut alg, &s, &trace, 50, no_inspection);
        let idx = balance_index(&result, (0, 50));
        prop_assert!(idx > 0.0 && idx <= 1.0 + 1e-12, "index {idx}");
    }

    /// Window monotonicity: a larger window never sees fewer arrivals,
    /// and costs are non-negative and additive.
    #[test]
    fn summary_window_monotonicity(trace in arb_trace()) {
        let (s, apps) = world();
        let penalty = RejectionPenalty::uniform(&apps, 100.0);
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let result = run(&mut alg, &s, &trace, 50, no_inspection);
        let small = summarize(&result, &penalty, (10, 30));
        let large = summarize(&result, &penalty, (0, 50));
        prop_assert!(large.arrivals >= small.arrivals);
        prop_assert!(large.resource_cost >= small.resource_cost - 1e-9);
        prop_assert!(small.total_cost >= 0.0);
        prop_assert!(
            (small.total_cost - (small.resource_cost + small.rejection_cost)).abs() < 1e-9
        );
        prop_assert!(small.rejection_rate >= 0.0 && small.rejection_rate <= 1.0);
    }

    /// Departure slots free their capacity: after all requests expire,
    /// loads return to zero.
    #[test]
    fn loads_drain_after_departures(trace in arb_trace()) {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        // Horizon beyond every departure (max arrival 40 + max duration 10).
        let result = run(&mut alg, &s, &trace, 60, no_inspection);
        let _ = result;
        for n in s.node_ids() {
            prop_assert!(alg.loads().node_load(n).abs() < 1e-6);
        }
        for l in s.link_ids() {
            prop_assert!(alg.loads().link_load(l).abs() < 1e-6);
        }
    }

    /// Denied requests appear with a denied status and accepted ones
    /// stay accepted unless preempted (QUICKG never preempts).
    #[test]
    fn quickg_never_preempts(trace in arb_trace()) {
        let (s, apps) = world();
        let mut alg = Olive::quickg(s.clone(), apps, PlacementPolicy::default());
        let result = run(&mut alg, &s, &trace, 50, no_inspection);
        for r in &result.requests {
            prop_assert!(!matches!(r.status, RequestStatus::Preempted(_)));
        }
    }
}
