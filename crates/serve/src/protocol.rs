//! The line-delimited text protocol spoken on the daemon's TCP port.
//!
//! Every message is one UTF-8 line terminated by `\n` (a trailing `\r`
//! is tolerated). Clients send [`Command`]s, the daemon answers each
//! with exactly one [`Reply`] line, in order. The full grammar:
//!
//! ```text
//! SUBMIT <ingress> <app> <demand> <duration>   request an embedding
//! DEPART <id>                                  probe a request's status
//! ADVANCE [n]                                  close n logical slots (default 1)
//! STATS                                        serving counters + fingerprint
//! CHECKPOINT                                   force a durable checkpoint now
//! SHUTDOWN                                     graceful drain + final checkpoint
//! ```
//!
//! Replies are `OK ...` or `ERR <reason>`:
//!
//! ```text
//! OK SUBMITTED <id> <slot> <ACCEPT|REJECT>     decision at slot commit
//! OK SHED                                      dropped before the algorithm
//! OK DEPARTED <id> | OK ACTIVE <id>            DEPART probe answer
//! OK ADVANCED <slot>                           slots committed so far
//! OK STATS <k>=<v> ...                         see [`crate::actor::ServeStats`]
//! OK CHECKPOINT <slot>                         checkpoint written at slot
//! OK BYE                                       shutdown acknowledged
//! ```
//!
//! [`LineFramer`] turns the byte stream into frames, tolerating
//! arbitrary read fragmentation and refusing oversized frames before
//! they can buffer unboundedly. [`parse_command`] / [`Command::encode`]
//! and [`parse_reply`] / [`Reply::encode`] are exact inverses (pinned
//! by proptest round-trips), so the example client and the tests parse
//! real daemon output rather than pattern-matching strings.

use std::fmt;

use vne_model::ids::{AppId, NodeId, RequestId};
use vne_model::prelude::Decision;
use vne_model::request::Slot;

/// Hard cap on one protocol line (bytes, excluding the terminator). A
/// frame longer than this is a protocol error — the connection handler
/// reports it and drops the connection instead of buffering without
/// bound.
pub const MAX_FRAME: usize = 1024;

/// A client-to-daemon message.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Request an embedding: ingress node index, application index,
    /// demand size and duration in slots.
    Submit {
        /// Ingress substrate node `v(r)` (node index).
        ingress: NodeId,
        /// Application `a(r)` (index into the catalogue).
        app: AppId,
        /// Demand size `d(r) > 0`.
        demand: f64,
        /// Duration `T(r) ≥ 1` in slots.
        duration: Slot,
    },
    /// Release an admitted request early: if it still holds resources,
    /// its departure is scheduled for the next slot close, ahead of its
    /// natural duration. Idempotent — an unknown or already departed id
    /// is a no-op.
    Depart {
        /// The id returned by the `SUBMIT` reply.
        id: RequestId,
    },
    /// Close `slots` logical slots (decide everything pending).
    Advance {
        /// Number of slots to commit (≥ 1).
        slots: u32,
    },
    /// Ask for the serving counters.
    Stats,
    /// Force a durable checkpoint now.
    Checkpoint,
    /// Drain, take a final checkpoint and exit.
    Shutdown,
}

impl Command {
    /// The canonical wire form (no terminator).
    pub fn encode(&self) -> String {
        match self {
            Command::Submit {
                ingress,
                app,
                demand,
                duration,
            } => {
                format!(
                    "SUBMIT {} {} {} {}",
                    ingress.index(),
                    app.index(),
                    demand,
                    duration
                )
            }
            Command::Depart { id } => format!("DEPART {}", id.0),
            Command::Advance { slots } => format!("ADVANCE {slots}"),
            Command::Stats => "STATS".to_string(),
            Command::Checkpoint => "CHECKPOINT".to_string(),
            Command::Shutdown => "SHUTDOWN".to_string(),
        }
    }
}

/// A daemon-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The decision for a submitted request, made when its slot
    /// committed. `decision` is never [`Decision::Shed`] here — shed
    /// submissions answer with [`Reply::Shed`] and consume no id.
    Submitted {
        /// The id assigned to the request (use it for `DEPART`).
        id: RequestId,
        /// The slot the request was decided in.
        slot: Slot,
        /// Accept or reject.
        decision: Decision,
    },
    /// The submission was dropped by load shedding before the
    /// algorithm saw it.
    Shed,
    /// `DEPART` answer: was the request still holding resources?
    Departure {
        /// The released id.
        id: RequestId,
        /// `true` if the request was active — its early release is now
        /// scheduled for the next slot close. `false` means it was
        /// unknown or had already departed (nothing changed).
        active: bool,
    },
    /// `ADVANCE` acknowledged; `slot` slots are committed in total.
    Advanced {
        /// Total committed slots.
        slot: u64,
    },
    /// Serving counters, as `key=value` pairs (see
    /// [`crate::actor::ServeStats`]).
    Stats(Vec<(String, String)>),
    /// A forced checkpoint was written at `slot`.
    Checkpointed {
        /// The last committed slot the checkpoint captures.
        slot: Slot,
    },
    /// Shutdown acknowledged; the connection closes after this line.
    Bye,
    /// The command failed; the reason never contains a newline.
    Err(String),
}

impl Reply {
    /// The canonical wire form (no terminator).
    pub fn encode(&self) -> String {
        match self {
            Reply::Submitted { id, slot, decision } => {
                format!("OK SUBMITTED {} {} {}", id.0, slot, decision)
            }
            Reply::Shed => "OK SHED".to_string(),
            Reply::Departure { id, active } => {
                if *active {
                    format!("OK ACTIVE {}", id.0)
                } else {
                    format!("OK DEPARTED {}", id.0)
                }
            }
            Reply::Advanced { slot } => format!("OK ADVANCED {slot}"),
            Reply::Stats(pairs) => {
                let mut line = "OK STATS".to_string();
                for (k, v) in pairs {
                    line.push(' ');
                    line.push_str(k);
                    line.push('=');
                    line.push_str(v);
                }
                line
            }
            Reply::Checkpointed { slot } => format!("OK CHECKPOINT {slot}"),
            Reply::Bye => "OK BYE".to_string(),
            Reply::Err(reason) => format!("ERR {}", reason.replace('\n', " ")),
        }
    }
}

/// Why a line could not be parsed (or framed).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The line is not a well-formed command/reply; the message says
    /// what was expected.
    Malformed(String),
    /// A frame exceeded [`MAX_FRAME`] bytes before its terminator.
    Oversized {
        /// Bytes buffered when the limit tripped.
        length: usize,
    },
    /// The byte stream is not UTF-8.
    NotUtf8,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Malformed(what) => write!(f, "malformed line: {what}"),
            ProtocolError::Oversized { length } => write!(
                f,
                "frame exceeds {MAX_FRAME} bytes ({length} buffered without a terminator)"
            ),
            ProtocolError::NotUtf8 => f.write_str("frame is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn field<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    what: &str,
    line: &str,
) -> Result<&'a str, ProtocolError> {
    parts
        .next()
        .ok_or_else(|| ProtocolError::Malformed(format!("missing {what} in {line:?}")))
}

fn parse_num<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T, ProtocolError> {
    raw.parse()
        .map_err(|_| ProtocolError::Malformed(format!("bad {what} {raw:?}")))
}

fn reject_trailing<'a>(
    mut parts: impl Iterator<Item = &'a str>,
    line: &str,
) -> Result<(), ProtocolError> {
    match parts.next() {
        None => Ok(()),
        Some(extra) => Err(ProtocolError::Malformed(format!(
            "unexpected trailing {extra:?} in {line:?}"
        ))),
    }
}

/// Parses one client line into a [`Command`]. Keywords are
/// case-insensitive; fields are whitespace-separated.
///
/// # Errors
///
/// Returns [`ProtocolError::Malformed`] on an unknown keyword, a
/// missing/invalid field, or trailing garbage.
pub fn parse_command(line: &str) -> Result<Command, ProtocolError> {
    let line = line.trim();
    let mut parts = line.split_ascii_whitespace();
    let keyword = field(&mut parts, "command", line)?.to_ascii_uppercase();
    let command = match keyword.as_str() {
        "SUBMIT" => {
            let ingress: u32 = parse_num(field(&mut parts, "ingress", line)?, "ingress")?;
            let app: u32 = parse_num(field(&mut parts, "app", line)?, "app")?;
            let demand: f64 = parse_num(field(&mut parts, "demand", line)?, "demand")?;
            let duration: Slot = parse_num(field(&mut parts, "duration", line)?, "duration")?;
            if !demand.is_finite() || demand <= 0.0 {
                return Err(ProtocolError::Malformed(format!(
                    "demand must be positive and finite, got {demand}"
                )));
            }
            if duration == 0 {
                return Err(ProtocolError::Malformed(
                    "duration must be at least 1 slot".to_string(),
                ));
            }
            Command::Submit {
                ingress: NodeId(ingress),
                app: AppId(app),
                demand,
                duration,
            }
        }
        "DEPART" => Command::Depart {
            id: RequestId(parse_num(field(&mut parts, "id", line)?, "id")?),
        },
        "ADVANCE" => {
            let slots = match parts.next() {
                None => 1,
                Some(raw) => {
                    let n: u32 = parse_num(raw, "slot count")?;
                    if n == 0 {
                        return Err(ProtocolError::Malformed(
                            "ADVANCE needs at least 1 slot".to_string(),
                        ));
                    }
                    n
                }
            };
            Command::Advance { slots }
        }
        "STATS" => Command::Stats,
        "CHECKPOINT" => Command::Checkpoint,
        "SHUTDOWN" => Command::Shutdown,
        other => {
            return Err(ProtocolError::Malformed(format!(
                "unknown command {other:?}"
            )))
        }
    };
    reject_trailing(parts, line)?;
    Ok(command)
}

/// Parses one daemon line into a [`Reply`] — the client-side inverse of
/// [`Reply::encode`].
///
/// # Errors
///
/// Returns [`ProtocolError::Malformed`] if the line is not a valid
/// reply.
pub fn parse_reply(line: &str) -> Result<Reply, ProtocolError> {
    let line = line.trim();
    if let Some(reason) = line.strip_prefix("ERR ") {
        return Ok(Reply::Err(reason.to_string()));
    }
    if line == "ERR" {
        return Ok(Reply::Err(String::new()));
    }
    let body = line
        .strip_prefix("OK")
        .ok_or_else(|| ProtocolError::Malformed(format!("reply must start with OK/ERR: {line:?}")))?
        .trim_start();
    let mut parts = body.split_ascii_whitespace();
    let kind = field(&mut parts, "reply kind", line)?;
    let reply = match kind {
        "SUBMITTED" => {
            let id = RequestId(parse_num(field(&mut parts, "id", line)?, "id")?);
            let slot: Slot = parse_num(field(&mut parts, "slot", line)?, "slot")?;
            let decision: Decision = field(&mut parts, "decision", line)?
                .parse()
                .map_err(|e| ProtocolError::Malformed(format!("{e}")))?;
            if decision == Decision::Shed {
                return Err(ProtocolError::Malformed(
                    "shed submissions use the OK SHED reply".to_string(),
                ));
            }
            Reply::Submitted { id, slot, decision }
        }
        "SHED" => Reply::Shed,
        "ACTIVE" => Reply::Departure {
            id: RequestId(parse_num(field(&mut parts, "id", line)?, "id")?),
            active: true,
        },
        "DEPARTED" => Reply::Departure {
            id: RequestId(parse_num(field(&mut parts, "id", line)?, "id")?),
            active: false,
        },
        "ADVANCED" => Reply::Advanced {
            slot: parse_num(field(&mut parts, "slot", line)?, "slot")?,
        },
        "STATS" => {
            let mut pairs = Vec::new();
            for pair in parts.by_ref() {
                let (k, v) = pair.split_once('=').ok_or_else(|| {
                    ProtocolError::Malformed(format!("stats field {pair:?} is not key=value"))
                })?;
                pairs.push((k.to_string(), v.to_string()));
            }
            return Ok(Reply::Stats(pairs));
        }
        "CHECKPOINT" => Reply::Checkpointed {
            slot: parse_num(field(&mut parts, "slot", line)?, "slot")?,
        },
        "BYE" => Reply::Bye,
        other => {
            return Err(ProtocolError::Malformed(format!(
                "unknown reply kind {other:?}"
            )))
        }
    };
    reject_trailing(parts, line)?;
    Ok(reply)
}

/// Incremental line framer: feed it raw reads, pop complete frames.
///
/// Handles arbitrary fragmentation (a frame may arrive over many reads,
/// or many frames in one read) and enforces [`MAX_FRAME`]: once the
/// buffered prefix exceeds the cap without a `\n`, every pop reports
/// [`ProtocolError::Oversized`] until the connection is dropped.
#[derive(Debug, Default)]
pub struct LineFramer {
    buffer: Vec<u8>,
    poisoned: bool,
}

impl LineFramer {
    /// An empty framer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one read's worth of bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        if !self.poisoned {
            self.buffer.extend_from_slice(bytes);
        }
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Oversized`] when the unterminated prefix
    /// exceeds [`MAX_FRAME`]; [`ProtocolError::NotUtf8`] when a frame
    /// is not UTF-8. Both poison the framer (the protocol cannot
    /// resynchronize mid-stream).
    pub fn pop(&mut self) -> Result<Option<String>, ProtocolError> {
        if self.poisoned {
            return Err(ProtocolError::Oversized {
                length: self.buffer.len(),
            });
        }
        match self.buffer.iter().position(|&b| b == b'\n') {
            Some(end) => {
                let rest = self.buffer.split_off(end + 1);
                let mut frame = std::mem::replace(&mut self.buffer, rest);
                frame.pop(); // the \n
                if frame.last() == Some(&b'\r') {
                    frame.pop();
                }
                if frame.len() > MAX_FRAME {
                    self.poisoned = true;
                    return Err(ProtocolError::Oversized {
                        length: frame.len(),
                    });
                }
                match String::from_utf8(frame) {
                    Ok(line) => Ok(Some(line)),
                    Err(_) => {
                        self.poisoned = true;
                        Err(ProtocolError::NotUtf8)
                    }
                }
            }
            None if self.buffer.len() > MAX_FRAME => {
                self.poisoned = true;
                Err(ProtocolError::Oversized {
                    length: self.buffer.len(),
                })
            }
            None => Ok(None),
        }
    }
}
