//! The embedding-as-a-service daemon.
//!
//! Builds a scenario world (topology, paper application mix, algorithm
//! by name), spawns the engine actor, and serves the line protocol on a
//! TCP socket until a `SHUTDOWN` command drains it. See the README's
//! "Serving" section for the protocol reference.
//!
//! ```text
//! vne-serve [--addr 127.0.0.1:7700] [--alg FULLG]
//!           [--topology citta-studi|iris] [--utilization 1.0] [--seed 7]
//!           [--tick-ms N | --manual]
//!           [--watermark N]
//!           [--checkpoint PATH] [--checkpoint-every N]
//!           [--resume-from PATH]
//! ```
//!
//! `--manual` (the default) closes slots only on `ADVANCE` commands —
//! fully deterministic, what the tests script. `--tick-ms N` closes a
//! slot every `N` ms of wall-clock time instead. With `--checkpoint`,
//! state is written crash-safely every `--checkpoint-every` slots (and
//! once more on shutdown); `--resume-from` restores such a file
//! byte-identically before serving.

use std::process::ExitCode;
use std::time::Duration;

use vne_serve::actor::{CheckpointConfig, ServeConfig, TickMode};
use vne_serve::server::Server;
use vne_sim::persist::read_checkpoint_file;
use vne_sim::registry::{AlgorithmSpec, BuildContext};
use vne_sim::scenario::{Scenario, ScenarioConfig};
use vne_workload::appgen::{paper_mix, AppGenConfig};
use vne_workload::rng::SeededRng;

struct Options {
    addr: String,
    alg: String,
    topology: String,
    utilization: f64,
    seed: u64,
    tick: TickMode,
    watermark: usize,
    checkpoint: Option<std::path::PathBuf>,
    checkpoint_every: u32,
    resume_from: Option<std::path::PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7700".to_string(),
            alg: "FULLG".to_string(),
            topology: "citta-studi".to_string(),
            utilization: 1.0,
            seed: 7,
            tick: TickMode::Manual,
            watermark: 1024,
            checkpoint: None,
            checkpoint_every: 8,
            resume_from: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("{what} needs a value"));
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--alg" => opts.alg = value("--alg")?,
            "--topology" => opts.topology = value("--topology")?,
            "--utilization" => {
                opts.utilization = value("--utilization")?
                    .parse()
                    .map_err(|e| format!("bad --utilization: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--tick-ms" => {
                let ms: u64 = value("--tick-ms")?
                    .parse()
                    .map_err(|e| format!("bad --tick-ms: {e}"))?;
                if ms == 0 {
                    return Err("--tick-ms must be at least 1".to_string());
                }
                opts.tick = TickMode::Interval(Duration::from_millis(ms));
            }
            "--manual" => opts.tick = TickMode::Manual,
            "--watermark" => {
                opts.watermark = value("--watermark")?
                    .parse()
                    .map_err(|e| format!("bad --watermark: {e}"))?;
            }
            "--checkpoint" => opts.checkpoint = Some(value("--checkpoint")?.into()),
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                if opts.checkpoint_every == 0 {
                    return Err("--checkpoint-every must be at least 1".to_string());
                }
            }
            "--resume-from" => opts.resume_from = Some(value("--resume-from")?.into()),
            "--help" | "-h" => {
                println!(
                    "vne-serve: embedding-as-a-service daemon\n\
                     flags: --addr --alg --topology --utilization --seed \
                     --tick-ms|--manual --watermark --checkpoint \
                     --checkpoint-every --resume-from"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let substrate = match opts.topology.as_str() {
        "citta-studi" | "citta_studi" => {
            vne_topology::zoo::citta_studi().map_err(|e| e.to_string())?
        }
        "iris" => vne_topology::zoo::iris().map_err(|e| e.to_string())?,
        other => return Err(format!("unknown topology {other:?} (citta-studi or iris)")),
    };
    let mut rng = SeededRng::new(opts.seed);
    let apps = paper_mix(&AppGenConfig::default(), &mut rng);
    let scenario = Scenario::new(
        substrate,
        apps,
        ScenarioConfig::small(opts.utilization).with_seed(opts.seed),
    );
    let spec = AlgorithmSpec::new(&opts.alg);
    let built = scenario
        .registry()
        .build(&spec, &BuildContext::new(&scenario))
        .map_err(|e| e.to_string())?;
    let penalty = scenario.penalty();
    let window = scenario.config.measure_window;
    let app_count = scenario.apps.len();

    let resume = match &opts.resume_from {
        Some(path) => Some(read_checkpoint_file(path).map_err(|e| e.to_string())?),
        None => None,
    };
    let config = ServeConfig {
        tick: opts.tick,
        watermark: opts.watermark,
        checkpoint: opts.checkpoint.as_ref().map(|path| CheckpointConfig {
            path: path.clone(),
            every: opts.checkpoint_every,
        }),
    };
    let runtime = vne_serve::actor::spawn(
        scenario.substrate.clone(),
        built.algorithm,
        penalty,
        window,
        app_count,
        config,
        resume.as_ref(),
    )
    .map_err(|e| format!("resume failed: {e}"))?;

    let server = Server::bind(opts.addr.as_str(), runtime.handle()).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // Parsed by tests and supervisors — keep this line first and stable.
    println!(
        "vne-serve listening on {addr} alg={spec} topology={}",
        opts.topology
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.serve().map_err(|e| e.to_string())?;

    let report = runtime.join().map_err(|e| e.to_string())?;
    println!(
        "vne-serve drained: slots={} submitted={} accepted={} rejected={} shed={} \
         checkpoints={} fingerprint={:016x}",
        report.stats.slots_run,
        report.stats.submitted,
        report.stats.accepted,
        report.stats.rejected,
        report.stats.shed,
        report.stats.checkpoints,
        report.stats.fingerprint,
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vne-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
