#![warn(missing_docs)]
//! # vne-serve — embedding-as-a-service on the streaming engine
//!
//! The paper's setting is *online*: requests arrive one at a time and
//! must be admitted at decision time. This crate deploys the
//! reproduction in exactly that shape — a resident daemon answering
//! placement requests under live load:
//!
//! * [`actor`] — the single-writer engine actor: one thread owns the
//!   [`vne_sim::engine::EngineState`] and the algorithm, fed by an mpsc
//!   command queue through a cloneable [`actor::ServeHandle`].
//!   Submissions batch into slots on a configurable tick
//!   ([`actor::TickMode`]), decisions come back on oneshot replies,
//!   the pending queue sheds beyond its high-watermark, and a
//!   [`vne_sim::observe::Checkpointer`] makes the whole serving state
//!   durable on a cadence (crash-safe via [`vne_sim::persist`]);
//! * [`protocol`] — the line-delimited TCP text protocol
//!   (`SUBMIT`/`DEPART`/`ADVANCE`/`STATS`/`CHECKPOINT`/`SHUTDOWN`)
//!   with an incremental frame parser and exact encode/parse inverses;
//! * [`server`] — the TCP front end: per-connection handler threads,
//!   graceful drain on `SHUTDOWN`.
//!
//! The daemon binary (`vne-serve`) wires these to a scenario world
//! (topology, application mix, algorithm registry); `--resume-from`
//! restores a checkpoint byte-identically before serving. The `STATS`
//! fingerprint is the same [`vne_sim::metrics::Summary::fingerprint`]
//! batch runs report, so a served request sequence can be replayed
//! through `run_stream` and compared exactly — the daemon is an online
//! *view* of the engine, not a fork of it.

pub mod actor;
pub mod protocol;
pub mod server;

pub use actor::{
    spawn, ServeConfig, ServeError, ServeHandle, ServeMeta, ServeReport, ServeRuntime, ServeStats,
    SubmitReply, SubmitSpec, TickMode,
};
pub use protocol::{parse_command, parse_reply, Command, LineFramer, ProtocolError, Reply};
pub use server::Server;
