//! The TCP front end: line protocol over per-connection threads.
//!
//! [`Server::bind`] owns the listening socket; [`Server::serve`] runs
//! the accept loop, spawning one handler thread per connection. Each
//! handler frames the byte stream with
//! [`crate::protocol::LineFramer`], parses [`crate::protocol::Command`]
//! lines and calls the engine actor through its [`ServeHandle`] —
//! decisions block only that connection's thread, never the engine.
//!
//! ## Shutdown
//!
//! A `SHUTDOWN` command (from any connection) is the graceful exit
//! path: the handler first asks the actor to shut down — the actor
//! flushes pending submissions into one final slot (so every in-flight
//! `SUBMIT` gets its decision), takes a final checkpoint and stops —
//! then raises the shared shutdown flag and wakes the accept loop.
//! Handler threads notice the flag within their read-timeout tick,
//! close their connections, and [`Server::serve`] joins them all before
//! returning. The workspace forbids `unsafe`, so there is no signal
//! handler: supervisors should send `SHUTDOWN` over the control socket
//! instead of `SIGTERM` (a `SIGKILL`-style crash is what checkpoints
//! are for — see the kill-and-recover test).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::actor::{ServeError, ServeHandle, SubmitReply, SubmitSpec};
use crate::protocol::{parse_command, Command, LineFramer, ProtocolError, Reply};

/// How often idle handler threads wake to check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(200);

/// The daemon's TCP front end.
pub struct Server {
    listener: TcpListener,
    handle: ServeHandle,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listening socket (e.g. `127.0.0.1:0` for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, handle: ServeHandle) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            handle,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the actual port when bound to port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until a `SHUTDOWN` command stops it, then
    /// joins every connection handler. Returns once the daemon is fully
    /// drained (the engine actor has already stopped by then).
    ///
    /// # Errors
    ///
    /// Propagates a failure to query the bound address; individual
    /// accept errors are tolerated.
    pub fn serve(self) -> io::Result<()> {
        let local = self.listener.local_addr()?;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            handlers.retain(|h| !h.is_finished());
            let handle = self.handle.clone();
            let shutdown = Arc::clone(&self.shutdown);
            // Thread exhaustion sheds this one connection; the daemon
            // keeps accepting.
            match std::thread::Builder::new()
                .name("vne-serve-conn".into())
                .spawn(move || handle_connection(stream, &handle, &shutdown, local))
            {
                Ok(h) => handlers.push(h),
                Err(e) => eprintln!("vne-serve: dropping connection, cannot spawn handler: {e}"),
            }
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Serves one connection until EOF, a fatal protocol error, or
/// shutdown.
fn handle_connection(
    mut stream: TcpStream,
    handle: &ServeHandle,
    shutdown: &AtomicBool,
    local: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_nodelay(true);
    let mut framer = LineFramer::new();
    let mut buf = [0u8; 4096];
    loop {
        // Serve every complete frame already buffered.
        loop {
            match framer.pop() {
                Ok(Some(line)) => {
                    let (reply, quit) = respond(&line, handle, shutdown, local);
                    if write_line(&mut stream, &reply).is_err() || quit {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Oversized / non-UTF-8: the stream cannot be
                    // resynchronized — answer and drop the connection.
                    let _ = write_line(&mut stream, &Reply::Err(e.to_string()));
                    return;
                }
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => framer.push(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return,
        }
    }
}

fn write_line(stream: &mut TcpStream, reply: &Reply) -> io::Result<()> {
    let mut line = reply.encode();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Executes one command line; returns the reply and whether the
/// connection should close afterwards.
fn respond(
    line: &str,
    handle: &ServeHandle,
    shutdown: &AtomicBool,
    local: SocketAddr,
) -> (Reply, bool) {
    let command = match parse_command(line) {
        Ok(command) => command,
        Err(ProtocolError::Malformed(what)) => return (Reply::Err(what), false),
        Err(other) => return (Reply::Err(other.to_string()), true),
    };
    let closed = |_: ServeError| Reply::Err("daemon is shutting down".to_string());
    match command {
        Command::Submit {
            ingress,
            app,
            demand,
            duration,
        } => {
            let spec = SubmitSpec {
                ingress,
                app,
                demand,
                duration,
            };
            let reply = match handle.submit(spec) {
                Ok(SubmitReply::Decided { id, slot, decision }) => {
                    Reply::Submitted { id, slot, decision }
                }
                Ok(SubmitReply::Shed) => Reply::Shed,
                Ok(SubmitReply::Invalid(reason)) => Reply::Err(reason),
                Err(e) => closed(e),
            };
            (reply, false)
        }
        Command::Depart { id } => {
            let reply = match handle.depart(id) {
                Ok(active) => Reply::Departure { id, active },
                Err(e) => closed(e),
            };
            (reply, false)
        }
        Command::Advance { slots } => {
            let reply = match handle.advance(slots) {
                Ok(slot) => Reply::Advanced { slot },
                Err(e) => closed(e),
            };
            (reply, false)
        }
        Command::Stats => {
            let reply = match handle.stats() {
                Ok(stats) => Reply::Stats(stats.pairs()),
                Err(e) => closed(e),
            };
            (reply, false)
        }
        Command::Checkpoint => {
            let reply = match handle.checkpoint() {
                Ok(Ok(slot)) => Reply::Checkpointed { slot },
                Ok(Err(reason)) => Reply::Err(reason),
                Err(e) => closed(e),
            };
            (reply, false)
        }
        Command::Shutdown => {
            // Drain the actor first (pending submissions get their
            // decisions, the final checkpoint lands), then stop the
            // accept loop and wake it with a throwaway connection.
            let _ = handle.shutdown();
            shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(local);
            (Reply::Bye, true)
        }
    }
}
