//! The single-writer engine actor.
//!
//! One dedicated thread owns the streaming engine — an
//! [`EngineState`], the `Box<dyn OnlineAlgorithm>` and the observer
//! stack — and is the *only* writer of that state, exactly like the
//! serial `run_stream` loop it replaces. Everything else talks to it
//! through a cloneable [`ServeHandle`] over an mpsc command queue;
//! every command carries a bounded oneshot (`sync_channel(1)`) for the
//! reply, so callers block only for their own answer and the actor
//! never blocks sending one.
//!
//! ## Slots
//!
//! Submissions do not reach the algorithm one by one: they buffer in a
//! pending queue and are decided together when the current *slot*
//! closes — the serving analogue of the engine's `SlotEvents` batches.
//! A slot closes on the configured [`TickMode`]: every wall-clock
//! interval ([`TickMode::Interval`]), or only on an explicit `ADVANCE`
//! command ([`TickMode::Manual`] — what the deterministic tests and the
//! resume battery use). Request ids are assigned at slot close, in
//! submission order, so the committed engine state never references an
//! id that a crash could lose.
//!
//! ## Durability
//!
//! The actor's observer stack is
//! `Checkpointer<Tee<WindowSummary, ServeMeta>>`: the summary computes
//! the measurement-window [`Summary`] incrementally, [`ServeMeta`]
//! carries the serving counters, and the [`Checkpointer`] captures
//! engine + algorithm + both observers every `checkpoint.every` slots,
//! writing each capture crash-safely via
//! [`vne_sim::persist::write_checkpoint_file`]. Restart with the saved
//! file restores byte-identically ([`vne_sim::engine::restore_engine`]
//! semantics — the same guarantee the checkpoint/resume battery pins
//! for batch runs).
//!
//! ## Load shedding
//!
//! The pending queue is bounded by [`ServeConfig::watermark`]: a
//! submission arriving while the queue is full is answered
//! [`SubmitReply::Shed`] immediately, never reaches the algorithm,
//! consumes no request id, and is tallied in [`ServeStats::shed`].

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::time::{Duration, Instant};

use vne_model::cost::RejectionPenalty;
use vne_model::ids::{AppId, NodeId, RequestId};
use vne_model::prelude::Decision;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::state::{Snapshot, StateBlob, StateError, StateReader, StateWriter};
use vne_model::substrate::SubstrateNetwork;
use vne_olive::algorithm::OnlineAlgorithm;
use vne_sim::engine::{
    restore_engine, EngineCheckpoint, EngineState, ReembedAll, RequestOutcome, RequestStatus,
    SimObserver,
};
use vne_sim::metrics::Summary;
use vne_sim::observe::{Checkpointer, Tee, WindowSummary};
use vne_sim::persist;

/// When the actor closes a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickMode {
    /// Only an `ADVANCE` command closes slots (deterministic, what the
    /// tests script).
    Manual,
    /// A slot closes every interval of wall-clock time; quiet intervals
    /// commit empty slots, exactly like a live trace's quiet slots.
    Interval(Duration),
}

/// Where and how often the actor checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// The checkpoint file (atomically replaced on every capture).
    pub path: PathBuf,
    /// Capture every `every`-th slot (the [`Checkpointer::every`]
    /// cadence).
    pub every: Slot,
}

/// Actor configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Slot cadence.
    pub tick: TickMode,
    /// High-watermark of the pending submission queue; beyond it,
    /// submissions are shed.
    pub watermark: usize,
    /// Durable checkpointing, or `None` to serve from memory only.
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            tick: TickMode::Manual,
            watermark: 1024,
            checkpoint: None,
        }
    }
}

/// One embedding submission, before an id is assigned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmitSpec {
    /// Ingress substrate node `v(r)`.
    pub ingress: NodeId,
    /// Requested application `a(r)`.
    pub app: AppId,
    /// Demand size `d(r) > 0`.
    pub demand: f64,
    /// Duration `T(r) ≥ 1` in slots.
    pub duration: Slot,
}

/// The actor's answer to one submission.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitReply {
    /// The request was offered to the algorithm when its slot closed.
    Decided {
        /// The assigned request id.
        id: RequestId,
        /// The slot it was decided in.
        slot: Slot,
        /// [`Decision::Accept`] or [`Decision::Reject`].
        decision: Decision,
    },
    /// Load shedding dropped the submission before the algorithm saw
    /// it; no id was consumed.
    Shed,
    /// The submission referenced an unknown ingress node or
    /// application.
    Invalid(String),
}

impl SubmitReply {
    /// The decision this reply carries ([`Decision::Shed`] for a shed
    /// submission, `None` for an invalid one).
    pub fn decision(&self) -> Option<Decision> {
        match self {
            SubmitReply::Decided { decision, .. } => Some(*decision),
            SubmitReply::Shed => Some(Decision::Shed),
            SubmitReply::Invalid(_) => None,
        }
    }
}

/// Serving counters, surfaced through `STATS`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Slots committed so far.
    pub slots_run: u64,
    /// Requests currently holding resources.
    pub active: usize,
    /// Submissions waiting for the current slot to close.
    pub pending: usize,
    /// Submissions admitted into the pending queue (not shed).
    pub submitted: u64,
    /// Decisions that accepted.
    pub accepted: u64,
    /// Decisions that rejected.
    pub rejected: u64,
    /// Accepted requests later preempted.
    pub preempted: u64,
    /// Submissions dropped by load shedding.
    pub shed: u64,
    /// Checkpoints written (cadence + forced).
    pub checkpoints: u64,
    /// [`Summary::fingerprint`] of the measurement-window summary so
    /// far — the determinism handle the parity tests compare against a
    /// `run_stream` replay.
    pub fingerprint: u64,
}

impl ServeStats {
    /// The `key=value` pairs of the `OK STATS` reply, in a fixed order.
    pub fn pairs(&self) -> Vec<(String, String)> {
        vec![
            ("slots".into(), self.slots_run.to_string()),
            ("active".into(), self.active.to_string()),
            ("pending".into(), self.pending.to_string()),
            ("submitted".into(), self.submitted.to_string()),
            ("accepted".into(), self.accepted.to_string()),
            ("rejected".into(), self.rejected.to_string()),
            ("preempted".into(), self.preempted.to_string()),
            ("shed".into(), self.shed.to_string()),
            ("checkpoints".into(), self.checkpoints.to_string()),
            ("fingerprint".into(), format!("{:016x}", self.fingerprint)),
        ]
    }
}

/// The serving counters that must survive a restart, riding in every
/// checkpoint as the second half of the actor's observer tee.
///
/// As a [`SimObserver`] it tallies decided outcomes; the shed and
/// submitted counters are folded in by the actor directly (shedding
/// happens before the engine ever sees the submission, so no observer
/// hook fires for it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeMeta {
    /// Submissions admitted into the pending queue.
    pub submitted: u64,
    /// Accepted decisions.
    pub accepted: u64,
    /// Rejected decisions.
    pub rejected: u64,
    /// Preemptions of previously accepted requests.
    pub preempted: u64,
    /// Submissions dropped by load shedding.
    pub shed: u64,
}

impl SimObserver for ServeMeta {
    fn on_arrival(&mut self, outcome: &RequestOutcome) {
        match outcome.status {
            RequestStatus::Accepted => self.accepted += 1,
            _ => self.rejected += 1,
        }
    }

    fn on_preemption(&mut self, _outcome: &RequestOutcome) {
        self.preempted += 1;
    }
}

impl Snapshot for ServeMeta {
    fn snapshot(&self) -> StateBlob {
        let mut w = StateWriter::new();
        w.write_u64(self.submitted);
        w.write_u64(self.accepted);
        w.write_u64(self.rejected);
        w.write_u64(self.preempted);
        w.write_u64(self.shed);
        w.finish()
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StateError> {
        let mut r = StateReader::new(blob);
        self.submitted = r.read_u64()?;
        self.accepted = r.read_u64()?;
        self.rejected = r.read_u64()?;
        self.preempted = r.read_u64()?;
        self.shed = r.read_u64()?;
        r.finish()
    }
}

/// Why a [`ServeHandle`] call (or the actor lifecycle) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The actor has exited (shutdown or panic); no more commands are
    /// served.
    Closed,
    /// The OS refused to spawn the actor thread.
    Spawn(String),
    /// The actor thread panicked; its final report is lost.
    Panicked,
    /// Restoring from the resume checkpoint failed.
    Restore(StateError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => f.write_str("engine actor is not running"),
            ServeError::Spawn(e) => write!(f, "cannot spawn engine actor thread: {e}"),
            ServeError::Panicked => f.write_str("engine actor panicked; report lost"),
            ServeError::Restore(e) => write!(f, "resume checkpoint rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StateError> for ServeError {
    fn from(e: StateError) -> Self {
        ServeError::Restore(e)
    }
}

enum Msg {
    Submit(SubmitSpec, SyncSender<SubmitReply>),
    Depart(RequestId, SyncSender<bool>),
    Advance(u32, SyncSender<u64>),
    Stats(SyncSender<ServeStats>),
    Checkpoint(SyncSender<Result<Slot, String>>),
    Shutdown(SyncSender<()>),
}

/// A cloneable client of the engine actor. All methods block until the
/// actor answers; [`ServeHandle::submit`] additionally blocks until the
/// submission's slot closes (the decision exists only then).
#[derive(Clone)]
pub struct ServeHandle {
    tx: Sender<Msg>,
}

impl ServeHandle {
    fn call<T>(&self, make: impl FnOnce(SyncSender<T>) -> Msg) -> Result<T, ServeError> {
        let (tx, rx) = sync_channel(1);
        self.tx.send(make(tx)).map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Submits a request; blocks until its slot closes and returns the
    /// decision (or [`SubmitReply::Shed`] immediately under shedding).
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the actor exited before answering.
    pub fn submit(&self, spec: SubmitSpec) -> Result<SubmitReply, ServeError> {
        self.call(|tx| Msg::Submit(spec, tx))
    }

    /// Requests early release of `id`: if it still holds resources, its
    /// departure is scheduled for the next slot close (ahead of its
    /// natural duration) and `true` is returned; an unknown or already
    /// departed id returns `false` and changes nothing.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the actor exited before answering.
    pub fn depart(&self, id: RequestId) -> Result<bool, ServeError> {
        self.call(|tx| Msg::Depart(id, tx))
    }

    /// Closes `slots` logical slots now; returns the total committed
    /// slot count.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the actor exited before answering.
    pub fn advance(&self, slots: u32) -> Result<u64, ServeError> {
        self.call(|tx| Msg::Advance(slots, tx))
    }

    /// The serving counters.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the actor exited before answering.
    pub fn stats(&self) -> Result<ServeStats, ServeError> {
        self.call(Msg::Stats)
    }

    /// Forces a durable checkpoint now; returns the slot it captures.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the actor exited; `Ok(Err(reason))`
    /// when no checkpoint path is configured or no slot has committed
    /// yet.
    pub fn checkpoint(&self) -> Result<Result<Slot, String>, ServeError> {
        self.call(Msg::Checkpoint)
    }

    /// Graceful shutdown: flushes pending submissions into one final
    /// slot, takes a final checkpoint (when configured) and stops the
    /// actor. Idempotent from the caller's view — once the actor is
    /// gone, [`ServeError::Closed`] is returned.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the actor already exited.
    pub fn shutdown(&self) -> Result<(), ServeError> {
        self.call(Msg::Shutdown)
    }
}

/// What the actor thread returns when it stops.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Final serving counters.
    pub stats: ServeStats,
    /// The measurement-window summary of everything served.
    pub summary: Summary,
}

/// A running engine actor: the handle plus the thread to join.
pub struct ServeRuntime {
    handle: ServeHandle,
    thread: std::thread::JoinHandle<ServeReport>,
}

impl ServeRuntime {
    /// A new cloneable handle to the actor.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Waits for the actor to stop (after [`ServeHandle::shutdown`], or
    /// after every handle is dropped) and returns its final report.
    ///
    /// # Errors
    ///
    /// [`ServeError::Panicked`] when the actor thread panicked instead
    /// of draining; the final report is lost but the caller keeps
    /// running.
    pub fn join(self) -> Result<ServeReport, ServeError> {
        drop(self.handle);
        self.thread.join().map_err(|_| ServeError::Panicked)
    }
}

type ServeObserver = Checkpointer<Tee<WindowSummary, ServeMeta>>;

struct Actor {
    substrate: SubstrateNetwork,
    algorithm: Box<dyn OnlineAlgorithm>,
    state: EngineState,
    observer: ServeObserver,
    pending: Vec<(SubmitSpec, SyncSender<SubmitReply>)>,
    watermark: usize,
    checkpoint: Option<CheckpointConfig>,
    app_count: usize,
    next_id: u64,
    forced_checkpoints: u64,
    online_base: f64,
    started: Instant,
}

/// Spawns the engine actor thread.
///
/// `algorithm` must be freshly built for `substrate`; `penalty` and
/// `window` configure the incremental [`WindowSummary`] (use the
/// scenario's `penalty()` and `config.measure_window` to stay
/// comparable with batch runs). `app_count` bounds the application ids
/// submissions may reference. With `resume`, the engine, algorithm and
/// observers are restored from the checkpoint first — the daemon's
/// `--resume-from`.
///
/// # Errors
///
/// [`ServeError::Restore`] when `resume` is given and the checkpoint
/// does not match the algorithm or fails to restore;
/// [`ServeError::Spawn`] when the OS refuses the actor thread.
pub fn spawn(
    substrate: SubstrateNetwork,
    mut algorithm: Box<dyn OnlineAlgorithm>,
    penalty: RejectionPenalty,
    window: (Slot, Slot),
    app_count: usize,
    config: ServeConfig,
    resume: Option<&EngineCheckpoint>,
) -> Result<ServeRuntime, ServeError> {
    let mut tee = Tee(WindowSummary::new(window, penalty), ServeMeta::default());
    let state = match resume {
        Some(checkpoint) => restore_engine(checkpoint, &mut *algorithm, &substrate, &mut tee)?,
        None => EngineState::fresh(),
    };
    let every = config.checkpoint.as_ref().map_or(Slot::MAX, |c| c.every);
    let mut observer = Checkpointer::every(every, tee);
    if let Some(ckpt) = &config.checkpoint {
        let path = ckpt.path.clone();
        observer = observer.with_sink(move |cp| {
            if let Err(e) = persist::write_checkpoint_file(&path, cp) {
                eprintln!("vne-serve: checkpoint write failed: {e}");
            }
        });
    }
    let (tx, rx) = std::sync::mpsc::channel();
    let mut actor = Actor {
        substrate,
        algorithm,
        state,
        observer,
        pending: Vec::new(),
        watermark: config.watermark.max(1),
        checkpoint: config.checkpoint,
        app_count,
        next_id: 0,
        forced_checkpoints: 0,
        online_base: 0.0,
        // audit:allow(D2, "serve tick seam: actor birth time feeds set_online_secs")
        started: Instant::now(),
    };
    // A restored engine already spent online time; keep accumulating.
    actor.online_base = actor.state.stats().online_secs;
    // Ids resume from the committed arrival count: ids are assigned at
    // slot close only, so the checkpointed engine never references an
    // id beyond this.
    actor.next_id = actor.state.stats().arrivals as u64;
    let tick = config.tick;
    let thread = std::thread::Builder::new()
        .name("vne-serve-engine".into())
        .spawn(move || actor.run(rx, tick))
        .map_err(|e| ServeError::Spawn(e.to_string()))?;
    Ok(ServeRuntime {
        handle: ServeHandle { tx },
        thread,
    })
}

impl Actor {
    fn run(mut self, rx: Receiver<Msg>, tick: TickMode) -> ServeReport {
        match tick {
            TickMode::Manual => {
                while let Ok(msg) = rx.recv() {
                    if self.handle_msg(msg) {
                        break;
                    }
                }
            }
            TickMode::Interval(period) => {
                // audit:allow(D2, "serve tick seam: interval ticking is wall-clock by design")
                let mut next_tick = Instant::now() + period;
                loop {
                    // audit:allow(D2, "serve tick seam: interval ticking is wall-clock by design")
                    let now = Instant::now();
                    if now >= next_tick {
                        self.close_slot();
                        next_tick += period;
                        // A long stall must not fire a burst of
                        // catch-up slots.
                        if next_tick <= now {
                            next_tick = now + period;
                        }
                        continue;
                    }
                    match rx.recv_timeout(next_tick - now) {
                        Ok(msg) => {
                            if self.handle_msg(msg) {
                                break;
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
        }
        let stats = self.stats();
        let summary = self.observer.inner().0.finish(&self.state.stats());
        ServeReport { stats, summary }
    }

    /// Handles one command; `true` means shutdown.
    fn handle_msg(&mut self, msg: Msg) -> bool {
        match msg {
            Msg::Submit(spec, reply) => {
                if let Err(reason) = self.validate(&spec) {
                    let _ = reply.send(SubmitReply::Invalid(reason));
                } else if self.pending.len() >= self.watermark {
                    self.observer.inner_mut().1.shed += 1;
                    let _ = reply.send(SubmitReply::Shed);
                } else {
                    self.observer.inner_mut().1.submitted += 1;
                    self.pending.push((spec, reply));
                }
            }
            Msg::Depart(id, reply) => {
                let _ = reply.send(self.state.release_early(id));
            }
            Msg::Advance(slots, reply) => {
                for _ in 0..slots {
                    self.close_slot();
                }
                let _ = reply.send(self.state.next_slot());
            }
            Msg::Stats(reply) => {
                let _ = reply.send(self.stats());
            }
            Msg::Checkpoint(reply) => {
                let _ = reply.send(self.force_checkpoint());
            }
            Msg::Shutdown(reply) => {
                // Drain: pending submissions get their decisions from
                // one final slot, then the state becomes durable.
                if !self.pending.is_empty() {
                    self.close_slot();
                }
                if self.checkpoint.is_some() && self.state.next_slot() > 0 {
                    if let Err(reason) = self.force_checkpoint() {
                        eprintln!("vne-serve: final checkpoint failed: {reason}");
                    }
                }
                let _ = reply.send(());
                return true;
            }
        }
        false
    }

    fn validate(&self, spec: &SubmitSpec) -> Result<(), String> {
        if spec.ingress.index() >= self.substrate.node_count() {
            return Err(format!(
                "unknown ingress node {} (substrate has {} nodes)",
                spec.ingress.index(),
                self.substrate.node_count()
            ));
        }
        if spec.app.index() >= self.app_count {
            return Err(format!(
                "unknown application {} (catalogue has {})",
                spec.app.index(),
                self.app_count
            ));
        }
        if !spec.demand.is_finite() || spec.demand <= 0.0 {
            return Err(format!(
                "demand must be positive and finite, got {}",
                spec.demand
            ));
        }
        if spec.duration == 0 {
            return Err("duration must be at least 1 slot".to_string());
        }
        Ok(())
    }

    /// Closes the current slot: assigns ids in submission order, steps
    /// the engine once, routes each decision to its waiting submitter,
    /// and commits (which fires the checkpoint cadence).
    fn close_slot(&mut self) {
        let slot64 = self.state.next_slot();
        assert!(
            slot64 < u64::from(Slot::MAX),
            "slot horizon exhausted at {slot64}"
        );
        let slot = slot64 as Slot;
        let mut arrivals = Vec::with_capacity(self.pending.len());
        let mut waiters: HashMap<RequestId, SyncSender<SubmitReply>> =
            HashMap::with_capacity(self.pending.len());
        for (spec, reply) in self.pending.drain(..) {
            let id = RequestId(self.next_id);
            self.next_id += 1;
            arrivals.push(Request {
                id,
                arrival: slot,
                duration: spec.duration,
                ingress: spec.ingress,
                app: spec.app,
                demand: spec.demand,
            });
            waiters.insert(id, reply);
        }
        let event = SlotEvents {
            slot,
            arrivals,
            churn: Vec::new(),
        };
        let (step, _control) = self.state.step(
            &mut *self.algorithm,
            &self.substrate,
            event,
            &mut self.observer,
            &mut ReembedAll,
        );
        for outcome in &step.arrivals {
            if let Some(reply) = waiters.remove(&outcome.id) {
                let decision = match outcome.status {
                    RequestStatus::Accepted => Decision::Accept,
                    _ => Decision::Reject,
                };
                let _ = reply.send(SubmitReply::Decided {
                    id: outcome.id,
                    slot,
                    decision,
                });
            }
        }
        self.state
            .set_online_secs(self.online_base + self.started.elapsed().as_secs_f64());
        self.observer
            .on_slot_committed(&self.state.view(&*self.algorithm));
    }

    fn force_checkpoint(&mut self) -> Result<Slot, String> {
        let Some(ckpt) = &self.checkpoint else {
            return Err("no checkpoint path configured (--checkpoint)".to_string());
        };
        if self.state.next_slot() == 0 {
            return Err("no committed slot to checkpoint yet".to_string());
        }
        let view = self.state.view(&*self.algorithm);
        let checkpoint = view
            .checkpoint(self.observer.inner().snapshot())
            .map_err(|e| e.to_string())?;
        persist::write_checkpoint_file(&ckpt.path, &checkpoint).map_err(|e| e.to_string())?;
        self.forced_checkpoints += 1;
        Ok(checkpoint.slot)
    }

    fn stats(&self) -> ServeStats {
        let tee = self.observer.inner();
        let summary = tee.0.finish(&self.state.stats());
        ServeStats {
            slots_run: self.state.next_slot(),
            active: self.state.active_count(),
            pending: self.pending.len(),
            submitted: tee.1.submitted,
            accepted: tee.1.accepted,
            rejected: tee.1.rejected,
            preempted: tee.1.preempted,
            shed: tee.1.shed,
            checkpoints: self.observer.checkpoints_taken() as u64 + self.forced_checkpoints,
            fingerprint: summary.fingerprint(),
        }
    }
}
