//! Protocol parser coverage: malformed lines, oversized frames,
//! partial reads across every buffer boundary, and proptest round-trips
//! pinning [`Command::encode`]/[`parse_command`] and
//! [`Reply::encode`]/[`parse_reply`] as exact inverses.
//!
//! The property blocks read `PROPTEST_CASES` like the rest of the
//! workspace's property suites.

use proptest::prelude::*;
use vne_model::ids::{AppId, NodeId, RequestId};
use vne_model::prelude::Decision;
use vne_serve::protocol::{
    parse_command, parse_reply, Command, LineFramer, ProtocolError, Reply, MAX_FRAME,
};

fn cases(default: u32) -> ProptestConfig {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(default);
    ProptestConfig::with_cases(cases)
}

// ---------------------------------------------------------------------
// Malformed lines
// ---------------------------------------------------------------------

#[test]
fn malformed_commands_are_rejected_with_malformed_errors() {
    let bad = [
        "",                       // empty
        "   ",                    // whitespace only
        "FROBNICATE",             // unknown keyword
        "SUBMIT",                 // missing everything
        "SUBMIT 0",               // missing app/demand/duration
        "SUBMIT 0 0 1.0",         // missing duration
        "SUBMIT x 0 1.0 5",       // non-numeric ingress
        "SUBMIT 0 y 1.0 5",       // non-numeric app
        "SUBMIT 0 0 lots 5",      // non-numeric demand
        "SUBMIT 0 0 1.0 soon",    // non-numeric duration
        "SUBMIT -1 0 1.0 5",      // negative ingress
        "SUBMIT 0 0 0.0 5",       // zero demand
        "SUBMIT 0 0 -3.5 5",      // negative demand
        "SUBMIT 0 0 NaN 5",       // non-finite demand
        "SUBMIT 0 0 inf 5",       // non-finite demand
        "SUBMIT 0 0 1.0 0",       // zero duration
        "SUBMIT 0 0 1.0 5 extra", // trailing garbage
        "DEPART",                 // missing id
        "DEPART twelve",          // non-numeric id
        "DEPART 3 4",             // trailing garbage
        "ADVANCE 0",              // zero slots
        "ADVANCE -2",             // negative slots
        "ADVANCE 1 1",            // trailing garbage
        "STATS now",              // trailing garbage
        "CHECKPOINT please",      // trailing garbage
        "SHUTDOWN --force",       // trailing garbage
    ];
    for line in bad {
        match parse_command(line) {
            Err(ProtocolError::Malformed(_)) => {}
            other => panic!("{line:?}: expected Malformed, got {other:?}"),
        }
    }
}

#[test]
fn command_keywords_are_case_insensitive_and_tolerate_whitespace() {
    assert_eq!(
        parse_command("submit 2 1 4.5 9").unwrap(),
        Command::Submit {
            ingress: NodeId(2),
            app: AppId(1),
            demand: 4.5,
            duration: 9,
        }
    );
    assert_eq!(
        parse_command("  Advance   3  \r").unwrap(),
        Command::Advance { slots: 3 }
    );
    assert_eq!(
        parse_command("ADVANCE").unwrap(),
        Command::Advance { slots: 1 }
    );
    assert_eq!(parse_command("stats").unwrap(), Command::Stats);
    assert_eq!(parse_command("Shutdown").unwrap(), Command::Shutdown);
}

#[test]
fn malformed_replies_are_rejected() {
    let bad = [
        "",
        "YES",
        "OK",                        // no kind
        "OK WAT",                    // unknown kind
        "OK SUBMITTED",              // missing fields
        "OK SUBMITTED 1 2",          // missing decision
        "OK SUBMITTED 1 2 MAYBE",    // bad decision
        "OK SUBMITTED 1 2 SHED",     // shed never rides SUBMITTED
        "OK SUBMITTED 1 2 ACCEPT x", // trailing garbage
        "OK ACTIVE",                 // missing id
        "OK DEPARTED x",             // bad id
        "OK ADVANCED",               // missing slot
        "OK CHECKPOINT soon",        // bad slot
        "OK STATS slots",            // pair without '='
        "OK BYE bye",                // trailing garbage
    ];
    for line in bad {
        match parse_reply(line) {
            Err(ProtocolError::Malformed(_)) => {}
            other => panic!("{line:?}: expected Malformed, got {other:?}"),
        }
    }
}

#[test]
fn err_replies_preserve_their_reason() {
    assert_eq!(
        parse_reply("ERR unknown command \"FROB\"").unwrap(),
        Reply::Err("unknown command \"FROB\"".to_string())
    );
    assert_eq!(parse_reply("ERR").unwrap(), Reply::Err(String::new()));
}

// ---------------------------------------------------------------------
// Oversized frames
// ---------------------------------------------------------------------

#[test]
fn oversized_terminated_frame_is_refused_and_poisons_the_framer() {
    let mut framer = LineFramer::new();
    let mut line = vec![b'A'; MAX_FRAME + 1];
    line.push(b'\n');
    line.extend_from_slice(b"STATS\n");
    framer.push(&line);
    assert!(matches!(
        framer.pop(),
        Err(ProtocolError::Oversized { length }) if length == MAX_FRAME + 1
    ));
    // Poisoned: even the valid frame behind it is never surfaced — the
    // stream cannot be trusted after a framing violation.
    assert!(framer.pop().is_err());
    framer.push(b"STATS\n");
    assert!(framer.pop().is_err());
}

#[test]
fn oversized_unterminated_prefix_is_refused_before_buffering_unboundedly() {
    let mut framer = LineFramer::new();
    // No terminator ever arrives; the framer must trip as soon as the
    // buffered prefix exceeds the cap rather than buffering forever.
    framer.push(&vec![b'B'; MAX_FRAME]);
    assert_eq!(
        framer.pop().unwrap(),
        None,
        "exactly MAX_FRAME is still fine"
    );
    framer.push(b"BB");
    assert!(matches!(framer.pop(), Err(ProtocolError::Oversized { .. })));
}

#[test]
fn frame_of_exactly_max_frame_bytes_is_accepted() {
    let mut framer = LineFramer::new();
    let payload = "C".repeat(MAX_FRAME);
    framer.push(payload.as_bytes());
    framer.push(b"\n");
    assert_eq!(framer.pop().unwrap(), Some(payload));
}

#[test]
fn non_utf8_frame_is_refused() {
    let mut framer = LineFramer::new();
    framer.push(&[0xff, 0xfe, b'\n']);
    assert!(matches!(framer.pop(), Err(ProtocolError::NotUtf8)));
    framer.push(b"STATS\n");
    assert!(framer.pop().is_err(), "poisoned after a non-UTF-8 frame");
}

// ---------------------------------------------------------------------
// Partial reads across buffer boundaries
// ---------------------------------------------------------------------

/// Collects every frame the framer yields for `bytes` delivered in the
/// given chunks.
fn frames_via_chunks(bytes: &[u8], chunk: usize) -> Vec<String> {
    let mut framer = LineFramer::new();
    let mut frames = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        framer.push(piece);
        while let Some(frame) = framer.pop().expect("no framing error") {
            frames.push(frame);
        }
    }
    frames
}

#[test]
fn framing_is_invariant_under_read_fragmentation() {
    let stream = b"STATS\nSUBMIT 0 1 2.5 7\r\nADVANCE 2\nDEPART 4\nSHUTDOWN\n";
    let whole = frames_via_chunks(stream, stream.len());
    assert_eq!(
        whole,
        vec![
            "STATS".to_string(),
            "SUBMIT 0 1 2.5 7".to_string(),
            "ADVANCE 2".to_string(),
            "DEPART 4".to_string(),
            "SHUTDOWN".to_string(),
        ]
    );
    // Every chunk size — including byte-by-byte — yields the identical
    // frame sequence, so no command can be lost or merged at a read
    // boundary.
    for chunk in 1..stream.len() {
        assert_eq!(
            frames_via_chunks(stream, chunk),
            whole,
            "chunk size {chunk}"
        );
    }
}

#[test]
fn split_at_every_boundary_of_a_single_frame() {
    let line = b"SUBMIT 12 3 456.75 89\n";
    for split in 0..line.len() {
        let mut framer = LineFramer::new();
        framer.push(&line[..split]);
        if split < line.len() - 1 {
            assert_eq!(framer.pop().unwrap(), None, "split {split}: incomplete");
        }
        framer.push(&line[split..]);
        let frame = framer.pop().unwrap().expect("complete after second half");
        assert_eq!(frame, "SUBMIT 12 3 456.75 89", "split {split}");
        assert_eq!(framer.pop().unwrap(), None, "split {split}: drained");
    }
}

#[test]
fn many_frames_in_one_read_pop_in_order() {
    let mut framer = LineFramer::new();
    framer.push(b"ADVANCE 1\nADVANCE 2\nADVANCE 3\n");
    for expected in ["ADVANCE 1", "ADVANCE 2", "ADVANCE 3"] {
        assert_eq!(framer.pop().unwrap().as_deref(), Some(expected));
    }
    assert_eq!(framer.pop().unwrap(), None);
}

// ---------------------------------------------------------------------
// Proptest round-trips: encode → parse is the identity
// ---------------------------------------------------------------------

fn arb_command() -> impl Strategy<Value = Command> {
    (
        0u32..6,
        (any::<u32>(), any::<u32>()),
        1u32..=10_000,
        0.0625f64..1e9,
        any::<u64>(),
        1u32..=1_000_000,
    )
        .prop_map(
            |(kind, (ingress, app), duration, demand, id, slots)| match kind {
                0 => Command::Submit {
                    ingress: NodeId(ingress),
                    app: AppId(app),
                    demand,
                    duration,
                },
                1 => Command::Depart { id: RequestId(id) },
                2 => Command::Advance { slots },
                3 => Command::Stats,
                4 => Command::Checkpoint,
                _ => Command::Shutdown,
            },
        )
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    let stats_pairs = collection::vec((0u32..1000, any::<u64>()), 0..6).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (k, v))| (format!("k{i}_{k}"), v.to_string()))
            .collect::<Vec<_>>()
    });
    (
        0u32..8,
        (any::<u64>(), any::<u32>()),
        (any::<bool>(), any::<bool>()),
        stats_pairs,
        any::<u64>(),
    )
        .prop_map(
            |(kind, (id, slot), (accept, active), pairs, word)| match kind {
                0 => Reply::Submitted {
                    id: RequestId(id),
                    slot,
                    decision: if accept {
                        Decision::Accept
                    } else {
                        Decision::Reject
                    },
                },
                1 => Reply::Shed,
                2 => Reply::Departure {
                    id: RequestId(id),
                    active,
                },
                3 => Reply::Advanced {
                    slot: u64::from(slot),
                },
                4 => Reply::Stats(pairs),
                5 => Reply::Checkpointed { slot },
                6 => Reply::Bye,
                _ => Reply::Err(format!("reason {word:#x} with spaces")),
            },
        )
}

proptest! {
    #![proptest_config(cases(256))]

    /// Any encodable command parses back to itself — including the
    /// `demand: f64` field, whose strategy spans nine orders of
    /// magnitude of positive finite values.
    #[test]
    fn command_encode_parse_roundtrip(command in arb_command()) {
        let line = command.encode();
        prop_assert!(line.len() <= MAX_FRAME, "canonical encoding fits a frame");
        let parsed = parse_command(&line).expect("canonical encoding parses");
        prop_assert_eq!(parsed, command);
    }

    /// Any encodable reply parses back to itself (the [`Decision`]
    /// round-trip the ISSUE asks for rides in `Reply::Submitted`).
    #[test]
    fn reply_encode_parse_roundtrip(reply in arb_reply()) {
        let line = reply.encode();
        prop_assert!(line.len() <= MAX_FRAME, "canonical encoding fits a frame");
        let parsed = parse_reply(&line).expect("canonical encoding parses");
        prop_assert_eq!(parsed, reply);
    }

    /// Round-trips survive the framer at any fragmentation.
    #[test]
    fn framed_command_roundtrip(command in arb_command(), chunk in 1usize..32) {
        let mut wire = command.encode().into_bytes();
        wire.push(b'\n');
        let frames = frames_via_chunks(&wire, chunk);
        prop_assert_eq!(frames.len(), 1);
        prop_assert_eq!(parse_command(&frames[0]).unwrap(), command);
    }
}
