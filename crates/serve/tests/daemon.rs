//! End-to-end daemon coverage: concurrent TCP clients with a
//! `run_stream` replay parity check, load shedding at the watermark,
//! graceful shutdown with a byte-identical final-checkpoint resume, and
//! SIGKILL-crash recovery from the last durable checkpoint.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command as ProcessCommand, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vne_model::app::{shapes, AppSet, AppShape};
use vne_model::ids::{AppId, NodeId};
use vne_model::prelude::Decision;
use vne_model::request::{Request, Slot, SlotEvents};
use vne_model::substrate::{SubstrateNetwork, Tier};
use vne_serve::actor::{ServeConfig, ServeHandle, TickMode};
use vne_serve::protocol::{parse_reply, Command, Reply};
use vne_serve::{spawn, Server, SubmitReply, SubmitSpec};
use vne_sim::engine::{run_stream, EngineState};
use vne_sim::observe::WindowSummary;
use vne_sim::persist::read_checkpoint_file;
use vne_sim::registry::{AlgorithmSpec, BuildContext};
use vne_sim::scenario::{Algorithm, Scenario, ScenarioConfig};

// ---------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------

/// The tiny 4-node world the parity suites use.
fn tiny_scenario() -> Scenario {
    let mut s = SubstrateNetwork::new("tiny");
    let e0 = s.add_node("e0", Tier::Edge, 300.0, 50.0).unwrap();
    let e1 = s.add_node("e1", Tier::Edge, 300.0, 50.0).unwrap();
    let t = s.add_node("t", Tier::Transport, 900.0, 10.0).unwrap();
    let c = s.add_node("c", Tier::Core, 2700.0, 1.0).unwrap();
    s.add_link(e0, t, 1500.0, 1.0).unwrap();
    s.add_link(e1, t, 1500.0, 1.0).unwrap();
    s.add_link(t, c, 4500.0, 1.0).unwrap();
    let mut apps = AppSet::new();
    apps.push(
        "chain",
        AppShape::Chain,
        shapes::uniform_chain(2, 10.0, 3.0).unwrap(),
    )
    .unwrap();
    apps.push(
        "tree",
        AppShape::Tree,
        shapes::two_branch_tree(3, 6.0, 2.0).unwrap(),
    )
    .unwrap();
    let mut config = ScenarioConfig::small(1.0).with_seed(7);
    config.measure_window = (1, 12);
    Scenario::new(s, apps, config)
}

fn build_algorithm(
    scenario: &Scenario,
    alg: Algorithm,
) -> Box<dyn vne_olive::algorithm::OnlineAlgorithm> {
    scenario
        .registry()
        .build(&AlgorithmSpec::from(alg), &BuildContext::new(scenario))
        .unwrap()
        .algorithm
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vne-serve-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(tag)
}

/// A line-protocol client over one TCP connection.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).unwrap();
                    return Self {
                        reader: BufReader::new(stream),
                    };
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("connect {addr}: {e}"),
            }
        }
    }

    /// Writes a command without waiting for its reply (a blocking
    /// command like `SUBMIT` needs another connection to make
    /// progress).
    fn write(&mut self, command: &Command) {
        let mut line = command.encode();
        line.push('\n');
        self.reader
            .get_mut()
            .write_all(line.as_bytes())
            .expect("write command");
    }

    /// Reads the next reply line.
    fn read(&mut self) -> Reply {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        assert!(!reply.is_empty(), "connection closed mid-command");
        parse_reply(&reply).expect("daemon reply parses")
    }

    fn send(&mut self, command: &Command) -> Reply {
        self.write(command);
        self.read()
    }

    fn stats(&mut self) -> Vec<(String, String)> {
        match self.send(&Command::Stats) {
            Reply::Stats(pairs) => pairs,
            other => panic!("expected stats, got {other:?}"),
        }
    }
}

fn stat<'a>(pairs: &'a [(String, String)], key: &str) -> &'a str {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("missing stats key {key}"))
}

// ---------------------------------------------------------------------
// Acceptance: ≥8 concurrent clients, replay parity
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Record {
    id: u64,
    slot: Slot,
    spec: SubmitSpec,
    decision: Decision,
}

/// Eight concurrent TCP clients submit against a live daemon; every one
/// receives a decision, and replaying the served sequence through
/// `run_stream` yields the exact fingerprint the daemon reports.
#[test]
fn eight_concurrent_tcp_clients_match_run_stream_replay() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 3;

    let scenario = tiny_scenario();
    let penalty = scenario.penalty();
    let window = scenario.config.measure_window;
    let runtime = spawn(
        scenario.substrate.clone(),
        build_algorithm(&scenario, Algorithm::Fullg),
        penalty.clone(),
        window,
        scenario.apps.len(),
        ServeConfig::default(),
        None,
    )
    .unwrap();
    let handle = runtime.handle();
    let server = Server::bind("127.0.0.1:0", runtime.handle()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let server_thread = std::thread::spawn(move || server.serve().unwrap());

    // A ticker closes slots while clients are in flight (manual mode,
    // driven from the test so the run stays finite and deterministic in
    // *content* — the slot each submission lands in may vary, which is
    // exactly what the replay reconstruction absorbs).
    let done = Arc::new(AtomicBool::new(false));
    let ticker = {
        let handle = handle.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::SeqCst) {
                let _ = handle.advance(1);
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr);
                let mut records = Vec::with_capacity(ROUNDS);
                for round in 0..ROUNDS {
                    let spec = SubmitSpec {
                        ingress: NodeId(((c + round) % 4) as u32),
                        app: AppId((c % 2) as u32),
                        demand: 1.0 + c as f64 + 0.25 * round as f64,
                        duration: 1 + ((c + round) % 3) as Slot,
                    };
                    let command = Command::Submit {
                        ingress: spec.ingress,
                        app: spec.app,
                        demand: spec.demand,
                        duration: spec.duration,
                    };
                    match client.send(&command) {
                        Reply::Submitted { id, slot, decision } => records.push(Record {
                            id: id.0,
                            slot,
                            spec,
                            decision,
                        }),
                        other => panic!("client {c}: expected a decision, got {other:?}"),
                    }
                }
                records
            })
        })
        .collect();

    let mut records: Vec<Record> = Vec::new();
    for client in clients {
        records.extend(client.join().expect("client thread"));
    }
    done.store(true, Ordering::SeqCst);
    ticker.join().unwrap();

    // Every submission got a real decision and a unique id.
    assert_eq!(records.len(), CLIENTS * ROUNDS);
    let mut ids: Vec<u64> = records.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), CLIENTS * ROUNDS, "ids are unique");

    let stats = handle.stats().unwrap();
    assert_eq!(stats.submitted, (CLIENTS * ROUNDS) as u64);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.pending, 0);
    let served_fingerprint = stats.fingerprint;
    let slots_total = stats.slots_run;

    // Shut the daemon down over the wire (S2's graceful path) and let
    // everything drain.
    let mut closer = Client::connect(&addr);
    assert_eq!(closer.send(&Command::Shutdown), Reply::Bye);
    server_thread.join().unwrap();
    let report = runtime.join().expect("engine actor");
    assert_eq!(report.stats.fingerprint, served_fingerprint);

    // Replay: rebuild the dense slot sequence the daemon committed from
    // what the clients were told, and run it through the batch engine.
    records.sort_by_key(|r| (r.slot, r.id));
    let mut events: Vec<SlotEvents> = (0..slots_total)
        .map(|s| SlotEvents::empty(s as Slot))
        .collect();
    for r in &records {
        events[r.slot as usize].arrivals.push(Request {
            id: vne_model::ids::RequestId(r.id),
            arrival: r.slot,
            duration: r.spec.duration,
            ingress: r.spec.ingress,
            app: r.spec.app,
            demand: r.spec.demand,
        });
    }
    let mut replay_alg = build_algorithm(&scenario, Algorithm::Fullg);
    let mut replay_summary = WindowSummary::new(window, penalty);
    let replay_stats = run_stream(
        &mut *replay_alg,
        &scenario.substrate,
        events,
        &mut replay_summary,
    );
    let replay = replay_summary.finish(&replay_stats);
    assert_eq!(
        replay.fingerprint(),
        served_fingerprint,
        "served run and run_stream replay disagree"
    );
    assert_eq!(replay_stats.slots_run, slots_total as Slot);
    assert_eq!(replay_stats.arrivals, CLIENTS * ROUNDS);
    // The per-decision tallies agree with what the clients were told.
    let accepted_served = records
        .iter()
        .filter(|r| r.decision == Decision::Accept)
        .count() as u64;
    assert_eq!(accepted_served, report.stats.accepted);
    assert_eq!(
        report.stats.accepted + report.stats.rejected,
        (CLIENTS * ROUNDS) as u64
    );
}

// ---------------------------------------------------------------------
// Load shedding at the watermark
// ---------------------------------------------------------------------

#[test]
fn submissions_beyond_the_watermark_are_shed_and_counted() {
    let scenario = tiny_scenario();
    let runtime = spawn(
        scenario.substrate.clone(),
        build_algorithm(&scenario, Algorithm::Fullg),
        scenario.penalty(),
        scenario.config.measure_window,
        scenario.apps.len(),
        ServeConfig {
            tick: TickMode::Manual,
            watermark: 2,
            checkpoint: None,
        },
        None,
    )
    .unwrap();
    let handle = runtime.handle();

    let submit = |handle: &ServeHandle, demand: f64| {
        let handle = handle.clone();
        std::thread::spawn(move || {
            handle
                .submit(SubmitSpec {
                    ingress: NodeId(0),
                    app: AppId(0),
                    demand,
                    duration: 2,
                })
                .unwrap()
        })
    };

    // Fill the queue to the watermark, then overflow it. The first two
    // submitters block for their slot; the third must be answered
    // immediately with Shed — before any slot closes.
    let first = submit(&handle, 1.0);
    let second = submit(&handle, 2.0);
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().unwrap().pending < 2 {
        assert!(Instant::now() < deadline, "queue never filled");
        std::thread::sleep(Duration::from_millis(5));
    }
    let third = submit(&handle, 3.0);
    let shed_reply = third.join().unwrap();
    assert_eq!(shed_reply, SubmitReply::Shed);
    assert_eq!(shed_reply.decision(), Some(Decision::Shed));

    let stats = handle.stats().unwrap();
    assert_eq!(stats.shed, 1, "shed submissions are counted");
    assert_eq!(stats.pending, 2, "queued submissions stay queued");
    assert_eq!(stats.submitted, 2, "shed submissions are not 'submitted'");

    // The queued two still get real decisions once the slot closes.
    handle.advance(1).unwrap();
    for waiter in [first, second] {
        match waiter.join().unwrap() {
            SubmitReply::Decided { decision, .. } => {
                assert_ne!(decision, Decision::Shed);
            }
            other => panic!("expected a decision, got {other:?}"),
        }
    }
    // Shedding consumed no request id: both decided ids are 0 and 1.
    assert_eq!(handle.stats().unwrap().submitted, 2);

    handle.shutdown().unwrap();
    let report = runtime.join().expect("engine actor");
    assert_eq!(report.stats.shed, 1);
}

// ---------------------------------------------------------------------
// Departure probes
// ---------------------------------------------------------------------

#[test]
fn depart_probe_tracks_resource_lifetime() {
    let scenario = tiny_scenario();
    let runtime = spawn(
        scenario.substrate.clone(),
        build_algorithm(&scenario, Algorithm::Fullg),
        scenario.penalty(),
        scenario.config.measure_window,
        scenario.apps.len(),
        ServeConfig::default(),
        None,
    )
    .unwrap();
    let handle = runtime.handle();

    let waiter = {
        let handle = handle.clone();
        std::thread::spawn(move || {
            handle
                .submit(SubmitSpec {
                    ingress: NodeId(0),
                    app: AppId(0),
                    demand: 0.5,
                    duration: 2,
                })
                .unwrap()
        })
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().unwrap().pending < 1 {
        assert!(Instant::now() < deadline, "submission never queued");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.advance(1).unwrap();
    let id = match waiter.join().unwrap() {
        SubmitReply::Decided { id, decision, .. } => {
            assert_eq!(decision, Decision::Accept, "tiny demand must fit");
            id
        }
        other => panic!("expected a decision, got {other:?}"),
    };
    assert!(handle.depart(id).unwrap(), "holds resources after accept");
    handle.advance(3).unwrap();
    assert!(
        !handle.depart(id).unwrap(),
        "released after its duration elapsed"
    );
    // Invalid submissions are refused without consuming anything.
    let bad = handle
        .submit(SubmitSpec {
            ingress: NodeId(99),
            app: AppId(0),
            demand: 1.0,
            duration: 1,
        })
        .unwrap();
    assert!(matches!(bad, SubmitReply::Invalid(_)));

    handle.shutdown().unwrap();
    runtime.join().expect("engine actor");
}

#[test]
fn depart_releases_capacity_for_readmission() {
    let scenario = tiny_scenario();
    let runtime = spawn(
        scenario.substrate.clone(),
        build_algorithm(&scenario, Algorithm::Fullg),
        scenario.penalty(),
        scenario.config.measure_window,
        scenario.apps.len(),
        ServeConfig::default(),
        None,
    )
    .unwrap();
    let handle = runtime.handle();

    // Submits `n` identical requests into one slot, closes it, and
    // returns the (accepted, rejected) id partitions.
    let slot_batch = |n: usize| {
        let waiters: Vec<_> = (0..n)
            .map(|_| {
                let handle = handle.clone();
                std::thread::spawn(move || {
                    handle
                        .submit(SubmitSpec {
                            ingress: NodeId(0),
                            app: AppId(0),
                            demand: 30.0,
                            duration: 100,
                        })
                        .unwrap()
                })
            })
            .collect();
        let deadline = Instant::now() + Duration::from_secs(10);
        while (handle.stats().unwrap().pending as usize) < n {
            assert!(Instant::now() < deadline, "submissions never queued");
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.advance(1).unwrap();
        let mut accepted = Vec::new();
        let mut rejected = Vec::new();
        for w in waiters {
            match w.join().unwrap() {
                SubmitReply::Decided { id, decision, .. } => match decision {
                    Decision::Accept => accepted.push(id),
                    Decision::Reject => rejected.push(id),
                    Decision::Shed => panic!("no shedding below the watermark"),
                },
                other => panic!("expected a decision, got {other:?}"),
            }
        }
        (accepted, rejected)
    };

    // Eight demand-30 chains oversubscribe the tiny world: some are
    // admitted, at least one is rejected for lack of capacity.
    let (accepted, rejected) = slot_batch(8);
    assert!(!accepted.is_empty(), "some requests must fit");
    assert!(!rejected.is_empty(), "8 × demand-30 must oversubscribe");

    // DEPART every admitted request (duration 100 — nowhere near
    // expiring). Each reports it was active; rejected ids are no-ops.
    for &id in &accepted {
        assert!(handle.depart(id).unwrap(), "{id:?} held resources");
    }
    assert!(!handle.depart(rejected[0]).unwrap(), "rejects hold nothing");
    // The releases take effect at the next slot close.
    handle.advance(1).unwrap();
    for &id in &accepted {
        assert!(!handle.depart(id).unwrap(), "{id:?} released early");
    }

    // Re-admission: with everything released the same batch fits at
    // least as well as before.
    let (readmitted, _) = slot_batch(accepted.len());
    assert_eq!(
        readmitted.len(),
        accepted.len(),
        "freed capacity re-admits the same load"
    );

    handle.shutdown().unwrap();
    runtime.join().expect("engine actor");
}

// ---------------------------------------------------------------------
// Process-level: graceful shutdown + byte-identical resume (S2),
// SIGKILL crash recovery from the last durable checkpoint
// ---------------------------------------------------------------------

/// A `vne-serve` process started on an ephemeral port.
struct Daemon {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn start(extra: &[&str]) -> Self {
        let mut child = ProcessCommand::new(env!("CARGO_BIN_EXE_vne-serve"))
            .args(["--addr", "127.0.0.1:0", "--manual"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn vne-serve");
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("read banner");
        // "vne-serve listening on <addr> alg=... topology=..." — pinned
        // as the first stdout line.
        let addr = banner
            .strip_prefix("vne-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .split_whitespace()
            .next()
            .unwrap()
            .to_string();
        Self {
            child,
            addr,
            stdout,
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr)
    }

    /// Sends `SHUTDOWN` and waits for a clean exit; returns the drained
    /// summary line.
    fn shutdown(mut self) -> String {
        let mut client = self.client();
        assert_eq!(client.send(&Command::Shutdown), Reply::Bye);
        let status = self.child.wait().expect("wait for daemon");
        assert!(status.success(), "daemon exited {status:?}");
        let mut drained = String::new();
        self.stdout.read_line(&mut drained).expect("drained line");
        assert!(
            drained.starts_with("vne-serve drained:"),
            "unexpected final line {drained:?}"
        );
        drained
    }

    fn kill(mut self) {
        self.child.kill().expect("SIGKILL daemon");
        let _ = self.child.wait();
    }
}

/// The deterministic request script both process tests replay: one
/// submission per slot, an explicit `ADVANCE` closing each. `SUBMIT`
/// blocks its connection until the slot closes, so the submission rides
/// on `submitter` while `control` polls `STATS` until it is queued and
/// then advances — keeping the slot each request lands in exact.
fn scripted_slot(submitter: &mut Client, control: &mut Client, s: u32) -> (Reply, u64) {
    submitter.write(&Command::Submit {
        ingress: NodeId(s % 3),
        app: AppId(s % 4),
        demand: 4.0 + f64::from(s),
        duration: 2 + (s % 3),
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = control.stats();
        if stat(&stats, "pending") == "1" {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slot {s}: submission never queued"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let committed = match control.send(&Command::Advance { slots: 1 }) {
        Reply::Advanced { slot } => slot,
        other => panic!("slot {s}: expected ADVANCED, got {other:?}"),
    };
    let decision = submitter.read();
    assert!(
        matches!(decision, Reply::Submitted { .. }),
        "slot {s}: expected a decision, got {decision:?}"
    );
    (decision, committed)
}

/// Engine blobs embed the wall-clock `online_secs`; normalize it away
/// before byte comparison (observer/algorithm blobs carry no clock).
fn normalized_engine(blob: &vne_model::state::StateBlob) -> vne_model::state::StateBlob {
    let mut state = EngineState::fresh();
    state.restore(blob).expect("engine blob restores");
    state.set_online_secs(0.0);
    use vne_model::state::Snapshot as _;
    state.snapshot()
}

const SCRIPT_SLOTS: u32 = 10;

/// Runs the full script uninterrupted with checkpointing; returns the
/// decision transcript, the final fingerprint, and the checkpoint path.
fn reference_run(tag: &str) -> (Vec<Reply>, String, PathBuf) {
    let ckpt = temp_path(&format!("{tag}-ref.ckpt"));
    let _ = std::fs::remove_file(&ckpt);
    let daemon = Daemon::start(&[
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "3",
    ]);
    let mut submitter = daemon.client();
    let mut control = daemon.client();
    let mut decisions = Vec::new();
    for s in 0..SCRIPT_SLOTS {
        let (decision, committed) = scripted_slot(&mut submitter, &mut control, s);
        assert_eq!(committed, u64::from(s) + 1);
        decisions.push(decision);
    }
    let stats = control.stats();
    let fingerprint = stat(&stats, "fingerprint").to_string();
    assert_eq!(stat(&stats, "slots"), SCRIPT_SLOTS.to_string());
    drop(submitter);
    drop(control);
    daemon.shutdown();
    (decisions, fingerprint, ckpt)
}

/// S2: a clean `SHUTDOWN` writes a final checkpoint the daemon can
/// resume from byte-identically, and the process exits 0.
#[test]
fn graceful_shutdown_resumes_from_final_checkpoint_byte_identically() {
    let (_, fingerprint, ckpt) = reference_run("graceful");
    let final_ckpt = read_checkpoint_file(&ckpt).expect("final checkpoint readable");
    assert_eq!(
        final_ckpt.slot,
        SCRIPT_SLOTS - 1,
        "shutdown checkpointed the last slot"
    );

    // Resume: the restored daemon reports the exact serving state the
    // first one shut down with.
    let resumed = Daemon::start(&[
        "--resume-from",
        ckpt.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    let mut client = resumed.client();
    let stats = client.stats();
    assert_eq!(stat(&stats, "fingerprint"), fingerprint);
    assert_eq!(stat(&stats, "slots"), SCRIPT_SLOTS.to_string());
    assert_eq!(stat(&stats, "submitted"), SCRIPT_SLOTS.to_string());
    drop(client);
    resumed.shutdown();

    // The resumed daemon's own final checkpoint is byte-identical to
    // what it restored (no slots ran in between), modulo the engine's
    // wall-clock field.
    let again = read_checkpoint_file(&ckpt).unwrap();
    assert_eq!(again.slot, final_ckpt.slot);
    assert_eq!(again.algorithm, final_ckpt.algorithm);
    assert_eq!(again.algorithm_state, final_ckpt.algorithm_state);
    assert_eq!(again.observer_state, final_ckpt.observer_state);
    assert_eq!(
        normalized_engine(&again.engine),
        normalized_engine(&final_ckpt.engine)
    );
    let _ = std::fs::remove_file(&ckpt);
}

/// The acceptance crash drill: SIGKILL the daemon mid-run, restart from
/// the last durable checkpoint, replay the lost tail, and end with the
/// same decisions, fingerprint, and checkpoint bytes as the
/// uninterrupted run.
#[test]
fn kill_and_recover_resumes_from_last_durable_checkpoint() {
    let (reference_decisions, reference_fingerprint, reference_ckpt) = reference_run("kill");
    let reference_final = read_checkpoint_file(&reference_ckpt).unwrap();

    let ckpt = temp_path("kill-crash.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    // Phase 1: run the script through slot 6, then SIGKILL. With
    // --checkpoint-every 3 the checkpoints landed at slots 2 and 5 —
    // slot 6 is committed in memory only and dies with the process.
    let daemon = Daemon::start(&[
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "3",
    ]);
    let mut submitter = daemon.client();
    let mut control = daemon.client();
    let mut crash_decisions = Vec::new();
    for s in 0..7 {
        let (decision, _) = scripted_slot(&mut submitter, &mut control, s);
        crash_decisions.push(decision);
    }
    drop(submitter);
    drop(control);
    daemon.kill();

    let durable = read_checkpoint_file(&ckpt).expect("durable checkpoint survives SIGKILL");
    assert_eq!(durable.slot, 5, "last durable capture is slot 5");

    // Phase 2: restart from the durable checkpoint and replay the lost
    // tail (slots 6..10 of the same script).
    let recovered = Daemon::start(&[
        "--resume-from",
        ckpt.to_str().unwrap(),
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "3",
    ]);
    let mut submitter = recovered.client();
    let mut control = recovered.client();
    let stats = control.stats();
    assert_eq!(stat(&stats, "slots"), "6", "resumed at the durable slot");
    let mut recovered_decisions = Vec::new();
    for s in 6..SCRIPT_SLOTS {
        let (decision, committed) = scripted_slot(&mut submitter, &mut control, s);
        assert_eq!(committed, u64::from(s) + 1);
        recovered_decisions.push(decision);
    }
    let stats = control.stats();
    assert_eq!(
        stat(&stats, "fingerprint"),
        reference_fingerprint,
        "recovered run's fingerprint matches the uninterrupted run"
    );
    assert_eq!(stat(&stats, "submitted"), SCRIPT_SLOTS.to_string());
    drop(submitter);
    drop(control);
    recovered.shutdown();

    // Decisions: the crash run's slots 0..7 and the recovery's 6..10
    // must agree with the uninterrupted transcript. The decision ids
    // line up because ids are assigned at slot close, never for
    // submissions a crash could lose.
    for (s, decision) in crash_decisions.iter().take(6).enumerate() {
        assert_eq!(decision, &reference_decisions[s], "pre-crash slot {s}");
    }
    for (i, decision) in recovered_decisions.iter().enumerate() {
        let s = 6 + i;
        assert_eq!(decision, &reference_decisions[s], "recovered slot {s}");
    }

    // And the recovered final checkpoint is byte-identical to the
    // uninterrupted one, modulo the engine's wall-clock field.
    let recovered_final = read_checkpoint_file(&ckpt).unwrap();
    assert_eq!(recovered_final.slot, reference_final.slot);
    assert_eq!(recovered_final.algorithm, reference_final.algorithm);
    assert_eq!(
        recovered_final.algorithm_state,
        reference_final.algorithm_state
    );
    assert_eq!(
        recovered_final.observer_state, reference_final.observer_state,
        "WindowSummary + serving counters are byte-identical"
    );
    assert_eq!(
        normalized_engine(&recovered_final.engine),
        normalized_engine(&reference_final.engine)
    );

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&reference_ckpt);
}

/// The wall-clock tick closes slots without any `ADVANCE`: a quiet
/// daemon still commits empty slots and a submission is decided within
/// a few ticks.
#[test]
fn interval_tick_decides_without_manual_advance() {
    let scenario = tiny_scenario();
    let runtime = spawn(
        scenario.substrate.clone(),
        build_algorithm(&scenario, Algorithm::Quickg),
        scenario.penalty(),
        scenario.config.measure_window,
        scenario.apps.len(),
        ServeConfig {
            tick: TickMode::Interval(Duration::from_millis(5)),
            watermark: 64,
            checkpoint: None,
        },
        None,
    )
    .unwrap();
    let handle = runtime.handle();
    let reply = handle
        .submit(SubmitSpec {
            ingress: NodeId(0),
            app: AppId(1),
            demand: 0.5,
            duration: 1,
        })
        .unwrap();
    assert!(
        matches!(reply, SubmitReply::Decided { .. }),
        "tick decided the submission: {reply:?}"
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().unwrap().slots_run < 3 {
        assert!(Instant::now() < deadline, "ticks never accumulated");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown().unwrap();
    let report = runtime.join().expect("engine actor");
    assert!(report.stats.slots_run >= 3);
    assert_eq!(report.stats.accepted + report.stats.rejected, 1);
}
